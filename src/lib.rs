//! # wmm — umbrella crate for the ICDCS 2006 multicast-metrics reproduction
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency:
//!
//! * [`mesh_sim`] — the wireless mesh network simulator substrate;
//! * [`mcast_metrics`] — the paper's contribution: link-quality routing
//!   metrics adapted for link-layer-broadcast multicast (ETX, ETT, PP, METX,
//!   SPP);
//! * [`odmrp`] — the On-Demand Multicast Routing Protocol, plain and
//!   metric-enhanced;
//! * [`testbed`] — the 8-node office-floor testbed model;
//! * [`experiments`] — scenarios, runners, and statistics that regenerate
//!   every table and figure of the paper.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use experiments;
pub use mcast_metrics;
pub use mesh_sim;
pub use odmrp;
pub use testbed;
