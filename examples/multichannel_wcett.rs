//! Future work (§6 of the paper): extending the metrics to
//! multi-radio/multi-channel meshes. WCETT — the metric the paper set aside
//! because it assumed a single channel — charges the busiest channel of a
//! path, so channel-diverse routes win even at equal total ETT.
//!
//! Run with: `cargo run --example multichannel_wcett`

use wmm::mcast_metrics::{ChannelHop, Wcett};

fn show(w: &Wcett, name: &str, paths: &[(&str, Vec<ChannelHop>)]) {
    println!("== {name} (beta = {}) ==", w.beta());
    let candidates: Vec<Vec<ChannelHop>> = paths.iter().map(|(_, p)| p.clone()).collect();
    let winner = w.choose(&candidates);
    for (i, (label, hops)) in paths.iter().enumerate() {
        let mark = if i == winner { " <= chosen" } else { "" };
        println!(
            "  {:<28} WCETT = {:.2} ms{}",
            label,
            w.path_cost(hops) * 1e3,
            mark
        );
    }
    println!();
}

fn main() {
    let hop = |ett_ms: f64, ch: u8| ChannelHop::new(ett_ms / 1e3, ch);

    // Two 2-hop paths with the same total ETT: one hops channels, one
    // self-interferes on a single channel.
    show(
        &Wcett::default(),
        "channel diversity at equal ETT",
        &[
            (
                "ch1 -> ch1 (self-interfering)",
                vec![hop(3.0, 1), hop(3.0, 1)],
            ),
            ("ch1 -> ch2 (diverse)", vec![hop(3.0, 1), hop(3.0, 2)]),
        ],
    );

    // A longer diverse path can beat a shorter single-channel one.
    show(
        &Wcett::default(),
        "longer but diverse vs shorter but monochrome",
        &[
            ("2 hops on ch1, 7ms total", vec![hop(3.5, 1), hop(3.5, 1)]),
            (
                "3 hops over ch1/ch2/ch3, 8ms total",
                vec![hop(2.7, 1), hop(2.7, 2), hop(2.6, 3)],
            ),
        ],
    );

    // Beta sweep: at beta = 0 WCETT is the paper's ETT sum; increasing beta
    // increasingly rewards diversity.
    println!("== beta sweep on the first example ==");
    for beta in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let w = Wcett::new(beta);
        let mono = w.path_cost(&[hop(3.0, 1), hop(3.0, 1)]);
        let diverse = w.path_cost(&[hop(3.0, 1), hop(3.0, 2)]);
        println!(
            "  beta {beta:.2}: monochrome {:.2} ms, diverse {:.2} ms{}",
            mono * 1e3,
            diverse * 1e3,
            if diverse < mono {
                "  (diversity wins)"
            } else {
                "  (tie)"
            }
        );
    }
    println!(
        "\nAt beta = 0 the two are tied (ETT cannot see channels) — exactly why the \
         paper's single-channel study uses ETT and leaves WCETT to future work."
    );
}
