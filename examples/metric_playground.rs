//! Explore how each routing metric ranks candidate paths — no simulator,
//! just the metric algebra. Reproduces the paper's Figure 1 and Figure 3
//! worked examples, then a few extra networks that highlight each metric's
//! personality.
//!
//! Run with: `cargo run --example metric_playground`

use wmm::mcast_metrics::{
    choose_path, figure1_candidates, figure3_candidates, CandidatePath, MetricKind,
};

fn show(name: &str, cands: &[CandidatePath]) {
    println!("== {name} ==");
    print!("{:<14}", "path (df's)");
    for k in MetricKind::PAPER_SET {
        print!("{:>10}", k.name());
    }
    println!();
    let choices: Vec<_> = MetricKind::PAPER_SET
        .iter()
        .map(|k| choose_path(&k.build(), cands))
        .collect();
    for (i, c) in cands.iter().enumerate() {
        print!("{:<14}", c.name);
        for ch in &choices {
            let cost = ch.costs[i].1;
            let mark = if ch.winner == i { "*" } else { " " };
            print!("{:>9.3}{mark}", cost);
        }
        println!();
    }
    println!("(* = chosen by that metric; SPP maximizes, the rest minimize)\n");
}

fn main() {
    show("Figure 1: SPP vs METX", &figure1_candidates());
    show("Figure 3: SPP vs ETX", &figure3_candidates());

    show(
        "many mediocre hops vs one bad hop",
        &[
            CandidatePath::new("5x df=0.85", vec![0.85; 5]),
            CandidatePath::new("2 hops, one 0.45", vec![0.95, 0.45]),
        ],
    );

    show(
        "long clean vs short risky",
        &[
            CandidatePath::new("4x df=0.97", vec![0.97; 4]),
            CandidatePath::new("1x df=0.70", vec![0.70]),
        ],
    );
}
