//! Beyond the paper: what happens to link-quality multicast routing when the
//! "mesh" assumption breaks and nodes move (the MANET regime ODMRP was
//! originally designed for)?
//!
//! Runs ODMRP_SPP and original ODMRP on the same network, static vs.
//! random-waypoint mobility. Expect the metric's edge to shrink under
//! mobility: probe windows describe links that no longer exist.
//!
//! Run with: `cargo run --release --example mobile_manet`

use wmm::experiments::scenario::MeshScenario;
use wmm::experiments::RunMeasurement;
use wmm::mcast_metrics::MetricKind;
use wmm::mesh_sim::geometry::Area;
use wmm::mesh_sim::mobility::RandomWaypoint;
use wmm::mesh_sim::time::{SimDuration, SimTime};
use wmm::odmrp::Variant;

fn run(scenario: &MeshScenario, variant: Variant, seed: u64, mobile: bool) -> RunMeasurement {
    let groups = scenario.layout(seed).groups;
    let mut sim = scenario.build(variant, seed);
    if mobile {
        sim.set_mobility(Box::new(
            RandomWaypoint::new(
                Area::square(scenario.area_side),
                1.0,
                5.0, // pedestrian-to-bike speeds
                SimDuration::from_secs(10),
            )
            .with_tick(SimDuration::from_millis(500)),
        ));
    }
    sim.run_until(scenario.run_until());
    RunMeasurement::from_sim(&sim, &groups, seed)
}

fn main() {
    let mut scenario = MeshScenario::quick();
    scenario.groups = 1;
    scenario.members_per_group = 8;
    scenario.data_stop = SimTime::from_secs(200);

    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "configuration", "ODMRP", "ODMRP_SPP", "SPP gain"
    );
    for (label, mobile) in [("static mesh", false), ("random waypoint 1-5 m/s", true)] {
        let mut base = 0.0;
        let mut spp = 0.0;
        let seeds = [3u64, 4, 5];
        for &s in &seeds {
            base += run(&scenario, Variant::Original, s, mobile).pdr();
            spp += run(&scenario, Variant::Metric(MetricKind::Spp), s, mobile).pdr();
        }
        base /= seeds.len() as f64;
        spp /= seeds.len() as f64;
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>9.1}%",
            label,
            base,
            spp,
            100.0 * (spp / base - 1.0)
        );
    }
    println!(
        "\nThe paper's premise in action: link-quality metrics presume a stationary \
         network; under mobility the probe history goes stale and the advantage shrinks."
    );
}
