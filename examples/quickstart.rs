//! Quickstart: build a small wireless mesh, run original ODMRP and
//! ODMRP_SPP on the *same* topology, and compare delivery.
//!
//! Run with: `cargo run --release --example quickstart`

use wmm::experiments::scenario::MeshScenario;
use wmm::experiments::{run_mesh_once, RunMeasurement};
use wmm::mcast_metrics::MetricKind;
use wmm::odmrp::Variant;

fn main() {
    // A 30-node mesh in an 800m square, one multicast group of 10 members,
    // one CBR source (512-byte packets, 20/s), Rayleigh fading — a scaled
    // down version of the paper's simulation setup.
    let mut scenario = MeshScenario::quick();
    scenario.groups = 1;
    scenario.members_per_group = 10;

    println!(
        "nodes: {}, area: {}m^2, group members: 10, CBR 20 pkt/s x 512B\n",
        scenario.nodes, scenario.area_side
    );

    let seed = 7;
    let original: RunMeasurement = run_mesh_once(&scenario, Variant::Original, seed);
    let spp = run_mesh_once(&scenario, Variant::Metric(MetricKind::Spp), seed);

    println!(
        "{:<12} {:>8} {:>12} {:>12}",
        "variant", "PDR", "delay (ms)", "overhead %"
    );
    for m in [&original, &spp] {
        println!(
            "{:<12} {:>8.3} {:>12.1} {:>12.2}",
            m.variant.label(),
            m.pdr(),
            m.mean_delay_s * 1e3,
            m.probe_overhead_pct
        );
    }
    let gain = 100.0 * (spp.pdr() / original.pdr() - 1.0);
    println!("\nSPP routing delivers {gain:+.1}% more packets than original ODMRP");
    println!("(the paper's Figure 2 reports ~+18% at full scale, averaged over 10 topologies)");
}
