//! A motivating workload from the paper's introduction: webcast-style video
//! distribution to a multicast group over a community mesh network.
//!
//! One source streams CBR "video" (512-byte packets, 20/s ≈ 80 kbps) to 15
//! subscribers for five simulated minutes. We compare every routing metric
//! on the same network and report per-subscriber quality: delivery ratio and
//! the share of subscribers with watchable quality (>90 % delivery).
//!
//! Run with: `cargo run --release --example video_multicast`

use wmm::experiments::scenario::MeshScenario;
use wmm::mcast_metrics::MetricKind;
use wmm::mesh_sim::time::SimTime;
use wmm::odmrp::Variant;

fn main() {
    let mut scenario = MeshScenario::paper_default();
    scenario.nodes = 40;
    scenario.groups = 1;
    scenario.members_per_group = 15;
    scenario.data_start = SimTime::from_secs(30);
    scenario.data_stop = SimTime::from_secs(330);

    let seed = 11;
    let layout = scenario.layout(seed);
    let group = &layout.groups[0];
    println!(
        "video webcast: source {} -> {} subscribers, 300s of 80kbps CBR\n",
        group.sources[0],
        group.members.len()
    );

    let mut variants = vec![Variant::Original];
    variants.extend(MetricKind::PAPER_SET.map(Variant::Metric));

    println!(
        "{:<12} {:>10} {:>12} {:>18}",
        "variant", "mean PDR", "worst sub", "watchable (>90%)"
    );
    for v in variants {
        let mut sim = scenario.build(v, seed);
        sim.run_until(scenario.run_until());
        let nodes = sim.protocols();
        let sent = nodes[group.sources[0].index()]
            .stats()
            .sent
            .values()
            .sum::<u64>() as f64;
        let mut ratios = Vec::new();
        for m in &group.members {
            let got = nodes[m.index()].stats().total_delivered() as f64;
            ratios.push(got / sent);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let worst = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let watchable = ratios.iter().filter(|&&r| r > 0.9).count();
        println!(
            "{:<12} {:>10.3} {:>12.3} {:>15}/{}",
            v.label(),
            mean,
            worst,
            watchable,
            ratios.len()
        );
    }
    println!("\nLink-quality metrics lift both the mean and the tail subscriber experience.");
}
