//! Walk through the paper's 8-node office-floor testbed (§5): run
//! ODMRP_PP on the Figure-4 topology and inspect what the protocol built —
//! per-receiver delivery, the forwarding group, and the selected tree edges
//! (lossy links are tagged).
//!
//! Run with: `cargo run --release --example testbed_walkthrough`

use wmm::experiments::scenario::TestbedScenario;
use wmm::experiments::trees::{heavy_edges, tree_usage};
use wmm::mcast_metrics::MetricKind;
use wmm::odmrp::Variant;
use wmm::testbed::{label_of, paper_groups, LinkClass};

fn main() {
    let scenario = TestbedScenario::paper_default();
    println!("8-node testbed, groups: 2 -> {{3,5}} and 4 -> {{1,7}}; 400s runs\n");

    let mut sim = scenario.build(Variant::Metric(MetricKind::Pp), 1);
    sim.run_until(scenario.run_until());

    let layout = scenario.layout();
    println!("per-receiver delivery (ODMRP_PP):");
    for g in &layout.groups {
        let sent: u64 = sim.protocols()[g.sources[0].index()]
            .stats()
            .sent
            .values()
            .sum();
        for m in &g.members {
            let got = sim.protocols()[m.index()].stats().total_delivered();
            println!(
                "  source {} -> receiver {}: {}/{} ({:.1}%)",
                label_of(g.sources[0]),
                label_of(*m),
                got,
                sent,
                100.0 * got as f64 / sent as f64
            );
        }
    }

    println!("\nforwarding-group membership (ever joined):");
    for (i, node) in sim.protocols().iter().enumerate() {
        let groups = node.forwarding_groups();
        if !groups.is_empty() {
            println!(
                "  node {}: {:?}",
                label_of(wmm::mesh_sim::ids::NodeId::new(i as u32)),
                groups.iter().map(|g| g.0).collect::<Vec<_>>()
            );
        }
    }

    let lossy: std::collections::HashSet<(u32, u32)> = wmm::testbed::floorplan::links()
        .into_iter()
        .filter(|(_, _, c)| *c == LinkClass::Lossy)
        .flat_map(|(a, b, _)| [(a, b), (b, a)])
        .collect();
    println!("\nselected tree edges (by refresh rounds):");
    for e in heavy_edges(&tree_usage(&sim), 0.1) {
        let (a, b) = (label_of(e.from), label_of(e.to));
        let tag = if lossy.contains(&(a, b)) {
            "  <-- LOSSY"
        } else {
            ""
        };
        println!("  {:>2} -> {:<2} {:>5} rounds{}", a, b, e.packets, tag);
    }
    println!(
        "\nPer the paper (Fig. 5), PP's tree should detour 2->10->5 and 4->9->7 \
         rather than using the lossy 2->5 and 4->7 links."
    );
    let _ = paper_groups();
}
