#!/bin/sh
# Regenerates every table/figure at paper scale; writes one file per experiment.
set -x
cd "$(dirname "$0")/.."
B=./target/release
$B/fig1_metx_vs_spp                 > results/fig1.txt 2>&1
$B/fig3_etx_vs_spp                  > results/fig3.txt 2>&1
$B/fig2_throughput_sim              > results/fig2_throughput_sim.txt 2>results/fig2_throughput_sim.err
$B/fig2_high_overhead               > results/fig2_high_overhead.txt 2>results/fig2_high_overhead.err
$B/probe_rate_sweep                 > results/probe_rate_sweep.txt 2>results/probe_rate_sweep.err
$B/table1_overhead                  > results/table1.txt 2>results/table1.err
$B/multi_source                     > results/multi_source.txt 2>results/multi_source.err
$B/fig2_testbed                     > results/fig2_testbed.txt 2>results/fig2_testbed.err
$B/fig5_trees --runs 3              > results/fig5_trees.txt 2>results/fig5_trees.err
echo ALL_DONE
# extensions (also see run_extra.sh, kept separate for reruns)
