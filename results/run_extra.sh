#!/bin/sh
set -x
cd "$(dirname "$0")/.."
B=./target/release
$B/fig2_testbed                     > results/fig2_testbed.txt 2>results/fig2_testbed.err
$B/fig5_trees --runs 3              > results/fig5_trees.txt 2>results/fig5_trees.err
$B/tree_multicast                   > results/tree_multicast.txt 2>results/tree_multicast.err
$B/ablation_bidir_etx               > results/ablation_bidir_etx.txt 2>results/ablation_bidir_etx.err
$B/ablation_delta_alpha             > results/ablation_delta_alpha.txt 2>results/ablation_delta_alpha.err
$B/optimal_probe_rate               > results/optimal_probe_rate.txt 2>results/optimal_probe_rate.err
$B/receiver_fairness                > results/receiver_fairness.txt 2>results/receiver_fairness.err
echo EXTRA_DONE
