//! Dynamic group membership: receivers joining and leaving mid-run, the
//! churn ODMRP's on-demand forwarding group was designed to absorb.

use wmm::mcast_metrics::MetricKind;
use wmm::mesh_sim::prelude::*;
use wmm::odmrp::{NodeRole, OdmrpConfig, OdmrpNode, Variant};

const GROUP: GroupId = GroupId(0);

fn run(window: Option<(u64, u64)>) -> Vec<OdmrpNode> {
    let mut medium = LinkTableMedium::new();
    for i in 0..3u32 {
        medium.add_link(NodeId::new(i), NodeId::new(i + 1), 0.0);
    }
    let cfg = OdmrpConfig {
        variant: Variant::Metric(MetricKind::Etx),
        ..OdmrpConfig::default()
    };
    let mut roles = vec![NodeRole::forwarder(); 4];
    roles[0] = NodeRole::source(GROUP, SimTime::from_secs(10), SimTime::from_secs(130));
    roles[3] = match window {
        Some((j, l)) => {
            NodeRole::member_during(GROUP, SimTime::from_secs(j), SimTime::from_secs(l))
        }
        None => NodeRole::member(GROUP),
    };
    let nodes: Vec<OdmrpNode> = roles
        .into_iter()
        .map(|r| OdmrpNode::new(cfg.clone(), r))
        .collect();
    let mut sim = Simulator::new(
        mesh_sim::topology::chain(4, 50.0),
        Box::new(medium),
        WorldConfig {
            seed: 17,
            ..WorldConfig::default()
        },
        nodes,
    );
    sim.run_until(SimTime::from_secs(132));
    let (nodes, _) = sim.into_parts();
    nodes
}

#[test]
fn windowed_member_receives_roughly_its_window() {
    // Member is subscribed for 60 s of the 120 s transmission.
    let nodes = run(Some((40, 100)));
    let got = nodes[3].stats().total_delivered();
    let sent = nodes[0].stats().total_sent();
    // 60/120 of the stream, minus the join latency of roughly one refresh
    // round; forwarding-group soft state may deliver a little past the
    // leave instant, but never the whole stream.
    let share = got as f64 / sent as f64;
    assert!(
        (0.40..=0.55).contains(&share),
        "windowed member got {share:.3} of the stream ({got}/{sent})"
    );
}

#[test]
fn permanent_member_beats_windowed_member() {
    let windowed = run(Some((40, 100)))[3].stats().total_delivered();
    let permanent = run(None)[3].stats().total_delivered();
    assert!(permanent > windowed + 500);
}

#[test]
fn never_joined_receives_nothing() {
    // A window entirely outside the transmission delivers nothing.
    let nodes = run(Some((500, 600)));
    assert_eq!(nodes[3].stats().total_delivered(), 0);
    // And the forwarding group was never established through node 2.
    assert_eq!(nodes[2].stats().data_forwards, 0);
}

// ---------------------------------------------------------------------------
// Compiled multi-group churn: the same membership semantics driven from a
// declarative TOML scenario — generated per-group churners plus an explicit
// window — supervised by the ODMRP + world invariant oracles.
// ---------------------------------------------------------------------------

use wmm::experiments::scenario_compiler::compile;
use wmm::experiments::WorkloadScenario;
use wmm::mesh_sim::simulator::Simulator;
use wmm::odmrp::stats::MulticastApp as _;

/// Two groups, two receivers each, two generated churners per group cycling
/// through a 15–45 s window, and one explicit window on node 0.
const CHURN_TOML: &str = r#"
name = "churn-multi"

[topology]
family = "random"
nodes = 26
area_side = 600.0
range = 250.0

[groups]
count = 2
members = 2
sources = 1

[time]
data_start_secs = 10.0
data_stop_secs = 50.0

[churn]
per_group = 2
start_secs = 15.0
end_secs = 45.0
dwell_secs = 10.0
stagger_secs = 3.0

[[churn.window]]
node = 0
group = 0
join_secs = 20.0
leave_secs = 30.0
"#;

fn compiled_churn() -> WorkloadScenario {
    compile(CHURN_TOML).expect("CHURN_TOML compiles").scenario
}

/// Delivery credit node `who` holds for `gid` from each of `sources`.
fn credited(sim: &Simulator<OdmrpNode>, who: NodeId, gid: GroupId, sources: &[NodeId]) -> u64 {
    let stats = sim.protocols()[who.index()].node_stats();
    sources
        .iter()
        .filter_map(|s| stats.delivered.get(&(gid, *s)))
        .map(|d| d.count)
        .sum()
}

#[test]
fn compiled_multi_group_churn_passes_oracles_and_credits_windows() {
    let w = compiled_churn();
    let layout = w.layout(1);
    assert_eq!(layout.groups.len(), 2);
    // Two generated churners per group, plus the explicit window on group 0.
    assert_eq!(layout.groups[0].churners.len(), 3);
    assert_eq!(layout.groups[1].churners.len(), 2);
    for g in &layout.groups {
        for (c, expected) in &g.churners {
            assert!(
                layout.roles[c.index()]
                    .windows
                    .iter()
                    .any(|mw| mw.group == g.group),
                "churner {c:?} has no membership window for its group"
            );
            assert!(*expected > 0, "churner {c:?} expects no packets");
        }
    }
    // Supervised runs (invariant oracles every refresh round) complete and
    // never credit more than the windowed expectations.
    for (variant, seed) in [
        (Variant::Original, 1),
        (Variant::Metric(MetricKind::Ett), 1),
    ] {
        let m = w.run_supervised(variant, seed);
        assert!(m.sent > 0, "{variant:?}: no data sent");
        assert!(m.delivered > 0, "{variant:?}: nothing delivered");
        assert!(
            m.delivered <= m.expected,
            "{variant:?}: delivered {} beats the windowed expectation {}",
            m.delivered,
            m.expected
        );
    }
}

#[test]
fn compiled_churner_gains_no_delivery_credit_after_leaving() {
    let w = compiled_churn();
    let seed = 2;
    let layout = w.layout(seed);
    let group = &layout.groups[0];
    let (churner, expected) = group.churners[0];
    let window = *layout.roles[churner.index()]
        .windows
        .iter()
        .find(|mw| mw.group == group.group)
        .expect("generated churner has a window");
    assert!(expected > 0);

    let mut sim = w.build(Variant::Metric(MetricKind::Etx), seed);
    sim.run_until(window.leave);
    let at_leave = credited(&sim, churner, group.group, &group.sources);
    assert!(
        at_leave > 0,
        "churner {churner:?} received nothing inside its window"
    );
    sim.run_until(w.run_until());
    let at_end = credited(&sim, churner, group.group, &group.sources);
    // Delivery credit is gated on membership at arrival time: the count is
    // frozen the instant the receiver leaves, even though data keeps
    // flowing to the permanent members for another 15+ seconds.
    assert_eq!(
        at_end, at_leave,
        "churner {churner:?} kept accruing delivery credit after leaving"
    );
    assert!(
        at_end <= expected,
        "credit {at_end} beats expectation {expected}"
    );
}

#[test]
fn flash_crowd_windows_join_staggered_and_leave_together() {
    let src = CHURN_TOML.replace("stagger_secs = 3.0", "stagger_secs = 3.0\nflash = true");
    let w = compile(&src).expect("flash TOML compiles").scenario;
    let layout = w.layout(3);
    for g in &layout.groups {
        // Generated churners only (the explicit window keeps its own times).
        let windows: Vec<_> = g.churners[..2]
            .iter()
            .map(|(c, _)| {
                *layout.roles[c.index()]
                    .windows
                    .iter()
                    .find(|mw| mw.group == g.group)
                    .expect("churner window")
            })
            .collect();
        assert_eq!(windows[0].join, SimTime::from_secs(15));
        assert_eq!(windows[1].join, SimTime::from_secs(18));
        // A flash crowd stays until the churn window closes.
        assert!(windows.iter().all(|mw| mw.leave == SimTime::from_secs(45)));
    }
}
