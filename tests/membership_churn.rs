//! Dynamic group membership: receivers joining and leaving mid-run, the
//! churn ODMRP's on-demand forwarding group was designed to absorb.

use wmm::mcast_metrics::MetricKind;
use wmm::mesh_sim::prelude::*;
use wmm::odmrp::{NodeRole, OdmrpConfig, OdmrpNode, Variant};

const GROUP: GroupId = GroupId(0);

fn run(window: Option<(u64, u64)>) -> Vec<OdmrpNode> {
    let mut medium = LinkTableMedium::new();
    for i in 0..3u32 {
        medium.add_link(NodeId::new(i), NodeId::new(i + 1), 0.0);
    }
    let cfg = OdmrpConfig {
        variant: Variant::Metric(MetricKind::Etx),
        ..OdmrpConfig::default()
    };
    let mut roles = vec![NodeRole::forwarder(); 4];
    roles[0] = NodeRole::source(GROUP, SimTime::from_secs(10), SimTime::from_secs(130));
    roles[3] = match window {
        Some((j, l)) => {
            NodeRole::member_during(GROUP, SimTime::from_secs(j), SimTime::from_secs(l))
        }
        None => NodeRole::member(GROUP),
    };
    let nodes: Vec<OdmrpNode> = roles
        .into_iter()
        .map(|r| OdmrpNode::new(cfg.clone(), r))
        .collect();
    let mut sim = Simulator::new(
        mesh_sim::topology::chain(4, 50.0),
        Box::new(medium),
        WorldConfig {
            seed: 17,
            ..WorldConfig::default()
        },
        nodes,
    );
    sim.run_until(SimTime::from_secs(132));
    let (nodes, _) = sim.into_parts();
    nodes
}

#[test]
fn windowed_member_receives_roughly_its_window() {
    // Member is subscribed for 60 s of the 120 s transmission.
    let nodes = run(Some((40, 100)));
    let got = nodes[3].stats().total_delivered();
    let sent = nodes[0].stats().total_sent();
    // 60/120 of the stream, minus the join latency of roughly one refresh
    // round; forwarding-group soft state may deliver a little past the
    // leave instant, but never the whole stream.
    let share = got as f64 / sent as f64;
    assert!(
        (0.40..=0.55).contains(&share),
        "windowed member got {share:.3} of the stream ({got}/{sent})"
    );
}

#[test]
fn permanent_member_beats_windowed_member() {
    let windowed = run(Some((40, 100)))[3].stats().total_delivered();
    let permanent = run(None)[3].stats().total_delivered();
    assert!(permanent > windowed + 500);
}

#[test]
fn never_joined_receives_nothing() {
    // A window entirely outside the transmission delivers nothing.
    let nodes = run(Some((500, 600)));
    assert_eq!(nodes[3].stats().total_delivered(), 0);
    // And the forwarding group was never established through node 2.
    assert_eq!(nodes[2].stats().data_forwards, 0);
}
