//! Mobility integration: the protocol stack keeps functioning while the
//! topology changes under it.

use wmm::experiments::scenario::MeshScenario;
use wmm::experiments::RunMeasurement;
use wmm::mcast_metrics::MetricKind;
use wmm::mesh_sim::geometry::Area;
use wmm::mesh_sim::mobility::{RandomWaypoint, Static};
use wmm::mesh_sim::time::{SimDuration, SimTime};
use wmm::odmrp::Variant;

fn scenario() -> MeshScenario {
    let mut s = MeshScenario::quick();
    s.nodes = 20;
    s.area_side = 600.0;
    s.groups = 1;
    s.members_per_group = 5;
    s.data_start = SimTime::from_secs(15);
    s.data_stop = SimTime::from_secs(90);
    s
}

fn run(mobile: Option<(f64, f64)>, variant: Variant, seed: u64) -> RunMeasurement {
    let s = scenario();
    let groups = s.layout(seed).groups;
    let mut sim = s.build(variant, seed);
    match mobile {
        Some((lo, hi)) => sim.set_mobility(Box::new(
            RandomWaypoint::new(Area::square(s.area_side), lo, hi, SimDuration::from_secs(5))
                .with_tick(SimDuration::from_millis(500)),
        )),
        None => sim.set_mobility(Box::new(Static)),
    }
    sim.run_until(s.run_until());
    RunMeasurement::from_sim(&sim, &groups, seed)
}

#[test]
fn protocol_survives_mobility() {
    let m = run(Some((1.0, 8.0)), Variant::Metric(MetricKind::Spp), 2);
    assert!(
        m.pdr() > 0.2,
        "mobile SPP run should still deliver, got {:.3}",
        m.pdr()
    );
    assert!(m.pdr() <= 1.0);
}

#[test]
fn static_model_matches_no_model() {
    // Attaching the Static mobility model must not perturb the simulation.
    let with_static = run(None, Variant::Original, 3);
    let s = scenario();
    let groups = s.layout(3).groups;
    let mut sim = s.build(Variant::Original, 3);
    sim.run_until(s.run_until());
    let without = RunMeasurement::from_sim(&sim, &groups, 3);
    assert_eq!(with_static.delivered, without.delivered);
    assert_eq!(with_static.sent, without.sent);
}

#[test]
fn mobility_runs_are_deterministic() {
    let a = run(Some((1.0, 5.0)), Variant::Metric(MetricKind::Etx), 7);
    let b = run(Some((1.0, 5.0)), Variant::Metric(MetricKind::Etx), 7);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn mobility_shrinks_the_metric_advantage() {
    // Absolute PDR can even *rise* under random waypoint (its center bias
    // densifies the network), but the paper's premise must show up as a
    // shrinking SPP-over-baseline advantage: probe history describes links
    // that no longer exist.
    let seeds = [11u64, 12, 13];
    let gain = |mobile: Option<(f64, f64)>| {
        let mut base = 0.0;
        let mut spp = 0.0;
        for &s in &seeds {
            base += run(mobile, Variant::Original, s).pdr();
            spp += run(mobile, Variant::Metric(MetricKind::Spp), s).pdr();
        }
        spp / base
    };
    let static_gain = gain(None);
    let mobile_gain = gain(Some((15.0, 30.0)));
    assert!(
        static_gain > mobile_gain,
        "SPP advantage should shrink under mobility: static {static_gain:.3} vs mobile {mobile_gain:.3}"
    );
    assert!(static_gain > 1.02, "static mesh should show a real gain");
}
