//! Cross-crate integration tests: metrics + ODMRP + simulator + testbed
//! model + experiment harness, exercised through the umbrella crate.

use wmm::experiments::runner::{paper_variants, run_matrix, run_mesh_once, summarize};
use wmm::experiments::scenario::{MeshScenario, TestbedScenario};
use wmm::experiments::{run_testbed_once, RunMeasurement};
use wmm::mcast_metrics::MetricKind;
use wmm::mesh_sim::time::SimTime;
use wmm::odmrp::Variant;

fn tiny_mesh() -> MeshScenario {
    let mut s = MeshScenario::quick();
    s.nodes = 20;
    s.area_side = 600.0;
    s.groups = 1;
    s.members_per_group = 5;
    s.data_start = SimTime::from_secs(15);
    s.data_stop = SimTime::from_secs(75);
    s
}

#[test]
fn spp_beats_original_on_average() {
    let s = tiny_mesh();
    let seeds = [1u64, 2, 3];
    let mut orig = 0.0;
    let mut spp = 0.0;
    for &seed in &seeds {
        orig += run_mesh_once(&s, Variant::Original, seed).pdr();
        spp += run_mesh_once(&s, Variant::Metric(MetricKind::Spp), seed).pdr();
    }
    assert!(
        spp > orig,
        "SPP ({:.3}) should beat original ODMRP ({:.3}) on average",
        spp / 3.0,
        orig / 3.0
    );
}

#[test]
fn every_variant_delivers_something() {
    let s = tiny_mesh();
    for v in paper_variants() {
        let m = run_mesh_once(&s, v, 5);
        assert!(
            m.pdr() > 0.1,
            "{v}: PDR {:.3} suspiciously low — protocol broken?",
            m.pdr()
        );
        assert!(m.pdr() <= 1.0, "{v}: PDR above 1 — duplicate leak");
        assert!(
            m.mean_delay_s > 0.0 && m.mean_delay_s < 1.0,
            "{v}: delay out of range"
        );
    }
}

#[test]
fn probe_overhead_ordering_matches_table1() {
    // Pair-probing metrics (PP, ETT) must pay several times the overhead of
    // single-probe metrics (ETX, METX, SPP); the baseline pays none.
    let s = tiny_mesh();
    let get = |v: Variant| run_mesh_once(&s, v, 9).probe_overhead_pct;
    let none = get(Variant::Original);
    let etx = get(Variant::Metric(MetricKind::Etx));
    let spp = get(Variant::Metric(MetricKind::Spp));
    let ett = get(Variant::Metric(MetricKind::Ett));
    let pp = get(Variant::Metric(MetricKind::Pp));
    assert_eq!(none, 0.0);
    assert!(etx > 0.0 && spp > 0.0);
    assert!(ett > 2.0 * etx, "ETT {ett:.2}% vs ETX {etx:.2}%");
    assert!(pp > 2.0 * spp, "PP {pp:.2}% vs SPP {spp:.2}%");
}

#[test]
fn experiment_matrix_is_deterministic() {
    let s = tiny_mesh();
    let run = || {
        let r = run_matrix(
            &[Variant::Original, Variant::Metric(MetricKind::Metx)],
            &[4, 5],
            |v, seed| run_mesh_once(&s, v, seed),
        );
        r.iter().map(|m| (m.delivered, m.sent)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn summaries_normalize_against_baseline() {
    let s = tiny_mesh();
    let results: Vec<RunMeasurement> = run_matrix(
        &[Variant::Original, Variant::Metric(MetricKind::Spp)],
        &[1, 2],
        |v, seed| run_mesh_once(&s, v, seed),
    );
    let summ = summarize(&results, Variant::Original);
    let base = summ
        .iter()
        .find(|x| x.variant == Variant::Original)
        .unwrap();
    assert!((base.normalized_throughput.mean - 1.0).abs() < 1e-9);
    assert!((base.normalized_delay.mean - 1.0).abs() < 1e-9);
}

#[test]
fn testbed_model_metric_variant_beats_original() {
    let s = TestbedScenario {
        data_start: SimTime::from_secs(20),
        data_stop: SimTime::from_secs(180),
        ..TestbedScenario::quick()
    };
    let seeds = [1u64, 2, 3];
    let mut orig = 0.0;
    let mut best = 0.0;
    for &seed in &seeds {
        orig += run_testbed_once(&s, Variant::Original, seed).pdr();
        best += run_testbed_once(&s, Variant::Metric(MetricKind::Spp), seed).pdr();
    }
    assert!(
        best > orig,
        "testbed: SPP ({:.3}) should beat original ({:.3})",
        best / 3.0,
        orig / 3.0
    );
}

#[test]
fn analytic_figures_match_paper_exactly() {
    use wmm::mcast_metrics::{choose_path, figure1_candidates, figure3_candidates};
    let f1 = figure1_candidates();
    let metx = choose_path(&MetricKind::Metx.build(), &f1);
    let spp = choose_path(&MetricKind::Spp.build(), &f1);
    assert_eq!(f1[metx.winner].name, "A-B-D");
    assert_eq!(f1[spp.winner].name, "A-C-D");

    let f3 = figure3_candidates();
    let etx = choose_path(&MetricKind::Etx.build(), &f3);
    let spp3 = choose_path(&MetricKind::Spp.build(), &f3);
    assert_eq!(f3[etx.winner].name, "A-E-D");
    assert_eq!(f3[spp3.winner].name, "A-B-C-D");
}

#[test]
fn tree_extraction_produces_connected_edges() {
    let s = TestbedScenario::quick();
    let mut sim = s.build(Variant::Metric(MetricKind::Pp), 3);
    sim.run_until(s.run_until());
    let edges = wmm::experiments::trees::tree_usage(&sim);
    assert!(!edges.is_empty(), "no tree edges selected");
    // Every tree edge must be a real link of the floorplan.
    let links: std::collections::HashSet<(u32, u32)> = wmm::testbed::floorplan::links()
        .into_iter()
        .flat_map(|(a, b, _)| [(a, b), (b, a)])
        .collect();
    for e in &edges {
        let a = wmm::testbed::label_of(e.from);
        let b = wmm::testbed::label_of(e.to);
        assert!(links.contains(&(a, b)), "tree edge {a}->{b} is not a link");
    }
}
