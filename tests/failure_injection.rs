//! Failure-injection tests: links die mid-run and the metric-enhanced
//! protocol must route around them within a few refresh cycles.

use wmm::mcast_metrics::MetricKind;
use wmm::mesh_sim::geometry::Pos;
use wmm::mesh_sim::ids::{GroupId, NodeId};
use wmm::mesh_sim::medium::{LinkTableMedium, Medium, RxPlan};
use wmm::mesh_sim::prelude::*;
use wmm::odmrp::{NodeRole, OdmrpConfig, OdmrpNode, Variant};

/// Medium wrapper that rewrites link losses at scheduled instants.
#[derive(Debug)]
struct ScriptedMedium {
    inner: LinkTableMedium,
    /// `(when, from, to, new_loss)`, sorted by time.
    script: Vec<(SimTime, NodeId, NodeId, f64)>,
    next: usize,
}

impl ScriptedMedium {
    fn new(inner: LinkTableMedium, mut script: Vec<(SimTime, NodeId, NodeId, f64)>) -> Self {
        script.sort_by_key(|e| e.0);
        ScriptedMedium {
            inner,
            script,
            next: 0,
        }
    }
}

impl Medium for ScriptedMedium {
    fn fan_out(
        &mut self,
        tx: NodeId,
        positions: &[Pos],
        now: SimTime,
        rng: &mut SimRng,
        out: &mut Vec<RxPlan>,
    ) {
        while self.next < self.script.len() && self.script[self.next].0 <= now {
            let (_, a, b, loss) = self.script[self.next];
            self.inner.set_loss(a, b, loss);
            self.inner.set_loss(b, a, loss);
            self.next += 1;
        }
        self.inner.fan_out(tx, positions, now, rng, out)
    }

    fn phy(&self) -> &PhyParams {
        self.inner.phy()
    }
}

const GROUP: GroupId = GroupId(0);

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Diamond: source 0, relays 1 (path A) and 2 (path B), member 3.
/// Path A starts perfect; at t=150s it goes black. Path B is always decent.
fn run_blackout(variant: Variant) -> (u64, u64, u64) {
    let mut table = LinkTableMedium::new();
    table.add_link(n(0), n(1), 0.02);
    table.add_link(n(1), n(3), 0.02);
    table.add_link(n(0), n(2), 0.10);
    table.add_link(n(2), n(3), 0.10);
    // Sense-only link (loss 1.0): the relays can carrier-sense each other's
    // transmissions but never decode them, avoiding the hidden-terminal
    // collisions at the member that would otherwise dominate the result.
    table.add_link(n(1), n(2), 1.0);
    let blackout = SimTime::from_secs(150);
    let medium = ScriptedMedium::new(
        table,
        vec![(blackout, n(0), n(1), 1.0), (blackout, n(1), n(3), 1.0)],
    );
    let cfg = OdmrpConfig {
        variant,
        ..OdmrpConfig::default()
    };
    let roles = vec![
        NodeRole::source(GROUP, SimTime::from_secs(30), SimTime::from_secs(300)),
        NodeRole::forwarder(),
        NodeRole::forwarder(),
        NodeRole::member(GROUP),
    ];
    let nodes: Vec<OdmrpNode> = roles
        .into_iter()
        .map(|r| OdmrpNode::new(cfg.clone(), r))
        .collect();
    let positions = vec![
        Pos::new(0.0, 0.0),
        Pos::new(50.0, 30.0),
        Pos::new(50.0, -30.0),
        Pos::new(100.0, 0.0),
    ];
    let mut sim = Simulator::new(
        positions,
        Box::new(medium),
        WorldConfig {
            seed: 21,
            ..WorldConfig::default()
        },
        nodes,
    );
    // Deliveries before the blackout...
    sim.run_until(blackout);
    let before = sim.protocols()[3].stats().total_delivered();
    // ...a grace window for re-routing (a few refresh cycles)...
    sim.run_until(blackout + SimDuration::from_secs(30));
    let during = sim.protocols()[3].stats().total_delivered();
    // ...and the steady state after.
    sim.run_until(SimTime::from_secs(302));
    let after = sim.protocols()[3].stats().total_delivered();
    (before, during - before, after - during)
}

#[test]
fn metric_odmrp_recovers_from_link_blackout() {
    let (before, _grace, after) = run_blackout(Variant::Metric(MetricKind::Spp));
    // 120s of data before the blackout, 120s after the grace window.
    assert!(
        before as f64 > 0.9 * 2400.0,
        "pre-blackout delivery broken: {before}"
    );
    assert!(
        after as f64 > 0.6 * 2400.0,
        "no recovery after blackout: {after} of ~2400"
    );
}

#[test]
fn recovery_holds_for_every_metric() {
    for kind in MetricKind::PAPER_SET {
        let (before, _, after) = run_blackout(Variant::Metric(kind));
        assert!(before > 2000, "{kind}: pre-blackout {before}");
        assert!(after > 1200, "{kind}: post-blackout {after}");
    }
}

#[test]
fn original_odmrp_also_recovers_via_flooding() {
    // Original ODMRP re-floods queries every refresh, so it finds the
    // surviving path too (it just cannot *prefer* good links).
    let (before, _, after) = run_blackout(Variant::Original);
    assert!(before > 2000);
    assert!(after > 1200, "original ODMRP failed to re-route: {after}");
}

#[test]
fn total_link_failure_stops_delivery() {
    // Sanity check of the injection mechanism itself: kill both paths and
    // delivery must cease.
    let mut table = LinkTableMedium::new();
    table.add_link(n(0), n(1), 0.0);
    table.add_link(n(1), n(3), 0.0);
    table.add_link(n(0), n(2), 0.0);
    table.add_link(n(2), n(3), 0.0);
    table.add_link(n(1), n(2), 1.0); // sense-only: no hidden terminal
    let blackout = SimTime::from_secs(60);
    let medium = ScriptedMedium::new(
        table,
        vec![
            (blackout, n(0), n(1), 1.0),
            (blackout, n(1), n(3), 1.0),
            (blackout, n(0), n(2), 1.0),
            (blackout, n(2), n(3), 1.0),
        ],
    );
    let cfg = OdmrpConfig::default();
    let roles = vec![
        NodeRole::source(GROUP, SimTime::from_secs(10), SimTime::from_secs(120)),
        NodeRole::forwarder(),
        NodeRole::forwarder(),
        NodeRole::member(GROUP),
    ];
    let nodes: Vec<OdmrpNode> = roles
        .into_iter()
        .map(|r| OdmrpNode::new(cfg.clone(), r))
        .collect();
    let mut sim = Simulator::new(
        vec![
            Pos::new(0.0, 0.0),
            Pos::new(50.0, 30.0),
            Pos::new(50.0, -30.0),
            Pos::new(100.0, 0.0),
        ],
        Box::new(medium),
        WorldConfig::default(),
        nodes,
    );
    sim.run_until(blackout);
    let before = sim.protocols()[3].stats().total_delivered();
    sim.run_until(SimTime::from_secs(122));
    let after = sim.protocols()[3].stats().total_delivered();
    assert!(before > 900);
    assert_eq!(after, before, "packets delivered across dead links");
}
