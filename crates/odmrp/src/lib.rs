//! # odmrp — On-Demand Multicast Routing Protocol over `mesh-sim`
//!
//! A from-scratch implementation of ODMRP (Lee, Gerla, Chiang — WCNC 1999)
//! and the metric-enhanced version described in §3 of *"High-Throughput
//! Multicast Routing Metrics in Wireless Mesh Networks"* (ICDCS 2006):
//!
//! * sources flood `JOIN QUERY` packets every refresh interval;
//! * in the metric variants, each forwarder charges the incoming link's cost
//!   (from its `NEIGHBOR_TABLE`, fed by the probes of `mcast-metrics`) into
//!   the query before rebroadcasting, and **forwards improving duplicates**
//!   for up to α after the first copy;
//! * members wait **δ** after the first query of a round, then answer the
//!   best one with a `JOIN REPLY` naming their chosen upstream;
//! * nodes named in a reply join the **forwarding group** (soft state with
//!   timeout) and propagate the reply toward the source;
//! * data packets are **link-layer broadcast** and rebroadcast by forwarding-
//!   group members, with a duplicate cache.
//!
//! The original protocol (`Variant::Original`) answers the *first* query
//! instead and never forwards duplicates — making route selection equivalent
//! to minimum-delay/minimum-hop, which is exactly the baseline the paper
//! measures against.
//!
//! ## Example
//!
//! Build the node set for a 3-node chain where node 0 multicasts to node 2:
//!
//! ```
//! use odmrp::{CbrSource, NodeRole, OdmrpConfig, OdmrpNode, Variant};
//! use mcast_metrics::MetricKind;
//! use mesh_sim::prelude::*;
//!
//! let cfg = OdmrpConfig::with_metric(MetricKind::Spp);
//! let roles = vec![
//!     NodeRole::source(GroupId(0), SimTime::from_secs(1), SimTime::from_secs(10)),
//!     NodeRole::forwarder(),
//!     NodeRole::member(GroupId(0)),
//! ];
//! let nodes: Vec<OdmrpNode> =
//!     roles.into_iter().map(|r| OdmrpNode::new(cfg.clone(), r)).collect();
//! assert_eq!(nodes.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod invariants;
pub mod messages;
mod node;
pub mod stats;

pub use config::{CbrSource, DegradedModeConfig, MembershipWindow, NodeRole, OdmrpConfig, Variant};
pub use messages::OdmrpMsg;
pub use node::OdmrpNode;
pub use stats::{Delivered, MulticastApp, NodeStats};
