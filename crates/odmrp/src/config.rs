//! ODMRP configuration.

use mcast_metrics::{EstimatorConfig, MetricKind};
use mesh_sim::ids::GroupId;
use mesh_sim::time::{SimDuration, SimTime};

/// Which route-selection policy a protocol variant uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// Original ODMRP: a member answers the **first** `JOIN QUERY` it hears
    /// (minimum-delay ≈ minimum-hop path); duplicates are never forwarded.
    Original,
    /// Metric-enhanced ODMRP (§3.1): queries accumulate link costs, members
    /// wait δ and answer the best query; forwarders rebroadcast improving
    /// duplicates within the α window.
    Metric(MetricKind),
}

impl Variant {
    /// The paper's label for the variant (e.g. `ODMRP_SPP`).
    pub fn label(self) -> String {
        match self {
            Variant::Original => "ODMRP".to_string(),
            Variant::Metric(k) => format!("ODMRP_{}", k.name()),
        }
    }

    /// The metric kind, if any.
    pub fn metric_kind(self) -> Option<MetricKind> {
        match self {
            Variant::Original => None,
            Variant::Metric(k) => Some(k),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Degraded-mode resilience knobs, shared by ODMRP and MAODV nodes.
///
/// Off by default: the baseline protocols reproduce the paper as published,
/// and enabling the layer changes routing behavior (and therefore replay
/// hashes). The recovery experiments flip `enabled` per run.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedModeConfig {
    /// Master switch for staleness quarantine, min-hop fallback and refresh
    /// backoff.
    pub enabled: bool,
    /// Bound on the refresh-backoff exponent: after rounds that elect no
    /// forwarding state the refresh interval grows ×2 per round up to
    /// `2^max_backoff_exp` × the nominal interval.
    pub max_backoff_exp: u32,
}

impl Default for DegradedModeConfig {
    fn default() -> Self {
        DegradedModeConfig {
            enabled: false,
            max_backoff_exp: 3,
        }
    }
}

impl DegradedModeConfig {
    /// The enabled configuration with default thresholds.
    pub fn on() -> Self {
        DegradedModeConfig {
            enabled: true,
            ..DegradedModeConfig::default()
        }
    }
}

/// Per-node protocol parameters (identical across a run).
#[derive(Debug, Clone, PartialEq)]
pub struct OdmrpConfig {
    /// Route-selection policy.
    pub variant: Variant,
    /// Probe-interval scaling for metric variants: probe intervals are
    /// divided by this factor (1.0 = the paper's default rates; 5.0 = the
    /// "high overhead" column of Fig. 2).
    pub probe_rate: f64,
    /// Member wait before answering (paper: 30 ms).
    pub delta: SimDuration,
    /// Duplicate-forwarding window at intermediate nodes (paper: 20 ms).
    pub alpha: SimDuration,
    /// Source refresh period for `JOIN QUERY` floods (classic ODMRP: 3 s).
    pub refresh_interval: SimDuration,
    /// Forwarding-group membership lifetime (classic: 3 × refresh).
    pub fg_timeout: SimDuration,
    /// Maximum network-layer jitter before (re)broadcasting control packets.
    pub control_jitter: SimDuration,
    /// Maximum hop count a query may travel.
    pub max_hops: u8,
    /// Link estimation tuning.
    pub estimator: EstimatorConfig,
    /// Degraded-mode resilience (staleness quarantine, min-hop fallback,
    /// refresh backoff). Disabled by default.
    pub degraded: DegradedModeConfig,
}

impl Default for OdmrpConfig {
    fn default() -> Self {
        OdmrpConfig {
            variant: Variant::Original,
            probe_rate: 1.0,
            delta: SimDuration::from_millis(30),
            alpha: SimDuration::from_millis(20),
            refresh_interval: SimDuration::from_secs(3),
            fg_timeout: SimDuration::from_secs(9),
            control_jitter: SimDuration::from_millis(4),
            max_hops: 32,
            estimator: EstimatorConfig::default(),
            degraded: DegradedModeConfig::default(),
        }
    }
}

impl OdmrpConfig {
    /// Configuration for a metric-enhanced variant at the default probe rate.
    pub fn with_metric(kind: MetricKind) -> Self {
        OdmrpConfig {
            variant: Variant::Metric(kind),
            ..OdmrpConfig::default()
        }
    }
}

/// A constant-bit-rate traffic source attached to a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CbrSource {
    /// Group the traffic is sent to.
    pub group: GroupId,
    /// Payload size per packet in bytes (paper: 512).
    pub bytes: u32,
    /// Packet inter-departure time (paper: 50 ms = 20 packets/s).
    pub interval: SimDuration,
    /// First packet departure.
    pub start: SimTime,
    /// No departures at or after this instant.
    pub stop: SimTime,
}

impl CbrSource {
    /// The paper's workload: 512-byte packets at 20 packets/s.
    pub fn paper_default(group: GroupId, start: SimTime, stop: SimTime) -> Self {
        CbrSource {
            group,
            bytes: 512,
            interval: SimDuration::from_millis(50),
            start,
            stop,
        }
    }
}

/// A time-bounded group membership: the node is a receiver of `group` from
/// `join` (inclusive) until `leave` (exclusive). Models application churn —
/// users tuning in and out of a webcast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipWindow {
    /// The group joined.
    pub group: GroupId,
    /// Join instant.
    pub join: SimTime,
    /// Leave instant.
    pub leave: SimTime,
}

/// The role of one node in a run: which groups it belongs to and which it
/// sources traffic for.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeRole {
    /// Groups this node is a receiving member of for the whole run.
    pub member_of: Vec<GroupId>,
    /// Traffic this node originates.
    pub sources: Vec<CbrSource>,
    /// Time-bounded memberships (in addition to `member_of`).
    pub windows: Vec<MembershipWindow>,
}

impl NodeRole {
    /// A node that only forwards.
    pub fn forwarder() -> Self {
        NodeRole::default()
    }

    /// Whether this node is a receiving member of `group` at `now`.
    pub fn is_member(&self, group: GroupId, now: SimTime) -> bool {
        self.member_of.contains(&group)
            || self
                .windows
                .iter()
                .any(|w| w.group == group && w.join <= now && now < w.leave)
    }

    /// A member of `group` only during `[join, leave)`.
    ///
    /// # Panics
    ///
    /// Panics if `leave <= join` — an empty or inverted window silently
    /// produces a node that never receives, turning every PDR measurement
    /// on it vacuous, so it is rejected at construction.
    pub fn member_during(group: GroupId, join: SimTime, leave: SimTime) -> Self {
        assert!(
            leave > join,
            "membership window for {group} must have leave ({leave}) after join ({join})"
        );
        NodeRole {
            windows: vec![MembershipWindow { group, join, leave }],
            ..NodeRole::default()
        }
    }

    /// A receiving member of `group`.
    pub fn member(group: GroupId) -> Self {
        NodeRole {
            member_of: vec![group],
            ..NodeRole::default()
        }
    }

    /// A source for `group` with the paper's CBR workload.
    ///
    /// # Panics
    ///
    /// Panics if `stop <= start` — a source with an empty traffic window
    /// originates nothing, which makes delivery ratios 0/0 downstream.
    pub fn source(group: GroupId, start: SimTime, stop: SimTime) -> Self {
        assert!(
            stop > start,
            "CBR window for {group} must have stop ({stop}) after start ({start})"
        );
        NodeRole {
            sources: vec![CbrSource::paper_default(group, start, stop)],
            ..NodeRole::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Variant::Original.label(), "ODMRP");
        assert_eq!(Variant::Metric(MetricKind::Spp).label(), "ODMRP_SPP");
        assert_eq!(Variant::Metric(MetricKind::Pp).to_string(), "ODMRP_PP");
    }

    #[test]
    fn defaults_match_paper_parameters() {
        let c = OdmrpConfig::default();
        assert_eq!(c.delta, SimDuration::from_millis(30));
        assert_eq!(c.alpha, SimDuration::from_millis(20));
        assert!(c.alpha < c.delta, "paper requires alpha < delta");
    }

    #[test]
    fn paper_cbr_is_20pps_512b() {
        let s = CbrSource::paper_default(GroupId(0), SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(s.bytes, 512);
        assert_eq!(s.interval, SimDuration::from_millis(50));
    }

    #[test]
    fn role_helpers() {
        let m = NodeRole::member(GroupId(2));
        assert_eq!(m.member_of, vec![GroupId(2)]);
        assert!(m.sources.is_empty());
        assert_eq!(NodeRole::forwarder(), NodeRole::default());
    }

    #[test]
    #[should_panic(expected = "leave")]
    fn member_during_rejects_inverted_window() {
        let _ = NodeRole::member_during(GroupId(0), SimTime::from_secs(20), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "leave")]
    fn member_during_rejects_empty_window() {
        let t = SimTime::from_secs(10);
        let _ = NodeRole::member_during(GroupId(0), t, t);
    }

    #[test]
    #[should_panic(expected = "stop")]
    fn source_rejects_empty_traffic_window() {
        let t = SimTime::from_secs(30);
        let _ = NodeRole::source(GroupId(0), t, t);
    }

    #[test]
    fn membership_windows() {
        let g = GroupId(1);
        let r = NodeRole::member_during(g, SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!r.is_member(g, SimTime::from_secs(9)));
        assert!(r.is_member(g, SimTime::from_secs(10)));
        assert!(r.is_member(g, SimTime::from_secs(19)));
        assert!(!r.is_member(g, SimTime::from_secs(20)));
        assert!(!r.is_member(GroupId(2), SimTime::from_secs(15)));
        // Permanent membership is unaffected by windows.
        let p = NodeRole::member(g);
        assert!(p.is_member(g, SimTime::from_secs(999_999)));
    }
}
