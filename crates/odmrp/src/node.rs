//! The ODMRP node: one [`Protocol`] instance per simulated router.
//!
//! Implements original ODMRP (first-query route selection) and the
//! metric-enhanced protocol of §3.1: cost-accumulating `JOIN QUERY` floods,
//! bounded duplicate forwarding (α window + improvement rule), δ-delayed
//! best-query `JOIN REPLY` at members, forwarding-group maintenance with
//! soft-state timeouts, and flooding of data over the forwarding group.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mcast_metrics::{
    AnyMetric, Freshness, LinkObservation, Metric, NeighborTable, PathCost, Prober,
};
use mesh_sim::ids::{GroupId, NodeId, TimerId, TxHandle};
use mesh_sim::protocol::{Protocol, RxMeta, TxOutcome};
use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter, SnapshotState};
use mesh_sim::time::{SimDuration, SimTime};
use mesh_sim::trace::Decision;
use mesh_sim::world::Ctx;

use crate::config::{NodeRole, OdmrpConfig};
use crate::messages::{class, DataPacket, JoinQuery, JoinReply, JoinTableEntry, OdmrpMsg};
use crate::stats::NodeStats;

/// Bound on the network-layer duplicate cache (per node).
const DATA_CACHE_CAP: usize = 50_000;

#[derive(Debug)]
enum TimerPayload {
    /// Send the next probe round.
    Probe,
    /// Emit the next CBR packet of `role.sources[i]`.
    Cbr(usize),
    /// Flood the next `JOIN QUERY` for `role.sources[i]`.
    Refresh(usize),
    /// δ expired: answer the best query of `(source, seq)`.
    Delta(NodeId, u32),
    /// Jittered (re)broadcast of the query for `(source, seq)`.
    ForwardQuery(NodeId, u32),
}

impl Snap for TimerPayload {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            TimerPayload::Probe => w.put_u8(0),
            TimerPayload::Cbr(i) => {
                w.put_u8(1);
                w.put_usize(*i);
            }
            TimerPayload::Refresh(i) => {
                w.put_u8(2);
                w.put_usize(*i);
            }
            TimerPayload::Delta(n, s) => {
                w.put_u8(3);
                n.snap(w);
                w.put_u32(*s);
            }
            TimerPayload::ForwardQuery(n, s) => {
                w.put_u8(4);
                n.snap(w);
                w.put_u32(*s);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => TimerPayload::Probe,
            1 => TimerPayload::Cbr(r.usize()?),
            2 => TimerPayload::Refresh(r.usize()?),
            3 => TimerPayload::Delta(Snap::unsnap(r)?, r.u32()?),
            4 => TimerPayload::ForwardQuery(Snap::unsnap(r)?, r.u32()?),
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

/// Per-`(source, seq)` query round state (the message cache of §3.1).
#[derive(Debug)]
struct QueryState {
    group: GroupId,
    /// Best accumulated cost seen so far.
    best_cost: PathCost,
    /// Upstream neighbor of the best query.
    upstream: NodeId,
    /// Hop count of the best query (after our hop).
    hop_count: u8,
    /// Forwarding of improving duplicates allowed until here.
    alpha_deadline: SimTime,
    /// Cost at our last rebroadcast, if we rebroadcast already.
    best_forwarded: Option<PathCost>,
    /// A `ForwardQuery` timer is outstanding.
    forward_pending: bool,
    /// Audit bit: the currently-best upstream's cost was computed from a
    /// quarantined link estimate's measured values. Degraded mode must keep
    /// this false everywhere (the no-quarantined-route oracle checks).
    used_quarantined: bool,
}

impl Snap for QueryState {
    fn snap(&self, w: &mut SnapWriter) {
        self.group.snap(w);
        self.best_cost.snap(w);
        self.upstream.snap(w);
        w.put_u8(self.hop_count);
        self.alpha_deadline.snap(w);
        self.best_forwarded.snap(w);
        w.put_bool(self.forward_pending);
        w.put_bool(self.used_quarantined);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(QueryState {
            group: Snap::unsnap(r)?,
            best_cost: Snap::unsnap(r)?,
            upstream: Snap::unsnap(r)?,
            hop_count: r.u8()?,
            alpha_deadline: Snap::unsnap(r)?,
            best_forwarded: Snap::unsnap(r)?,
            forward_pending: r.bool()?,
            used_quarantined: r.bool()?,
        })
    }
}

/// An ODMRP protocol instance.
///
/// Construct with [`OdmrpNode::new`], hand a `Vec` of them to
/// [`mesh_sim::simulator::Simulator`], and read [`OdmrpNode::stats`] after
/// the run. See the `experiments` crate for turnkey scenario runners.
#[derive(Debug)]
pub struct OdmrpNode {
    cfg: OdmrpConfig,
    role: NodeRole,
    metric: Option<AnyMetric>,
    prober: Option<Prober>,
    table: NeighborTable,
    me: NodeId,

    // BTree containers throughout: checkpointing serializes them in
    // iteration order, which must be key order, never hash order
    // (mesh-lint rule R1).
    timers: BTreeMap<u64, TimerPayload>,
    timer_token: u64,

    query_state: BTreeMap<(NodeId, u32), QueryState>,
    /// Groups this node currently forwards for, with expiry.
    fg: BTreeMap<GroupId, SimTime>,
    /// (source, seq) reply rounds already forwarded upstream.
    forwarded_reply: BTreeSet<(NodeId, u32)>,
    /// (source, seq) delta timers already scheduled.
    delta_scheduled: BTreeSet<(NodeId, u32)>,

    data_seen: BTreeSet<(NodeId, u32)>,
    data_seen_order: VecDeque<(NodeId, u32)>,
    data_seq: u32,
    refresh_seq: u32,

    /// Per-source refresh-backoff exponent (degraded mode; 0 = nominal).
    backoff_exp: Vec<u32>,
    /// Per-source refresh seq of the most recent query round we flooded.
    last_round: Vec<Option<u32>>,
    /// Per-source token of the pending `Refresh` timer, so a revival can
    /// cancel a backed-off timer and refresh immediately.
    refresh_token: Vec<Option<u64>>,
    /// Refresh rounds (ours, as source) that elected at least one forwarder
    /// — a `JOIN REPLY` for the round reached us. Keyed access only.
    elected_rounds: BTreeSet<u32>,
    /// Currently routing on the min-hop fallback (no usable estimates).
    fallback_active: bool,
    /// EWMA of MAC transmit failures (unicast retry exhaustion), one input
    /// of the local congestion signal charged by load-aware metrics.
    tx_fail_ewma: f64,

    stats: NodeStats,
}

impl OdmrpNode {
    /// Create a node with the given configuration and role.
    pub fn new(cfg: OdmrpConfig, role: NodeRole) -> Self {
        let metric = cfg
            .variant
            .metric_kind()
            .map(|k| k.build_with_rate(cfg.probe_rate));
        let prober = metric
            .as_ref()
            .map(|m| Prober::new(m.probe_plan()))
            .filter(|p| !matches!(p.plan(), mcast_metrics::ProbePlan::None));
        let table = NeighborTable::new(cfg.estimator.clone());
        let n_sources = role.sources.len();
        OdmrpNode {
            cfg,
            role,
            metric,
            prober,
            table,
            me: NodeId::new(0),
            timers: BTreeMap::new(),
            timer_token: 0,
            query_state: BTreeMap::new(),
            fg: BTreeMap::new(),
            forwarded_reply: BTreeSet::new(),
            delta_scheduled: BTreeSet::new(),
            data_seen: BTreeSet::new(),
            data_seen_order: VecDeque::new(),
            data_seq: 0,
            refresh_seq: 0,
            backoff_exp: vec![0; n_sources],
            last_round: vec![None; n_sources],
            refresh_token: vec![None; n_sources],
            elected_rounds: BTreeSet::new(),
            fallback_active: false,
            tx_fail_ewma: 0.0,
            stats: NodeStats::default(),
        }
    }

    /// Local congestion in `[0, 1]`: the worse of MAC-queue occupancy and
    /// the unicast retry-failure EWMA. A node handling a `JOIN QUERY` is the
    /// prospective forwarder, so this is the load that load-aware metrics
    /// (WCETT-LB) charge into the accumulated path cost. Under ODMRP's
    /// pure-broadcast substrate the MAC never reports retry exhaustion
    /// (broadcasts are unacknowledged), so queue occupancy is the live
    /// signal; the retry term activates if a deployment adds unicast
    /// traffic.
    fn local_congestion(&self, ctx: &Ctx<'_, OdmrpMsg>) -> f64 {
        let occupancy = ctx.mac_queue_len() as f64 / ctx.mac_queue_cap().max(1) as f64;
        occupancy.clamp(0.0, 1.0).max(self.tx_fail_ewma)
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The node's role (members/sources).
    pub fn role(&self) -> &NodeRole {
        &self.role
    }

    /// The node's configuration.
    pub fn config(&self) -> &OdmrpConfig {
        &self.cfg
    }

    /// The link-quality table (empty for the original variant).
    pub fn neighbor_table(&self) -> &NeighborTable {
        &self.table
    }

    /// Whether this node is currently a forwarding-group member of `group`.
    pub fn is_forwarding(&self, group: GroupId, now: SimTime) -> bool {
        self.fg.get(&group).is_some_and(|&t| t > now)
    }

    /// Groups this node has *ever* forwarded for (soft state ignored),
    /// ascending (`fg` is a `BTreeMap`).
    pub fn forwarding_groups(&self) -> Vec<GroupId> {
        self.fg.keys().copied().collect()
    }

    /// The upstream chosen for every `(source, seq)` query round this node
    /// has state for, sorted by key. The loop-freedom oracle chases these
    /// pointers across nodes: following upstreams of the same round must
    /// never revisit a node.
    pub fn query_upstreams(&self) -> Vec<((NodeId, u32), NodeId)> {
        self.query_state
            .iter()
            .map(|(&k, st)| (k, st.upstream))
            .collect()
    }

    /// Audit trail for the no-quarantined-route oracle: for every query
    /// round this node has state for, whether the currently-best upstream's
    /// cost consumed the measured values of a quarantined estimate. Sorted
    /// by key.
    pub fn query_audits(&self) -> Vec<((NodeId, u32), bool)> {
        self.query_state
            .iter()
            .map(|(&k, st)| (k, st.used_quarantined))
            .collect()
    }

    /// Current refresh-backoff exponent per source (degraded mode).
    pub fn backoff_exponents(&self) -> &[u32] {
        &self.backoff_exp
    }

    // ------------------------------------------------------------------

    fn arm(
        &mut self,
        ctx: &mut Ctx<'_, OdmrpMsg>,
        delay: SimDuration,
        payload: TimerPayload,
    ) -> u64 {
        self.timer_token += 1;
        let token = self.timer_token;
        self.timers.insert(token, payload);
        ctx.set_timer(delay, token);
        token
    }

    fn jitter(&self, ctx: &mut Ctx<'_, OdmrpMsg>) -> SimDuration {
        let max = self.cfg.control_jitter.as_nanos();
        SimDuration::from_nanos((ctx.rng().uniform() * max as f64) as u64)
    }

    fn send_probe_round(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>) {
        if self.prober.is_none() {
            return;
        }
        if self.cfg.degraded.enabled {
            // Re-classify the table on the probe tick and trace transitions
            // into quarantine.
            let mut revived = false;
            for (peer, f) in self.table.sweep_freshness(ctx.now()) {
                match f {
                    Freshness::Quarantined => {
                        self.stats.quarantines += 1;
                        ctx.trace_decision(Decision::MetricQuarantine { peer });
                    }
                    Freshness::Fresh => revived = true,
                    Freshness::Suspect => {}
                }
            }
            // A neighbor coming back fresh is new routing evidence: a
            // backed-off source cancels its delayed refresh and floods at
            // the nominal cadence again, so recovery is never gated on a
            // backed-off timer armed during the outage.
            if revived {
                for idx in 0..self.backoff_exp.len() {
                    if self.backoff_exp[idx] == 0 {
                        continue;
                    }
                    self.backoff_exp[idx] = 0;
                    self.last_round[idx] = None;
                    if let Some(token) = self.refresh_token[idx].take() {
                        self.timers.remove(&token);
                    }
                    ctx.trace_decision(Decision::RefreshBackoff { factor: 1 });
                    let delay = self.jitter(ctx);
                    let token = self.arm(ctx, delay, TimerPayload::Refresh(idx));
                    self.refresh_token[idx] = Some(token);
                }
            }
        }
        let Some(prober) = self.prober.as_mut() else {
            return;
        };
        // Reverse reports are only consumed by the bidirectional-ETX
        // ablation; skip the bytes otherwise.
        let reverse = if matches!(
            self.metric.as_ref().map(|m| m.kind()),
            Some(mcast_metrics::MetricKind::UnicastEtx)
        ) {
            self.table.reverse_report(ctx.now())
        } else {
            Vec::new()
        };
        for (msg, bytes) in prober.next_round(reverse) {
            if ctx
                .send_broadcast(OdmrpMsg::Probe(msg), bytes, class::PROBE)
                .is_ok()
            {
                self.stats.probes_sent += 1;
            }
        }
        if let Some(interval) = self.prober.as_ref().and_then(|p| p.plan().interval()) {
            // ±10 % desynchronization so probes of different nodes do not
            // phase-lock.
            let f = 0.9 + 0.2 * ctx.rng().uniform();
            self.arm(ctx, interval.mul_f64(f), TimerPayload::Probe);
        }
    }

    fn send_cbr(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>, idx: usize) {
        let spec = self.role.sources[idx];
        if ctx.now() >= spec.stop {
            return;
        }
        self.data_seq += 1;
        let pkt = DataPacket {
            group: spec.group,
            source: self.me,
            seq: self.data_seq,
            sent_at: ctx.now(),
            bytes: spec.bytes,
        };
        // Count as sent whether or not the MAC queue had room: the
        // application offered it (drop-tail loss is part of the protocol's
        // performance).
        *self.stats.sent.entry(spec.group).or_insert(0) += 1;
        let _ = ctx.send_broadcast(OdmrpMsg::Data(pkt), spec.bytes, class::DATA);
        self.arm(ctx, spec.interval, TimerPayload::Cbr(idx));
    }

    fn send_refresh(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>, idx: usize) {
        let spec = self.role.sources[idx];
        if ctx.now() >= spec.stop {
            return;
        }
        if self.cfg.degraded.enabled {
            // Adapt to the outcome of the previous round: a round that
            // elected no forwarder doubles the refresh interval (bounded);
            // any election resets to the nominal cadence.
            if let Some(prev) = self.last_round[idx] {
                if self.elected_rounds.remove(&prev) {
                    self.backoff_exp[idx] = 0;
                } else {
                    self.backoff_exp[idx] =
                        (self.backoff_exp[idx] + 1).min(self.cfg.degraded.max_backoff_exp);
                    self.stats.refresh_backoffs += 1;
                    ctx.trace_decision(Decision::RefreshBackoff {
                        factor: 1u32 << self.backoff_exp[idx],
                    });
                }
            }
        }
        self.refresh_seq += 1;
        let identity = self.metric.as_ref().map_or(0.0, |m| m.identity().value());
        let q = JoinQuery {
            group: spec.group,
            source: self.me,
            seq: self.refresh_seq,
            prev_hop: self.me,
            hop_count: 0,
            cost: identity,
        };
        if ctx
            .send_broadcast(OdmrpMsg::JoinQuery(q), JoinQuery::BYTES, class::CONTROL)
            .is_ok()
        {
            self.stats.queries_sent += 1;
        }
        self.last_round[idx] = Some(self.refresh_seq);
        let exp = self.backoff_exp[idx];
        let interval = if exp == 0 {
            self.cfg.refresh_interval
        } else {
            SimDuration::from_nanos(self.cfg.refresh_interval.as_nanos() << exp)
        };
        let token = self.arm(ctx, interval, TimerPayload::Refresh(idx));
        self.refresh_token[idx] = Some(token);
    }

    fn handle_query(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>, from: NodeId, q: &JoinQuery) {
        if q.source == self.me || q.hop_count >= self.cfg.max_hops {
            return;
        }
        let now = ctx.now();
        let key = (q.source, q.seq);
        let is_member = self.role.is_member(q.group, now);

        match self.metric.clone() {
            None => {
                // Original ODMRP: first copy only, reply immediately.
                if self.query_state.contains_key(&key) {
                    return;
                }
                self.query_state.insert(
                    key,
                    QueryState {
                        group: q.group,
                        best_cost: PathCost::new(q.hop_count as f64 + 1.0),
                        upstream: from,
                        hop_count: q.hop_count + 1,
                        alpha_deadline: now,
                        best_forwarded: None,
                        forward_pending: true,
                        used_quarantined: false,
                    },
                );
                let j = self.jitter(ctx);
                self.arm(ctx, j, TimerPayload::ForwardQuery(q.source, q.seq));
                if is_member && self.delta_scheduled.insert(key) {
                    let j = self.jitter(ctx);
                    self.arm(ctx, j, TimerPayload::Delta(q.source, q.seq));
                }
            }
            Some(metric) => {
                let (obs, fresh) = self.table.classified_observe(from, now);
                let degraded = self.cfg.degraded.enabled;
                // Degraded mode never feeds a quarantined estimate's
                // measured values to the metric: the no-history default is
                // substituted instead, which costs the link like an
                // unmeasured one (constant per-link cost = min-hop).
                let substitute = degraded && fresh == Some(Freshness::Quarantined);
                let (obs, used_measured) = if substitute {
                    self.stats.quarantine_substitutions += 1;
                    (LinkObservation::unknown(self.table.config()), false)
                } else {
                    (obs, fresh.is_some())
                };
                if degraded {
                    let fallback = !self.table.has_usable_estimate(now);
                    if fallback && !self.fallback_active {
                        self.stats.fallback_activations += 1;
                        ctx.trace_decision(Decision::FallbackActivated);
                    }
                    self.fallback_active = fallback;
                }
                let consumed_quarantined = used_measured && fresh == Some(Freshness::Quarantined);
                // We are the prospective forwarder of this query, so charge
                // our own congestion into the link cost. Congestion-blind
                // metrics ignore the field, leaving their costs (and
                // schedules) untouched.
                let mut obs = obs;
                obs.congestion = Some(self.local_congestion(ctx));
                let link = metric.link_cost(&obs);
                let new_cost = metric.accumulate(PathCost::new(q.cost), link);
                match self.query_state.get_mut(&key) {
                    None => {
                        self.query_state.insert(
                            key,
                            QueryState {
                                group: q.group,
                                best_cost: new_cost,
                                upstream: from,
                                hop_count: q.hop_count + 1,
                                alpha_deadline: now + self.cfg.alpha,
                                best_forwarded: None,
                                forward_pending: true,
                                used_quarantined: consumed_quarantined,
                            },
                        );
                        let j = self.jitter(ctx);
                        self.arm(ctx, j, TimerPayload::ForwardQuery(q.source, q.seq));
                        if is_member && self.delta_scheduled.insert(key) {
                            self.arm(ctx, self.cfg.delta, TimerPayload::Delta(q.source, q.seq));
                        }
                    }
                    Some(st) => {
                        if metric.better(new_cost, st.best_cost) {
                            st.best_cost = new_cost;
                            st.upstream = from;
                            st.hop_count = q.hop_count + 1;
                            st.used_quarantined = consumed_quarantined;
                            // Forward the improvement if the α window is
                            // still open and no forward is already pending.
                            let improves_forwarded =
                                st.best_forwarded.is_none_or(|f| metric.better(new_cost, f));
                            if now <= st.alpha_deadline && improves_forwarded && !st.forward_pending
                            {
                                st.forward_pending = true;
                                let j = self.jitter(ctx);
                                self.arm(ctx, j, TimerPayload::ForwardQuery(q.source, q.seq));
                            }
                        }
                    }
                }
            }
        }
    }

    fn forward_query(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>, source: NodeId, seq: u32) {
        let Some(st) = self.query_state.get_mut(&(source, seq)) else {
            return;
        };
        st.forward_pending = false;
        if st.hop_count >= self.cfg.max_hops {
            return;
        }
        if let (Some(metric), Some(fwd)) = (self.metric.as_ref(), st.best_forwarded) {
            if !metric.better(st.best_cost, fwd) {
                return; // nothing new to say
            }
        } else if self.metric.is_none() && st.best_forwarded.is_some() {
            return; // original ODMRP forwards once
        }
        st.best_forwarded = Some(st.best_cost);
        let q = JoinQuery {
            group: st.group,
            source,
            seq,
            prev_hop: self.me,
            hop_count: st.hop_count,
            cost: st.best_cost.value(),
        };
        if ctx
            .send_broadcast(OdmrpMsg::JoinQuery(q), JoinQuery::BYTES, class::CONTROL)
            .is_ok()
        {
            self.stats.queries_forwarded += 1;
            ctx.trace_decision(Decision::ForwardQuery {
                source,
                pkt_seq: seq,
            });
        }
    }

    fn send_reply(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>, source: NodeId, seq: u32) {
        let Some(st) = self.query_state.get(&(source, seq)) else {
            return;
        };
        let reply = JoinReply {
            group: st.group,
            sender: self.me,
            entries: vec![JoinTableEntry {
                source,
                seq,
                next_hop: st.upstream,
            }],
        };
        let bytes = reply.bytes();
        let upstream = st.upstream;
        if ctx
            .send_broadcast(OdmrpMsg::JoinReply(reply), bytes, class::CONTROL)
            .is_ok()
        {
            self.stats.replies_sent += 1;
            *self
                .stats
                .tree_edges
                .entry((upstream, self.me))
                .or_insert(0) += 1;
            ctx.trace_decision(Decision::SendReply {
                source,
                pkt_seq: seq,
            });
        }
    }

    fn handle_reply(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>, r: &JoinReply) {
        let now = ctx.now();
        for e in &r.entries {
            if e.next_hop != self.me {
                continue;
            }
            // We were selected: join the forwarding group for this group.
            let expiry = now + self.cfg.fg_timeout;
            let slot = self.fg.entry(r.group).or_insert(expiry);
            *slot = (*slot).max(expiry);
            self.stats.fg_refreshes += 1;
            ctx.trace_decision(Decision::FgJoin { group: r.group.0 });
            let sel = self.stats.fg_selected.entry(r.group).or_insert(now);
            *sel = (*sel).max(now);

            if e.source == self.me {
                // The reply chain reached us: this refresh round elected a
                // forwarding group, so the refresh backoff resets.
                self.elected_rounds.insert(e.seq);
            }
            if e.source != self.me && self.forwarded_reply.insert((e.source, e.seq)) {
                self.send_reply(ctx, e.source, e.seq);
            }
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>, from: NodeId, d: &DataPacket) {
        if d.source == self.me {
            return;
        }
        let key = (d.source, d.seq);
        if self.data_seen.contains(&key) {
            self.stats.duplicate_data += 1;
            ctx.trace_decision(Decision::SuppressDuplicate {
                group: d.group.0,
                source: d.source,
                pkt_seq: d.seq,
            });
            return;
        }
        self.data_seen.insert(key);
        self.data_seen_order.push_back(key);
        if self.data_seen_order.len() > DATA_CACHE_CAP {
            if let Some(old) = self.data_seen_order.pop_front() {
                self.data_seen.remove(&old);
            }
        }
        *self.stats.data_edges.entry((from, self.me)).or_insert(0) += 1;

        let now = ctx.now();
        if self.role.is_member(d.group, now) {
            let rec = self.stats.delivered.entry((d.group, d.source)).or_default();
            rec.count += 1;
            rec.delay_sum_s += now.saturating_since(d.sent_at).as_secs_f64();
            ctx.observe_delivery(now.saturating_since(d.sent_at));
        }
        if self.is_forwarding(d.group, now)
            && ctx
                .send_broadcast(OdmrpMsg::Data(d.clone()), d.bytes, class::DATA)
                .is_ok()
        {
            self.stats.data_forwards += 1;
            ctx.trace_decision(Decision::ForwardData {
                group: d.group.0,
                source: d.source,
                pkt_seq: d.seq,
            });
        }
    }
}

impl SnapshotState for OdmrpNode {
    fn snapshot_state(&self, w: &mut SnapWriter) {
        // `cfg`, `role`, and `metric` are configuration: the restoring side
        // rebuilds them from the scenario (fingerprint-checked at the
        // header). Everything below is mutable run state — including `me`,
        // because `start()` never re-runs on a restored simulator.
        self.me.snap(w);
        self.timers.snap(w);
        w.put_u64(self.timer_token);
        self.query_state.snap(w);
        self.fg.snap(w);
        self.forwarded_reply.snap(w);
        self.delta_scheduled.snap(w);
        self.data_seen.snap(w);
        self.data_seen_order.snap(w);
        w.put_u32(self.data_seq);
        w.put_u32(self.refresh_seq);
        self.backoff_exp.snap(w);
        self.last_round.snap(w);
        self.refresh_token.snap(w);
        self.elected_rounds.snap(w);
        w.put_bool(self.fallback_active);
        w.put_f64(self.tx_fail_ewma);
        self.stats.snap(w);
        w.put_bool(self.prober.is_some());
        if let Some(p) = &self.prober {
            p.snapshot_state(w);
        }
        self.table.snapshot_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.me = Snap::unsnap(r)?;
        self.timers = Snap::unsnap(r)?;
        self.timer_token = r.u64()?;
        self.query_state = Snap::unsnap(r)?;
        self.fg = Snap::unsnap(r)?;
        self.forwarded_reply = Snap::unsnap(r)?;
        self.delta_scheduled = Snap::unsnap(r)?;
        self.data_seen = Snap::unsnap(r)?;
        self.data_seen_order = Snap::unsnap(r)?;
        self.data_seq = r.u32()?;
        self.refresh_seq = r.u32()?;
        let backoff_exp: Vec<u32> = Snap::unsnap(r)?;
        if backoff_exp.len() != self.role.sources.len() {
            return Err(SnapError::StateMismatch("ODMRP source count"));
        }
        self.backoff_exp = backoff_exp;
        self.last_round = Snap::unsnap(r)?;
        self.refresh_token = Snap::unsnap(r)?;
        if self.last_round.len() != self.backoff_exp.len()
            || self.refresh_token.len() != self.backoff_exp.len()
        {
            return Err(SnapError::StateMismatch("ODMRP per-source state length"));
        }
        self.elected_rounds = Snap::unsnap(r)?;
        self.fallback_active = r.bool()?;
        self.tx_fail_ewma = r.f64()?;
        self.stats = Snap::unsnap(r)?;
        let has_prober = r.bool()?;
        if has_prober != self.prober.is_some() {
            return Err(SnapError::StateMismatch("ODMRP prober presence"));
        }
        if let Some(p) = &mut self.prober {
            p.restore_state(r)?;
        }
        self.table.restore_state(r)
    }
}

impl crate::stats::MulticastApp for OdmrpNode {
    fn node_stats(&self) -> &NodeStats {
        &self.stats
    }
    fn variant(&self) -> crate::Variant {
        self.cfg.variant
    }
}

impl Protocol for OdmrpNode {
    type Msg = OdmrpMsg;

    fn start(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>) {
        self.me = ctx.node();
        if let Some(interval) = self.prober.as_ref().and_then(|p| p.plan().interval()) {
            // First probe at a random phase within one interval.
            let phase = interval.mul_f64(ctx.rng().uniform());
            self.arm(ctx, phase, TimerPayload::Probe);
        }
        for i in 0..self.role.sources.len() {
            let spec = self.role.sources[i];
            let start = spec.start.saturating_since(SimTime::ZERO);
            let token = self.arm(ctx, start, TimerPayload::Refresh(i));
            self.refresh_token[i] = Some(token);
            self.arm(ctx, start, TimerPayload::Cbr(i));
        }
    }

    fn handle_message(
        &mut self,
        ctx: &mut Ctx<'_, OdmrpMsg>,
        src: NodeId,
        msg: &OdmrpMsg,
        _meta: RxMeta,
    ) {
        match msg {
            OdmrpMsg::Probe(p) => {
                let now = ctx.now();
                self.table.handle_probe(src, p, self.me, now);
            }
            OdmrpMsg::JoinQuery(q) => self.handle_query(ctx, src, q),
            OdmrpMsg::JoinReply(r) => self.handle_reply(ctx, r),
            OdmrpMsg::Data(d) => self.handle_data(ctx, src, d),
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>, _timer: TimerId, kind: u64) {
        let Some(payload) = self.timers.remove(&kind) else {
            return;
        };
        match payload {
            TimerPayload::Probe => self.send_probe_round(ctx),
            TimerPayload::Cbr(i) => self.send_cbr(ctx, i),
            TimerPayload::Refresh(i) => self.send_refresh(ctx, i),
            TimerPayload::Delta(source, seq) => self.send_reply(ctx, source, seq),
            TimerPayload::ForwardQuery(source, seq) => self.forward_query(ctx, source, seq),
        }
    }

    fn handle_tx_complete(
        &mut self,
        _ctx: &mut Ctx<'_, OdmrpMsg>,
        _handle: TxHandle,
        outcome: TxOutcome,
    ) {
        // Everything ODMRP itself sends is broadcast, which the MAC never
        // retries, so under this protocol `Failed` cannot occur and the
        // EWMA stays 0. Tracking the verdict anyway keeps the congestion
        // signal honest if a deployment routes unicast traffic through the
        // same MAC.
        let fail = if outcome.is_sent() { 0.0 } else { 1.0 };
        self.tx_fail_ewma = 0.9 * self.tx_fail_ewma + 0.1 * fail;
    }

    fn handle_restart(&mut self, ctx: &mut Ctx<'_, OdmrpMsg>) {
        // All soft state is volatile and lost with the crash. Sequence
        // numbers survive (monotone counters avoid post-reboot duplicate-key
        // collisions at nodes that cached our pre-crash packets), and stats
        // survive because they model the experimenter's notebook, not the
        // node's RAM.
        self.timers.clear();
        self.query_state.clear();
        self.fg.clear();
        self.forwarded_reply.clear();
        self.delta_scheduled.clear();
        self.data_seen.clear();
        self.data_seen_order.clear();
        self.table = NeighborTable::new(self.cfg.estimator.clone());
        // Degraded-mode soft state is flushed with the rest: the fresh
        // table has no quarantined entries, backoff restarts at nominal.
        self.backoff_exp.iter_mut().for_each(|e| *e = 0);
        self.last_round.iter_mut().for_each(|r| *r = None);
        self.refresh_token.iter_mut().for_each(|t| *t = None);
        self.elected_rounds.clear();
        self.fallback_active = false;
        self.tx_fail_ewma = 0.0;
        self.stats.restarts += 1;
        self.stats.fg_selected.clear();

        // Re-arm the periodic machinery exactly as `start` does, except
        // sources whose window already closed stay silent.
        if let Some(interval) = self.prober.as_ref().and_then(|p| p.plan().interval()) {
            let phase = interval.mul_f64(ctx.rng().uniform());
            self.arm(ctx, phase, TimerPayload::Probe);
        }
        let now = ctx.now();
        for i in 0..self.role.sources.len() {
            let spec = self.role.sources[i];
            if now >= spec.stop {
                continue;
            }
            let delay = spec.start.saturating_since(now);
            let token = self.arm(ctx, delay, TimerPayload::Refresh(i));
            self.refresh_token[i] = Some(token);
            self.arm(ctx, delay, TimerPayload::Cbr(i));
        }
    }
}
