//! ODMRP wire messages.
//!
//! Sizes are modeled explicitly (the simulator does not serialize); they
//! follow the original ODMRP packet formats plus the cost field our
//! metric-enhanced variant adds to `JOIN QUERY`.

use mcast_metrics::probe::ProbeMsg;
use mesh_sim::ids::{GroupId, NodeId};
use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use mesh_sim::time::SimTime;

/// A `JOIN QUERY`, flooded periodically by each source.
///
/// In the metric-enhanced protocol the query accumulates the path cost from
/// the source: each forwarder looks up the cost of the link it received the
/// query over (from its `NEIGHBOR_TABLE`) and folds it into `cost` before
/// rebroadcasting (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// The multicast group being refreshed.
    pub group: GroupId,
    /// The source that originated this query.
    pub source: NodeId,
    /// Refresh round number (per source).
    pub seq: u32,
    /// The node that (re)broadcast this copy — the upstream candidate.
    pub prev_hop: NodeId,
    /// Hops traveled so far.
    pub hop_count: u8,
    /// Accumulated path cost from the source to `prev_hop`'s receiver.
    /// Interpreted under the variant's metric; `identity` at the source.
    pub cost: f64,
}

impl JoinQuery {
    /// On-air payload size in bytes (IP+UDP+ODMRP query header + cost).
    pub const BYTES: u32 = 52;
}

impl Snap for JoinQuery {
    fn snap(&self, w: &mut SnapWriter) {
        self.group.snap(w);
        self.source.snap(w);
        w.put_u32(self.seq);
        self.prev_hop.snap(w);
        w.put_u8(self.hop_count);
        w.put_f64(self.cost);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(JoinQuery {
            group: Snap::unsnap(r)?,
            source: Snap::unsnap(r)?,
            seq: r.u32()?,
            prev_hop: Snap::unsnap(r)?,
            hop_count: r.u8()?,
            cost: r.f64()?,
        })
    }
}

/// One entry of a `JOIN TABLE`: "for packets from `source`, my chosen next
/// hop toward it is `next_hop`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTableEntry {
    /// The source this entry selects a path toward.
    pub source: NodeId,
    /// Refresh round this selection answers.
    pub seq: u32,
    /// The upstream neighbor chosen (who becomes a forwarding-group member).
    pub next_hop: NodeId,
}

impl Snap for JoinTableEntry {
    fn snap(&self, w: &mut SnapWriter) {
        self.source.snap(w);
        w.put_u32(self.seq);
        self.next_hop.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(JoinTableEntry {
            source: Snap::unsnap(r)?,
            seq: r.u32()?,
            next_hop: Snap::unsnap(r)?,
        })
    }
}

/// A `JOIN REPLY`: a member's (or forwarding node's) join table, broadcast so
/// the named next hops hear themselves selected.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReply {
    /// The multicast group.
    pub group: GroupId,
    /// Who broadcast this reply.
    pub sender: NodeId,
    /// Selected next hops, one per source.
    pub entries: Vec<JoinTableEntry>,
}

impl JoinReply {
    /// On-air payload size in bytes.
    pub fn bytes(&self) -> u32 {
        32 + 12 * self.entries.len() as u32
    }
}

impl Snap for JoinReply {
    fn snap(&self, w: &mut SnapWriter) {
        self.group.snap(w);
        self.sender.snap(w);
        self.entries.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(JoinReply {
            group: Snap::unsnap(r)?,
            sender: Snap::unsnap(r)?,
            entries: Snap::unsnap(r)?,
        })
    }
}

/// A multicast data packet.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPacket {
    /// Destination group.
    pub group: GroupId,
    /// Originating source.
    pub source: NodeId,
    /// Per-source data sequence number.
    pub seq: u32,
    /// Source timestamp, for end-to-end delay measurement.
    pub sent_at: SimTime,
    /// Payload size in bytes (the CBR payload; headers accounted separately).
    pub bytes: u32,
}

impl Snap for DataPacket {
    fn snap(&self, w: &mut SnapWriter) {
        self.group.snap(w);
        self.source.snap(w);
        w.put_u32(self.seq);
        self.sent_at.snap(w);
        w.put_u32(self.bytes);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DataPacket {
            group: Snap::unsnap(r)?,
            source: Snap::unsnap(r)?,
            seq: r.u32()?,
            sent_at: Snap::unsnap(r)?,
            bytes: r.u32()?,
        })
    }
}

/// Everything an ODMRP node puts on the air.
#[derive(Debug, Clone, PartialEq)]
pub enum OdmrpMsg {
    /// Tree-refresh flood.
    JoinQuery(JoinQuery),
    /// Forwarding-group establishment.
    JoinReply(JoinReply),
    /// Multicast payload.
    Data(DataPacket),
    /// Link-quality probe (see `mcast-metrics`).
    Probe(ProbeMsg),
}

impl Snap for OdmrpMsg {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            OdmrpMsg::JoinQuery(q) => {
                w.put_u8(0);
                q.snap(w);
            }
            OdmrpMsg::JoinReply(rp) => {
                w.put_u8(1);
                rp.snap(w);
            }
            OdmrpMsg::Data(d) => {
                w.put_u8(2);
                d.snap(w);
            }
            OdmrpMsg::Probe(p) => {
                w.put_u8(3);
                p.snap(w);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => OdmrpMsg::JoinQuery(Snap::unsnap(r)?),
            1 => OdmrpMsg::JoinReply(Snap::unsnap(r)?),
            2 => OdmrpMsg::Data(Snap::unsnap(r)?),
            3 => OdmrpMsg::Probe(Snap::unsnap(r)?),
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

/// Traffic classes used for byte accounting in the simulator counters.
pub mod class {
    /// Multicast payload data.
    pub const DATA: u8 = 0;
    /// Link-quality probes (the numerator of Table 1).
    pub const PROBE: u8 = 1;
    /// JOIN QUERY / JOIN REPLY control traffic.
    pub const CONTROL: u8 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_size_scales_with_entries() {
        let mut r = JoinReply {
            group: GroupId(1),
            sender: NodeId::new(0),
            entries: Vec::new(),
        };
        let base = r.bytes();
        r.entries.push(JoinTableEntry {
            source: NodeId::new(1),
            seq: 0,
            next_hop: NodeId::new(2),
        });
        assert_eq!(r.bytes(), base + 12);
    }

    #[test]
    fn query_has_fixed_size() {
        const { assert!(JoinQuery::BYTES > 0) };
    }
}
