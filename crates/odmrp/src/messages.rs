//! ODMRP wire messages.
//!
//! Sizes are modeled explicitly (the simulator does not serialize); they
//! follow the original ODMRP packet formats plus the cost field our
//! metric-enhanced variant adds to `JOIN QUERY`.

use mcast_metrics::probe::ProbeMsg;
use mesh_sim::ids::{GroupId, NodeId};
use mesh_sim::time::SimTime;

/// A `JOIN QUERY`, flooded periodically by each source.
///
/// In the metric-enhanced protocol the query accumulates the path cost from
/// the source: each forwarder looks up the cost of the link it received the
/// query over (from its `NEIGHBOR_TABLE`) and folds it into `cost` before
/// rebroadcasting (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// The multicast group being refreshed.
    pub group: GroupId,
    /// The source that originated this query.
    pub source: NodeId,
    /// Refresh round number (per source).
    pub seq: u32,
    /// The node that (re)broadcast this copy — the upstream candidate.
    pub prev_hop: NodeId,
    /// Hops traveled so far.
    pub hop_count: u8,
    /// Accumulated path cost from the source to `prev_hop`'s receiver.
    /// Interpreted under the variant's metric; `identity` at the source.
    pub cost: f64,
}

impl JoinQuery {
    /// On-air payload size in bytes (IP+UDP+ODMRP query header + cost).
    pub const BYTES: u32 = 52;
}

/// One entry of a `JOIN TABLE`: "for packets from `source`, my chosen next
/// hop toward it is `next_hop`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTableEntry {
    /// The source this entry selects a path toward.
    pub source: NodeId,
    /// Refresh round this selection answers.
    pub seq: u32,
    /// The upstream neighbor chosen (who becomes a forwarding-group member).
    pub next_hop: NodeId,
}

/// A `JOIN REPLY`: a member's (or forwarding node's) join table, broadcast so
/// the named next hops hear themselves selected.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReply {
    /// The multicast group.
    pub group: GroupId,
    /// Who broadcast this reply.
    pub sender: NodeId,
    /// Selected next hops, one per source.
    pub entries: Vec<JoinTableEntry>,
}

impl JoinReply {
    /// On-air payload size in bytes.
    pub fn bytes(&self) -> u32 {
        32 + 12 * self.entries.len() as u32
    }
}

/// A multicast data packet.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPacket {
    /// Destination group.
    pub group: GroupId,
    /// Originating source.
    pub source: NodeId,
    /// Per-source data sequence number.
    pub seq: u32,
    /// Source timestamp, for end-to-end delay measurement.
    pub sent_at: SimTime,
    /// Payload size in bytes (the CBR payload; headers accounted separately).
    pub bytes: u32,
}

/// Everything an ODMRP node puts on the air.
#[derive(Debug, Clone, PartialEq)]
pub enum OdmrpMsg {
    /// Tree-refresh flood.
    JoinQuery(JoinQuery),
    /// Forwarding-group establishment.
    JoinReply(JoinReply),
    /// Multicast payload.
    Data(DataPacket),
    /// Link-quality probe (see `mcast-metrics`).
    Probe(ProbeMsg),
}

/// Traffic classes used for byte accounting in the simulator counters.
pub mod class {
    /// Multicast payload data.
    pub const DATA: u8 = 0;
    /// Link-quality probes (the numerator of Table 1).
    pub const PROBE: u8 = 1;
    /// JOIN QUERY / JOIN REPLY control traffic.
    pub const CONTROL: u8 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_size_scales_with_entries() {
        let mut r = JoinReply {
            group: GroupId(1),
            sender: NodeId::new(0),
            entries: Vec::new(),
        };
        let base = r.bytes();
        r.entries.push(JoinTableEntry {
            source: NodeId::new(1),
            seq: 0,
            next_hop: NodeId::new(2),
        });
        assert_eq!(r.bytes(), base + 12);
    }

    #[test]
    fn query_has_fixed_size() {
        const { assert!(JoinQuery::BYTES > 0) };
    }
}
