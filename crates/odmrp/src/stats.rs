//! Per-node protocol statistics collected during a run.
//!
//! Maps are `BTreeMap`s, not `HashMap`s: the harness traverses them when
//! aggregating (edge usage, per-group totals), and hash-order traversal
//! would leak into reported floats and replay hashes (mesh-lint rule R1).

use std::collections::BTreeMap;

use mesh_sim::ids::{GroupId, NodeId};
use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use mesh_sim::time::SimTime;

/// Delivery record for one `(group, source)` pair at a member.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Delivered {
    /// Distinct data packets delivered to the application.
    pub count: u64,
    /// Sum of end-to-end delays in seconds (divide by `count` for the mean).
    pub delay_sum_s: f64,
}

impl Delivered {
    /// Mean end-to-end delay in seconds, if anything was delivered.
    pub fn mean_delay_s(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.delay_sum_s / self.count as f64)
        }
    }
}

impl Snap for Delivered {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.count);
        w.put_f64(self.delay_sum_s);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Delivered {
            count: r.u64()?,
            delay_sum_s: r.f64()?,
        })
    }
}

/// Everything a node counted during a run.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Data packets originated, per group (source side).
    pub sent: BTreeMap<GroupId, u64>,
    /// Data delivered to the application, per `(group, source)` (member side).
    pub delivered: BTreeMap<(GroupId, NodeId), Delivered>,
    /// Data packets rebroadcast as a forwarding-group member.
    pub data_forwards: u64,
    /// `JOIN QUERY` packets originated (as a source).
    pub queries_sent: u64,
    /// `JOIN QUERY` packets rebroadcast (including improving duplicates).
    pub queries_forwarded: u64,
    /// `JOIN REPLY` packets broadcast (as member or forwarder).
    pub replies_sent: u64,
    /// Probe packets broadcast.
    pub probes_sent: u64,
    /// First-copy data receptions per directed link `(from, to=this node)`.
    pub data_edges: BTreeMap<(NodeId, NodeId), u64>,
    /// Tree edges selected in `JOIN REPLY`s: `(upstream, this node)` counted
    /// once per refresh round the edge was chosen; used for Fig. 5.
    pub tree_edges: BTreeMap<(NodeId, NodeId), u64>,
    /// Times this node became (or refreshed membership in) the forwarding
    /// group of some group.
    pub fg_refreshes: u64,
    /// Duplicate data receptions suppressed by the network-layer cache.
    pub duplicate_data: u64,
    /// Times this node rebooted after a fault-injected crash.
    pub restarts: u64,
    /// Last time a `JOIN REPLY` selected this node into the forwarding
    /// group, per group. The forwarding-group soundness oracle checks that a
    /// node only forwards while this is within `fg_timeout` of now.
    pub fg_selected: BTreeMap<GroupId, SimTime>,
    /// Link estimates the staleness sweep newly quarantined (degraded mode).
    pub quarantines: u64,
    /// Query costings where a quarantined estimate was replaced by the
    /// no-history default observation (degraded mode).
    pub quarantine_substitutions: u64,
    /// Times this node lost its last usable estimate and fell back to
    /// minimum-hop selection (degraded mode).
    pub fallback_activations: u64,
    /// Refresh rounds delayed by the no-election exponential backoff
    /// (degraded mode).
    pub refresh_backoffs: u64,
}

impl Snap for NodeStats {
    fn snap(&self, w: &mut SnapWriter) {
        self.sent.snap(w);
        self.delivered.snap(w);
        w.put_u64(self.data_forwards);
        w.put_u64(self.queries_sent);
        w.put_u64(self.queries_forwarded);
        w.put_u64(self.replies_sent);
        w.put_u64(self.probes_sent);
        self.data_edges.snap(w);
        self.tree_edges.snap(w);
        w.put_u64(self.fg_refreshes);
        w.put_u64(self.duplicate_data);
        w.put_u64(self.restarts);
        self.fg_selected.snap(w);
        w.put_u64(self.quarantines);
        w.put_u64(self.quarantine_substitutions);
        w.put_u64(self.fallback_activations);
        w.put_u64(self.refresh_backoffs);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeStats {
            sent: Snap::unsnap(r)?,
            delivered: Snap::unsnap(r)?,
            data_forwards: r.u64()?,
            queries_sent: r.u64()?,
            queries_forwarded: r.u64()?,
            replies_sent: r.u64()?,
            probes_sent: r.u64()?,
            data_edges: Snap::unsnap(r)?,
            tree_edges: Snap::unsnap(r)?,
            fg_refreshes: r.u64()?,
            duplicate_data: r.u64()?,
            restarts: r.u64()?,
            fg_selected: Snap::unsnap(r)?,
            quarantines: r.u64()?,
            quarantine_substitutions: r.u64()?,
            fallback_activations: r.u64()?,
            refresh_backoffs: r.u64()?,
        })
    }
}

/// Implemented by every multicast protocol node in this workspace so the
/// experiment harness can measure ODMRP and tree-based nodes uniformly.
pub trait MulticastApp {
    /// The statistics collected so far.
    fn node_stats(&self) -> &NodeStats;
    /// The route-selection policy this node runs.
    fn variant(&self) -> crate::Variant;
}

impl NodeStats {
    /// Total data packets delivered across all groups/sources.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().map(|d| d.count).sum()
    }

    /// Total data packets originated across all groups.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_delay() {
        let mut d = Delivered::default();
        assert_eq!(d.mean_delay_s(), None);
        d.count = 4;
        d.delay_sum_s = 2.0;
        assert_eq!(d.mean_delay_s(), Some(0.5));
    }

    #[test]
    fn totals() {
        let mut s = NodeStats::default();
        s.sent.insert(GroupId(0), 10);
        s.sent.insert(GroupId(1), 5);
        s.delivered.insert(
            (GroupId(0), NodeId::new(1)),
            Delivered {
                count: 7,
                delay_sum_s: 1.0,
            },
        );
        assert_eq!(s.total_sent(), 15);
        assert_eq!(s.total_delivered(), 7);
    }
}
