//! Protocol-level invariant oracles for ODMRP.
//!
//! [`check`] inspects every node's soft state at a checkpoint and reports
//! violations of the properties §3.1 relies on:
//!
//! * **neighbor-table grounding** — a node's `NEIGHBOR_TABLE` may only hold
//!   entries for real, distinct nodes that actually transmitted probes;
//! * **forwarding-group soundness** — a node forwards data for a group only
//!   while an unexpired `JOIN REPLY` selected it (soft state within
//!   `fg_timeout` of the last selection);
//! * **loop freedom** — following the per-round upstream pointers recorded
//!   from `JOIN QUERY` processing never revisits a node, for any
//!   `(source, seq)` round;
//! * **no quarantined routes** — with degraded mode enabled, no query round
//!   ever costed its chosen upstream from a quarantined link estimate's
//!   measured values (the staleness layer must have substituted the
//!   default observation).
//!
//! [`oracle`] packages the checks for
//! [`mesh_sim::simulator::Simulator::add_oracle`].

use std::collections::{BTreeMap, HashSet};

use mesh_sim::ids::NodeId;
use mesh_sim::time::SimTime;

use crate::node::OdmrpNode;

/// Run every ODMRP oracle over `nodes` at time `now`; one message per
/// violation, empty when all invariants hold.
pub fn check(now: SimTime, nodes: &[OdmrpNode]) -> Vec<String> {
    let mut out = Vec::new();
    check_neighbor_tables(nodes, &mut out);
    check_forwarding_groups(now, nodes, &mut out);
    check_loop_freedom(nodes, &mut out);
    check_no_quarantined_routes(nodes, &mut out);
    out
}

/// The checks of [`check`] boxed for
/// [`mesh_sim::simulator::Simulator::add_oracle`].
pub fn oracle() -> mesh_sim::simulator::Oracle<OdmrpNode> {
    Box::new(|world, nodes| check(world.now(), nodes))
}

fn check_neighbor_tables(nodes: &[OdmrpNode], out: &mut Vec<String>) {
    for (i, node) in nodes.iter().enumerate() {
        for n in node.neighbor_table().known_neighbors() {
            if n.index() >= nodes.len() {
                out.push(format!(
                    "[neighbor-exists] node {i} has a table entry for \
                     nonexistent node {n:?}"
                ));
            } else if n.index() == i {
                out.push(format!(
                    "[neighbor-not-self] node {i} has a table entry for itself"
                ));
            } else if nodes[n.index()].stats().probes_sent == 0 {
                out.push(format!(
                    "[neighbor-probed] node {i} has a table entry for \
                     {n:?}, which never sent a probe"
                ));
            }
        }
    }
}

fn check_forwarding_groups(now: SimTime, nodes: &[OdmrpNode], out: &mut Vec<String>) {
    for (i, node) in nodes.iter().enumerate() {
        let fg_timeout = node.config().fg_timeout;
        for g in node.forwarding_groups() {
            if !node.is_forwarding(g, now) {
                continue;
            }
            let selected = node.stats().fg_selected.get(&g);
            match selected {
                None => out.push(format!(
                    "[fg-join-backed] node {i} forwards for {g:?} but no \
                     JOIN REPLY ever selected it"
                )),
                Some(&t) => {
                    if now.saturating_since(t) > fg_timeout {
                        out.push(format!(
                            "[fg-unexpired-join] node {i} forwards for {g:?} \
                             but its last selection at {t:?} expired"
                        ));
                    }
                }
            }
        }
    }
}

fn check_no_quarantined_routes(nodes: &[OdmrpNode], out: &mut Vec<String>) {
    for (i, node) in nodes.iter().enumerate() {
        if !node.config().degraded.enabled {
            continue;
        }
        for (key, used_quarantined) in node.query_audits() {
            if used_quarantined {
                out.push(format!(
                    "[no-quarantined-route] node {i} costed its upstream for \
                     round {key:?} from a quarantined link estimate"
                ));
            }
        }
    }
}

fn check_loop_freedom(nodes: &[OdmrpNode], out: &mut Vec<String>) {
    // Upstream pointer of each node, per (source, seq) round. BTreeMaps at
    // both levels so violation messages come out in round/node order —
    // oracle output is part of what differential replay compares.
    let mut rounds: BTreeMap<(NodeId, u32), BTreeMap<usize, NodeId>> = BTreeMap::new();
    for (i, node) in nodes.iter().enumerate() {
        for (key, upstream) in node.query_upstreams() {
            rounds.entry(key).or_default().insert(i, upstream);
        }
    }
    for (key, ptrs) in &rounds {
        for &start in ptrs.keys() {
            let mut visited = HashSet::new();
            let mut cur = start;
            while let Some(&up) = ptrs.get(&cur) {
                if !visited.insert(cur) {
                    out.push(format!(
                        "[query-loop-free] round {key:?}: upstream pointers \
                         from node {start} revisit node {cur}"
                    ));
                    break;
                }
                cur = up.index();
            }
        }
    }
}
