//! End-to-end ODMRP protocol tests on controlled topologies.

use mcast_metrics::MetricKind;
use mesh_sim::prelude::*;
use odmrp::{NodeRole, OdmrpConfig, OdmrpNode, Variant};

const GROUP: GroupId = GroupId(0);

fn run_chain(
    variant: Variant,
    n: usize,
    seconds: u64,
) -> (Vec<OdmrpNode>, mesh_sim::counters::Counters) {
    // Perfect links along a chain; source at node 0, member at the end.
    let mut medium = LinkTableMedium::new();
    for i in 0..n - 1 {
        medium.add_link(NodeId::new(i as u32), NodeId::new(i as u32 + 1), 0.0);
    }
    let cfg = OdmrpConfig {
        variant,
        ..OdmrpConfig::default()
    };
    let mut roles = vec![NodeRole::forwarder(); n];
    roles[0] = NodeRole::source(GROUP, SimTime::from_secs(30), SimTime::from_secs(seconds));
    roles[n - 1] = NodeRole::member(GROUP);
    let nodes: Vec<OdmrpNode> = roles
        .into_iter()
        .map(|r| OdmrpNode::new(cfg.clone(), r))
        .collect();
    let positions = mesh_sim::topology::chain(n, 50.0);
    let mut sim = Simulator::new(
        positions,
        Box::new(medium),
        WorldConfig {
            seed: 42,
            ..WorldConfig::default()
        },
        nodes,
    );
    sim.run_until(SimTime::from_secs(seconds + 2));
    sim.into_parts()
}

fn pdr(nodes: &[OdmrpNode], member: usize, source: usize) -> f64 {
    let sent = nodes[source].stats().total_sent();
    let got = nodes[member].stats().total_delivered();
    got as f64 / sent as f64
}

#[test]
fn original_odmrp_delivers_over_a_chain() {
    let (nodes, _) = run_chain(Variant::Original, 4, 60);
    let p = pdr(&nodes, 3, 0);
    assert!(p > 0.95, "PDR over a perfect chain should be ~1, got {p}");
    // The intermediate nodes became forwarding-group members.
    assert!(nodes[1].forwarding_groups().contains(&GROUP));
    assert!(nodes[2].forwarding_groups().contains(&GROUP));
    // Control traffic flowed.
    assert!(nodes[0].stats().queries_sent >= 9);
    assert!(nodes[3].stats().replies_sent >= 1);
}

#[test]
fn metric_odmrp_delivers_over_a_chain() {
    for kind in MetricKind::PAPER_SET {
        let (nodes, counters) = run_chain(Variant::Metric(kind), 4, 60);
        let p = pdr(&nodes, 3, 0);
        assert!(p > 0.95, "{kind}: PDR {p} too low");
        // Probes flowed and were accounted in the PROBE class.
        assert!(
            counters.tx_data[odmrp::messages::class::PROBE as usize].frames > 0,
            "{kind}: no probes on the air"
        );
    }
}

#[test]
fn delivery_count_never_exceeds_sent() {
    for variant in [Variant::Original, Variant::Metric(MetricKind::Spp)] {
        let (nodes, _) = run_chain(variant, 5, 45);
        let sent = nodes[0].stats().total_sent();
        let got = nodes[4].stats().total_delivered();
        assert!(got <= sent, "{variant}: duplicates leaked to the app");
    }
}

#[test]
fn end_to_end_delay_is_recorded_and_sane() {
    let (nodes, _) = run_chain(Variant::Original, 4, 60);
    let stats = nodes[3].stats();
    let d = stats
        .delivered
        .get(&(GROUP, NodeId::new(0)))
        .expect("member delivered");
    let mean = d.mean_delay_s().expect("has delay");
    // Three hops of a 512B packet at 2Mbps ≈ 7ms plus queueing; must be
    // positive and well under a second on an idle chain.
    assert!(mean > 0.001 && mean < 0.5, "mean delay {mean}");
}

/// The paper's core claim, in miniature: on a diamond where the direct
/// source→member link is lossy and a two-hop detour is clean, the
/// link-quality variants route around the lossy link while original ODMRP
/// keeps using it.
fn run_diamond_with(variant: Variant, seed: u64, delta_ms: u64, alpha_ms: u64) -> f64 {
    run_diamond_impl(variant, seed, delta_ms, alpha_ms)
}

fn run_diamond(variant: Variant, seed: u64) -> f64 {
    run_diamond_impl(variant, seed, 30, 20)
}

fn run_diamond_impl(variant: Variant, seed: u64, delta_ms: u64, alpha_ms: u64) -> f64 {
    // 0 = source, 1 = clean relay, 2 = member.
    // Direct 0-2: 65% loss. 0-1 and 1-2: 2% loss.
    let mut medium = LinkTableMedium::new();
    medium.add_link(NodeId::new(0), NodeId::new(2), 0.65);
    medium.add_link(NodeId::new(0), NodeId::new(1), 0.02);
    medium.add_link(NodeId::new(1), NodeId::new(2), 0.02);
    // A short forwarding-group timeout weakens ODMRP's mesh redundancy so
    // the test isolates *route selection* (with the default 3x timeout the
    // relay stays a forwarder from stale rounds and masks the difference —
    // the effect §4.3 of the paper describes).
    let cfg = OdmrpConfig {
        variant,
        fg_timeout: SimDuration::from_secs(3),
        delta: SimDuration::from_millis(delta_ms),
        alpha: SimDuration::from_millis(alpha_ms),
        ..OdmrpConfig::default()
    };
    let roles = vec![
        NodeRole::source(GROUP, SimTime::from_secs(40), SimTime::from_secs(160)),
        NodeRole::forwarder(),
        NodeRole::member(GROUP),
    ];
    let nodes: Vec<OdmrpNode> = roles
        .into_iter()
        .map(|r| OdmrpNode::new(cfg.clone(), r))
        .collect();
    let mut sim = Simulator::new(
        mesh_sim::topology::chain(3, 50.0),
        Box::new(medium),
        WorldConfig {
            seed,
            ..WorldConfig::default()
        },
        nodes,
    );
    sim.run_until(SimTime::from_secs(162));
    let (nodes, _) = sim.into_parts();
    pdr(&nodes, 2, 0)
}

#[test]
fn metrics_route_around_lossy_links() {
    let seeds = [1u64, 2, 3];
    for kind in MetricKind::PAPER_SET {
        let mut orig = 0.0;
        let mut metric = 0.0;
        for &s in &seeds {
            orig += run_diamond(Variant::Original, s);
            metric += run_diamond(Variant::Metric(kind), s);
        }
        orig /= seeds.len() as f64;
        metric /= seeds.len() as f64;
        assert!(
            metric > orig + 0.05,
            "{kind}: metric PDR {metric:.3} should clearly beat original {orig:.3}"
        );
        // PP needs several penalty rounds before the lossy link's EWMA
        // exceeds the two-hop delay sum, so its early refresh rounds still
        // pick the direct path; 0.8 accommodates that convergence.
        assert!(
            metric > 0.8,
            "{kind}: detour should dominate, got {metric:.3}"
        );
    }
}

#[test]
fn forwarding_group_expires_after_source_stops() {
    let (nodes, _) = run_chain(Variant::Original, 3, 40);
    // Run ended at stop + 2s < fg_timeout (9s): still within soft state,
    // but the query state must have stopped refreshing; verify the FG was
    // established at all and data stopped flowing afterwards.
    let fwd = &nodes[1];
    assert!(fwd.forwarding_groups().contains(&GROUP));
    assert!(!fwd.is_forwarding(GROUP, SimTime::from_secs(500)));
}

#[test]
fn runs_are_deterministic() {
    let a = run_chain(Variant::Metric(MetricKind::Pp), 4, 50);
    let b = run_chain(Variant::Metric(MetricKind::Pp), 4, 50);
    assert_eq!(a.1, b.1, "counters must match bit for bit");
    assert_eq!(
        a.0[3].stats().total_delivered(),
        b.0[3].stats().total_delivered()
    );
}

#[test]
fn no_delivery_without_membership() {
    let (nodes, _) = run_chain(Variant::Original, 4, 40);
    // Forwarders deliver nothing to the app.
    assert_eq!(nodes[1].stats().total_delivered(), 0);
    assert_eq!(nodes[2].stats().total_delivered(), 0);
}

#[test]
fn source_does_not_deliver_its_own_traffic() {
    // A source that is also a member of its own group must not count its
    // own packets.
    let mut medium = LinkTableMedium::new();
    medium.add_link(NodeId::new(0), NodeId::new(1), 0.0);
    let cfg = OdmrpConfig::default();
    let mut src_role = NodeRole::source(GROUP, SimTime::from_secs(5), SimTime::from_secs(20));
    src_role.member_of.push(GROUP);
    let roles = vec![src_role, NodeRole::member(GROUP)];
    let nodes: Vec<OdmrpNode> = roles
        .into_iter()
        .map(|r| OdmrpNode::new(cfg.clone(), r))
        .collect();
    let mut sim = Simulator::new(
        mesh_sim::topology::chain(2, 50.0),
        Box::new(medium),
        WorldConfig::default(),
        nodes,
    );
    sim.run_until(SimTime::from_secs(25));
    let (nodes, _) = sim.into_parts();
    assert_eq!(nodes[0].stats().total_delivered(), 0);
    assert!(nodes[1].stats().total_delivered() > 0);
}

/// The δ wait is what lets a member see the detour's query at all: with
/// δ = 0 the metric variant degenerates toward first-arrival selection and
/// loses most of its advantage (the knob §3.1 introduces).
#[test]
fn delta_wait_provides_path_diversity() {
    let seeds = [1u64, 2, 3, 4];
    let kind = MetricKind::Spp;
    let mut with_delta = 0.0;
    let mut without_delta = 0.0;
    for &s in &seeds {
        with_delta += run_diamond_with(Variant::Metric(kind), s, 30, 20);
        without_delta += run_diamond_with(Variant::Metric(kind), s, 0, 0);
    }
    with_delta /= seeds.len() as f64;
    without_delta /= seeds.len() as f64;
    assert!(
        with_delta > without_delta + 0.03,
        "delta should buy diversity: with={with_delta:.3} without={without_delta:.3}"
    );
}
