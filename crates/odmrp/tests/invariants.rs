//! Randomized whole-protocol invariant tests: arbitrary small topologies,
//! losses and roles must never violate ODMRP's safety properties.

use mcast_metrics::MetricKind;
use mesh_sim::prelude::*;
use odmrp::{NodeRole, OdmrpConfig, OdmrpNode, Variant};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Setup {
    n: usize,
    /// Upper-triangle link losses; `None` = no link.
    links: Vec<(usize, usize, f64)>,
    source: usize,
    members: Vec<usize>,
    variant_idx: usize,
    seed: u64,
}

fn setup_strategy() -> impl Strategy<Value = Setup> {
    (3usize..8, 0usize..7, any::<u64>()).prop_flat_map(|(n, variant_idx, seed)| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let k = pairs.len();
        (
            prop::collection::vec(prop::option::weighted(0.7, 0.0f64..0.9), k),
            0usize..n,
            prop::collection::vec(0usize..n, 1..4),
        )
            .prop_map(move |(losses, source, members)| {
                let links = pairs
                    .iter()
                    .zip(&losses)
                    .filter_map(|(&(i, j), &l)| l.map(|loss| (i, j, loss)))
                    .collect();
                Setup {
                    n,
                    links,
                    source,
                    members,
                    variant_idx,
                    seed,
                }
            })
    })
}

fn variant(idx: usize) -> Variant {
    match idx {
        0 => Variant::Original,
        1 => Variant::Metric(MetricKind::Etx),
        2 => Variant::Metric(MetricKind::Ett),
        3 => Variant::Metric(MetricKind::Pp),
        4 => Variant::Metric(MetricKind::Metx),
        5 => Variant::Metric(MetricKind::Spp),
        _ => Variant::Metric(MetricKind::UnicastEtx),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the topology, loss pattern, roles and metric:
    /// * the run completes (no panic, no hang within the horizon),
    /// * each member delivers at most `sent` packets per source,
    /// * no frames leak on the medium,
    /// * forwarders deliver nothing.
    #[test]
    fn odmrp_safety_invariants(setup in setup_strategy()) {
        let group = GroupId(0);
        let mut medium = LinkTableMedium::new();
        for &(i, j, loss) in &setup.links {
            medium.add_link(NodeId::new(i as u32), NodeId::new(j as u32), loss);
        }
        let cfg = OdmrpConfig {
            variant: variant(setup.variant_idx),
            ..OdmrpConfig::default()
        };
        let mut roles = vec![NodeRole::forwarder(); setup.n];
        roles[setup.source] =
            NodeRole::source(group, SimTime::from_secs(5), SimTime::from_secs(35));
        for &m in &setup.members {
            if m != setup.source && !roles[m].member_of.contains(&group) {
                roles[m].member_of.push(group);
            }
        }
        let member_set: Vec<usize> = (0..setup.n)
            .filter(|&i| roles[i].member_of.contains(&group))
            .collect();
        let nodes: Vec<OdmrpNode> = roles
            .into_iter()
            .map(|r| OdmrpNode::new(cfg.clone(), r))
            .collect();
        let positions = mesh_sim::topology::chain(setup.n, 10.0);
        let mut sim = Simulator::new(
            positions,
            Box::new(medium),
            WorldConfig { seed: setup.seed, ..WorldConfig::default() },
            nodes,
        );
        sim.run_until(SimTime::from_secs(40));

        let sent = sim.protocols()[setup.source].stats().total_sent();
        prop_assert!((590..=610).contains(&sent), "CBR produced {sent} packets");
        for (i, node) in sim.protocols().iter().enumerate() {
            let delivered = node.stats().total_delivered();
            if member_set.contains(&i) {
                prop_assert!(delivered <= sent,
                    "member {i} delivered {delivered} > sent {sent}");
            } else {
                prop_assert_eq!(delivered, 0, "non-member {} delivered data", i);
            }
        }
        // Probing never stops, so a frame may legitimately be mid-air at the
        // instant the run ends; a *leak* would accumulate beyond the number
        // of simultaneously-transmitting nodes.
        prop_assert!(
            sim.world().frames_in_flight() <= setup.n,
            "frames leaked: {} in flight",
            sim.world().frames_in_flight()
        );
    }
}
