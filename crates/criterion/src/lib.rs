//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds without network access, so the real `criterion`
//! cannot be fetched. The shim keeps the same API shape the workspace's
//! benches use — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — and measures
//! with a simple calibrate-then-sample loop: each benchmark is warmed up,
//! the per-iteration cost is estimated, then `sample_size` samples are timed
//! and the median/min/max are printed in a `name  time: [..]` line.
//!
//! There is no statistical analysis, no HTML report, and no baseline
//! comparison; the numbers are honest wall-clock medians, good enough to
//! compare orders of magnitude and catch regressions by eye.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives timing of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median/min/max nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Time `routine`, first calibrating how many iterations fit in one
    /// sample, then collecting `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, tracking cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        self.result = Some((median, samples[0], samples[samples.len() - 1]));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying just a parameter value, e.g. a node count.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Something usable as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The printable name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self, name.to_string(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, name: String, mut f: F) {
    let mut b = Bencher {
        warm_up: c.warm_up,
        measurement: c.measurement,
        sample_size: c.sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, min, max)) => println!(
            "{name:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        ),
        None => println!("{name:<50} (no measurement)"),
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    fn config(&self) -> Criterion {
        let mut c = self.criterion.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        c
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&self.config(), name, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&self.config(), name, |b| f(b, input));
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Define a group of benchmark functions, optionally with a configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness binary is invoked to *list*
            // tests; don't run full benchmarks there.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
        assert_eq!(BenchmarkId::new("f", 42).id, "f/42");
    }
}
