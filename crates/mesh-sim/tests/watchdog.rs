//! The sim-time watchdog: livelocked runs become classifiable panics,
//! healthy runs are untouched (bit-identical schedule hash).

use mesh_sim::prelude::*;
use mesh_sim::simulator::WATCHDOG_PANIC_PREFIX;

/// A protocol stuck in a zero-delay timer loop: simulated time never
/// advances, events keep dispatching — the canonical livelock.
#[derive(Debug, Default)]
struct ZeroLoop;

impl Protocol for ZeroLoop {
    type Msg = ();
    fn start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn handle_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &(), _: RxMeta) {}
    fn handle_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerId, _: u64) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
}

/// A healthy beacon: periodic broadcasts, time always advances.
#[derive(Debug, Default)]
struct Beacon;

impl Protocol for Beacon {
    type Msg = u32;
    fn start(&mut self, ctx: &mut Ctx<'_, u32>) {
        let jitter = SimDuration::from_micros(137 * (ctx.node().index() as u64 + 1));
        ctx.set_timer(SimDuration::from_millis(200) + jitter, 0);
    }
    fn handle_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32, _: RxMeta) {}
    fn handle_timer(&mut self, ctx: &mut Ctx<'_, u32>, _: TimerId, _: u64) {
        let _ = ctx.send_broadcast(ctx.node().index() as u32, 64, 0);
        ctx.set_timer(SimDuration::from_millis(200), 0);
    }
}

fn line_positions(n: usize) -> Vec<Pos> {
    (0..n).map(|i| Pos::new(50.0 * i as f64, 0.0)).collect()
}

#[test]
fn watchdog_converts_livelock_into_prefixed_panic() {
    let mut sim = Simulator::new(
        line_positions(1),
        Box::new(PhysicalMedium::default()),
        WorldConfig::default(),
        vec![ZeroLoop],
    );
    sim.set_watchdog(WatchdogBudget {
        max_events: 1_000,
        min_progress: SimDuration::from_millis(1),
    });
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run_until(SimTime::from_secs(1));
    }));
    let payload = out.expect_err("livelock must trip the watchdog");
    let msg = payload
        .downcast_ref::<String>()
        .expect("watchdog panics with a String");
    assert!(
        msg.starts_with(WATCHDOG_PANIC_PREFIX),
        "panic not classifiable: {msg}"
    );
    assert!(msg.contains("livelock"), "got: {msg}");
}

#[test]
fn watchdog_leaves_healthy_runs_bit_identical() {
    let run = |watchdog: bool| {
        let mut sim = Simulator::new(
            line_positions(5),
            Box::new(PhysicalMedium::default()),
            WorldConfig::default(),
            (0..5).map(|_| Beacon).collect::<Vec<_>>(),
        );
        if watchdog {
            sim.set_watchdog(WatchdogBudget {
                max_events: 2_000_000,
                min_progress: SimDuration::from_millis(100),
            });
        }
        sim.run_until(SimTime::from_secs(10));
        sim.schedule_hash()
    };
    assert_eq!(run(false), run(true));
}

#[test]
#[should_panic(expected = "watchdog quantum must be positive")]
fn watchdog_rejects_zero_quantum() {
    let mut sim = Simulator::new(
        line_positions(1),
        Box::new(PhysicalMedium::default()),
        WorldConfig::default(),
        vec![Beacon],
    );
    sim.set_watchdog(WatchdogBudget {
        max_events: 100,
        min_progress: SimDuration::ZERO,
    });
}
