//! Boundary coverage for the spatial [`NeighborIndex`] and its interaction
//! with mobility-driven cache invalidation.
//!
//! The index promises a *superset* of the nodes within the query radius.
//! These tests probe the places where that promise is easiest to break:
//! positions exactly on cell edges (ties in the `f64 → usize` cell mapping),
//! coincident positions, query squares whose corners land on edges, and —
//! through the indexed [`PhysicalMedium`] under random-waypoint mobility —
//! `invalidate_positions` arriving between transmissions mid-tick.

use mesh_sim::geometry::Area;
use mesh_sim::mobility::RandomWaypoint;
use mesh_sim::prelude::*;

fn brute_force(positions: &[Pos], center: Pos, r: f64) -> Vec<u32> {
    let mut v: Vec<u32> = positions
        .iter()
        .enumerate()
        .filter(|(_, p)| center.distance_to(**p) <= r)
        .map(|(i, _)| i as u32)
        .collect();
    v.sort_unstable();
    v
}

fn assert_superset(idx: &NeighborIndex, positions: &[Pos], center: Pos, r: f64) {
    let mut got = Vec::new();
    idx.candidates_within(center, r, &mut got);
    got.sort_unstable();
    for e in brute_force(positions, center, r) {
        assert!(
            got.contains(&e),
            "node {e} within {r} m of {center:?} missing from candidates"
        );
    }
}

#[test]
fn nodes_exactly_on_cell_edges_are_never_lost() {
    // A lattice whose points all sit exactly on cell boundaries (multiples
    // of the 100 m cell size), including the far corner of the grid.
    let cell = 100.0;
    let positions: Vec<Pos> = (0..=5)
        .flat_map(|i| (0..=5).map(move |j| Pos::new(i as f64 * cell, j as f64 * cell)))
        .collect();
    let idx = NeighborIndex::build(&positions, cell);
    // Query centers on every lattice point and every cell midpoint, with
    // radii that also land query corners exactly on edges.
    for &center in &positions {
        for r in [cell, cell / 2.0, 1.5 * cell] {
            assert_superset(&idx, &positions, center, r);
        }
    }
    for i in 0..5 {
        for j in 0..5 {
            let mid = Pos::new((i as f64 + 0.5) * cell, (j as f64 + 0.5) * cell);
            assert_superset(&idx, &positions, mid, cell / 2.0);
        }
    }
}

#[test]
fn zero_radius_query_on_an_edge_still_finds_the_node_there() {
    let positions = vec![
        Pos::new(0.0, 0.0),
        Pos::new(100.0, 0.0),
        Pos::new(200.0, 0.0),
    ];
    let idx = NeighborIndex::build(&positions, 100.0);
    for (i, &p) in positions.iter().enumerate() {
        let mut got = Vec::new();
        idx.candidates_within(p, 0.0, &mut got);
        assert!(got.contains(&(i as u32)), "node {i} lost at zero radius");
    }
}

#[test]
fn coincident_nodes_on_an_edge_all_appear_once() {
    // Seven nodes stacked on a cell corner plus two one cell away.
    let mut positions = vec![Pos::new(100.0, 100.0); 7];
    positions.push(Pos::new(0.0, 100.0));
    positions.push(Pos::new(200.0, 100.0));
    let idx = NeighborIndex::build(&positions, 100.0);
    let mut got = Vec::new();
    idx.candidates_within(Pos::new(100.0, 100.0), 1.0, &mut got);
    got.sort_unstable();
    let stacked: Vec<u32> = (0..7).collect();
    for e in &stacked {
        assert_eq!(
            got.iter().filter(|&&g| g == *e).count(),
            1,
            "node {e} duplicated or lost"
        );
    }
    assert_superset(&idx, &positions, Pos::new(100.0, 100.0), 100.0);
}

#[test]
fn negative_coordinates_with_edge_aligned_origin() {
    // Origin at a negative edge-aligned coordinate: the origin-relative cell
    // mapping must not truncate toward zero differently on either side.
    let positions = vec![
        Pos::new(-200.0, -100.0),
        Pos::new(-100.0, -100.0),
        Pos::new(0.0, 0.0),
        Pos::new(100.0, 100.0),
    ];
    let idx = NeighborIndex::build(&positions, 100.0);
    for &center in &positions {
        assert_superset(&idx, &positions, center, 150.0);
    }
    // Query square poking past the grid on the low side.
    assert_superset(&idx, &positions, Pos::new(-200.0, -100.0), 400.0);
}

/// A silent protocol; the medium, index and mobility do all the work.
#[derive(Debug, Clone)]
struct Beacon;

impl Protocol for Beacon {
    type Msg = u32;
    fn start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.set_timer(SimDuration::from_millis(200), 0);
    }
    fn handle_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32, _: RxMeta) {}
    fn handle_timer(&mut self, ctx: &mut Ctx<'_, u32>, _: TimerId, _: u64) {
        let _ = ctx.send_broadcast(ctx.node().index() as u32, 64, 0);
        ctx.set_timer(SimDuration::from_millis(200), 0);
    }
}

/// Under random-waypoint mobility, `invalidate_positions` hits the indexed
/// medium between transmissions mid-tick. Indexed and unindexed media must
/// stay bit-identical anyway — any stale cache shows up as diverging
/// counters.
#[test]
fn indexed_medium_matches_scan_under_mobility_invalidation() {
    let run = |indexed: bool| {
        let area = Area::square(600.0);
        let mut rng = SimRng::seed_from(99);
        let positions: Vec<Pos> = (0..20)
            .map(|_| Pos::new(rng.uniform_range(0.0, 600.0), rng.uniform_range(0.0, 600.0)))
            .collect();
        let phy = PhyParams {
            fading: FadingModel::None,
            ..PhyParams::default()
        };
        let medium = Box::new(PhysicalMedium::new(phy).with_indexing(indexed));
        let mut sim = Simulator::new(
            positions,
            medium,
            WorldConfig {
                seed: 5,
                ..WorldConfig::default()
            },
            vec![Beacon; 20],
        );
        sim.set_mobility(Box::new(RandomWaypoint::new(
            area,
            5.0,
            20.0,
            SimDuration::from_millis(500),
        )));
        sim.set_invariant_interval(SimDuration::from_secs(1));
        sim.run_until(SimTime::from_secs(12));
        sim.counters().clone()
    };
    let with_index = run(true);
    let without_index = run(false);
    assert_eq!(
        with_index, without_index,
        "indexed medium diverged from the full scan under mobility"
    );
    assert!(with_index.planned_rx_data > 0, "nothing was ever received");
}

// ---------------------------------------------------------------------------
// Incremental re-bucketing (`update_position`) edge cases. The contract in
// every one of them is the same: after any sequence of updates the index must
// equal `rebuilt(&positions)` — a fresh fill of the same grid frame — so the
// incremental path can never drift from the from-scratch reference.

#[test]
fn rebucket_onto_exact_cell_edge_matches_fresh_build() {
    // 100 m cells anchored at x = 0. A node landing exactly on x = 100.0
    // (the tie between cells 0 and 1) must bucket the same way a fresh
    // build buckets it.
    let mut positions = vec![Pos::new(50.0, 50.0), Pos::new(250.0, 50.0)];
    let mut idx = NeighborIndex::build(&positions, 100.0);
    positions[0] = Pos::new(100.0, 50.0);
    idx.update_position(0, positions[0]);
    assert_eq!(idx, idx.rebuilt(&positions));
    // And again landing on a corner (both axes tied at once).
    positions[0] = Pos::new(100.0, 100.0);
    idx.update_position(0, positions[0]);
    assert_eq!(idx, idx.rebuilt(&positions));
}

#[test]
fn zero_displacement_never_rebuckets() {
    let positions = vec![Pos::new(10.0, 10.0), Pos::new(110.0, 10.0)];
    let mut idx = NeighborIndex::build(&positions, 100.0);
    let before = idx.clone();
    // Moving to exactly where the node already is must report no crossing
    // and leave the index bit-identical — including for a node sitting
    // exactly on a cell edge.
    assert_eq!(idx.update_position(0, positions[0]), None);
    assert_eq!(idx.update_position(1, positions[1]), None);
    assert_eq!(idx, before);
    assert_eq!(idx, idx.rebuilt(&positions));
}

#[test]
fn displacement_of_exactly_one_cell_width_crosses_once() {
    let mut positions = vec![Pos::new(50.0, 50.0), Pos::new(350.0, 50.0)];
    let mut idx = NeighborIndex::build(&positions, 100.0);
    let from_cell = idx.node_cell(0);
    // A displacement of exactly one cell width keeps the intra-cell offset
    // and must land exactly one column over.
    positions[0] = Pos::new(150.0, 50.0);
    let (old, new) = idx
        .update_position(0, positions[0])
        .expect("one-cell-width move must cross");
    assert_eq!(old, from_cell);
    assert_eq!(new, from_cell + 1);
    assert_eq!(idx, idx.rebuilt(&positions));
}

#[test]
fn coincident_nodes_move_independently() {
    // Five nodes stacked on one spot; moving some of them away (one onto an
    // edge, one onto the same cell, one across) must keep every bucket
    // sorted and equal to the fresh build, with the unmoved stack intact.
    let mut positions = vec![Pos::new(150.0, 150.0); 5];
    positions.push(Pos::new(450.0, 150.0));
    let mut idx = NeighborIndex::build(&positions, 100.0);
    positions[1] = Pos::new(250.0, 150.0); // crossing
    idx.update_position(1, positions[1]);
    positions[3] = Pos::new(100.0, 150.0); // onto the low edge of cell 1
    idx.update_position(3, positions[3]);
    positions[2] = Pos::new(160.0, 160.0); // intra-cell
    assert_eq!(idx.update_position(2, positions[2]), None);
    assert_eq!(idx, idx.rebuilt(&positions));
    // The two untouched stacked nodes still share their original cell.
    assert_eq!(idx.node_cell(0), idx.node_cell(4));
}

#[test]
fn out_of_frame_moves_clamp_into_border_cells() {
    // The grid frame is fixed at build time; nodes that wander past the
    // origin or the far corner are clamped into the border cells, exactly
    // as a fresh fill of the same frame clamps them.
    let mut positions = vec![
        Pos::new(0.0, 0.0),
        Pos::new(200.0, 200.0),
        Pos::new(400.0, 400.0),
    ];
    let mut idx = NeighborIndex::build(&positions, 100.0);
    let far_corner = idx.node_cell(2);
    positions[0] = Pos::new(-250.0, -1.0); // past the negative origin
    idx.update_position(0, positions[0]);
    positions[2] = Pos::new(1e6, 1e6); // far past the high corner
    idx.update_position(2, positions[2]);
    assert_eq!(idx, idx.rebuilt(&positions));
    assert_eq!(idx.node_cell(0), 0, "clamped into the origin cell");
    assert_eq!(idx.node_cell(2), far_corner, "clamped into the corner cell");
    // Re-entering the frame un-clamps.
    positions[0] = Pos::new(350.0, 50.0);
    idx.update_position(0, positions[0]);
    assert_eq!(idx, idx.rebuilt(&positions));
}

#[test]
fn random_rebucket_walk_matches_fresh_build_and_stays_a_superset() {
    // A randomized mobility walk — wiggles, cell-width hops, edge landings
    // and out-of-frame excursions — checking after every tick that the
    // incrementally-maintained index equals the from-scratch rebuild and
    // still answers superset queries correctly.
    let mut rng = SimRng::seed_from(0x5EED_CAFE);
    let mut positions: Vec<Pos> = (0..40)
        .map(|_| Pos::new(rng.uniform_range(0.0, 900.0), rng.uniform_range(0.0, 900.0)))
        .collect();
    let mut idx = NeighborIndex::build(&positions, 150.0);
    for tick in 0..60 {
        for (i, slot) in positions.iter_mut().enumerate() {
            if rng.chance(0.3) {
                continue; // resting node: not updated
            }
            let p = *slot;
            let to = match tick % 4 {
                0 => Pos::new(p.x + rng.uniform_range(-20.0, 20.0), p.y),
                1 => Pos::new(p.x, (p.x / 150.0).floor() * 150.0), // edge landing
                2 => Pos::new(p.x + 150.0, p.y - 150.0),           // exact cell hops
                _ => Pos::new(
                    rng.uniform_range(-300.0, 1200.0), // may leave the frame
                    rng.uniform_range(-300.0, 1200.0),
                ),
            };
            *slot = to;
            idx.update_position(i as u32, to);
        }
        assert_eq!(idx, idx.rebuilt(&positions), "diverged at tick {tick}");
        let center = positions[(tick * 7) % positions.len()];
        assert_superset(&idx, &positions, center, 150.0);
        assert_superset(&idx, &positions, center, 300.0);
    }
}
