//! End-to-end tests of the PHY + 802.11 DCF MAC through the public API.

use mesh_sim::prelude::*;

/// A scriptable test protocol: sends preconfigured messages at start and
/// records everything it hears.
#[derive(Debug, Default, Clone)]
struct Probe {
    /// (dst, payload, bytes) to send at start; dst None = broadcast.
    sends: Vec<(Option<NodeId>, u64, u32)>,
    received: Vec<(NodeId, u64)>,
    outcomes: Vec<TxOutcome>,
}

impl Protocol for Probe {
    type Msg = u64;

    fn start(&mut self, ctx: &mut Ctx<'_, u64>) {
        for (dst, msg, bytes) in self.sends.clone() {
            let res = match dst {
                None => ctx.send_broadcast(msg, bytes, 1),
                Some(d) => ctx.send_unicast(d, msg, bytes, 1),
            };
            res.expect("queue should accept start-time sends");
        }
    }

    fn handle_message(&mut self, _ctx: &mut Ctx<'_, u64>, src: NodeId, msg: &u64, _meta: RxMeta) {
        self.received.push((src, *msg));
    }

    fn handle_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _timer: TimerId, _kind: u64) {}

    fn handle_tx_complete(
        &mut self,
        _ctx: &mut Ctx<'_, u64>,
        _handle: TxHandle,
        outcome: TxOutcome,
    ) {
        self.outcomes.push(outcome);
    }
}

fn no_fading() -> Box<PhysicalMedium> {
    Box::new(PhysicalMedium::new(PhyParams {
        fading: FadingModel::None,
        ..PhyParams::default()
    }))
}

fn sim_with(positions: Vec<Pos>, protos: Vec<Probe>, seed: u64) -> Simulator<Probe> {
    Simulator::new(
        positions,
        no_fading(),
        WorldConfig {
            seed,
            ..WorldConfig::default()
        },
        protos,
    )
}

#[test]
fn broadcast_reaches_neighbors_in_range_only() {
    let positions = vec![
        Pos::new(0.0, 0.0),
        Pos::new(200.0, 0.0), // in range (250m nominal)
        Pos::new(400.0, 0.0), // out of range
    ];
    let mut protos = vec![Probe::default(); 3];
    protos[0].sends.push((None, 42, 512));
    let mut sim = sim_with(positions, protos, 1);
    sim.run_until(SimTime::from_secs(1));

    assert_eq!(sim.protocols()[1].received, vec![(NodeId::new(0), 42)]);
    assert!(sim.protocols()[2].received.is_empty());
    // Broadcast completes with Sent even with no ACKs.
    assert_eq!(sim.protocols()[0].outcomes, vec![TxOutcome::Sent]);
}

#[test]
fn unicast_delivers_and_acks() {
    let positions = vec![Pos::new(0.0, 0.0), Pos::new(150.0, 0.0)];
    let mut protos = vec![Probe::default(); 2];
    protos[0].sends.push((Some(NodeId::new(1)), 7, 512));
    let mut sim = sim_with(positions, protos, 2);
    sim.run_until(SimTime::from_secs(1));

    assert_eq!(sim.protocols()[1].received, vec![(NodeId::new(0), 7)]);
    assert_eq!(sim.protocols()[0].outcomes, vec![TxOutcome::Sent]);
    // RTS/CTS/ACK happened: at least 3 control frames (512 >= rts threshold).
    assert!(sim.counters().tx_ctrl_frames >= 3);
    assert_eq!(sim.counters().unicast_failures, 0);
}

#[test]
fn small_unicast_skips_rts() {
    let positions = vec![Pos::new(0.0, 0.0), Pos::new(150.0, 0.0)];
    let mut protos = vec![Probe::default(); 2];
    protos[0].sends.push((Some(NodeId::new(1)), 9, 64)); // below 256B threshold
    let mut sim = sim_with(positions, protos, 3);
    sim.run_until(SimTime::from_secs(1));

    assert_eq!(sim.protocols()[1].received.len(), 1);
    // Only the ACK: exactly one control frame.
    assert_eq!(sim.counters().tx_ctrl_frames, 1);
}

#[test]
fn unicast_to_unreachable_fails_after_retries() {
    let positions = vec![Pos::new(0.0, 0.0), Pos::new(5000.0, 0.0)];
    let mut protos = vec![Probe::default(); 2];
    protos[0].sends.push((Some(NodeId::new(1)), 1, 512));
    let mut sim = sim_with(positions, protos, 4);
    sim.run_until(SimTime::from_secs(5));

    assert!(sim.protocols()[1].received.is_empty());
    assert_eq!(sim.protocols()[0].outcomes.len(), 1);
    match sim.protocols()[0].outcomes[0] {
        TxOutcome::Failed { retries } => assert!(retries > 0),
        other => panic!("expected failure, got {other:?}"),
    }
    assert_eq!(sim.counters().unicast_failures, 1);
    assert!(sim.counters().retries > 0);
}

#[test]
fn broadcast_gets_no_retransmissions() {
    // Out-of-range broadcast: exactly one data frame on the air, no failure
    // report (fire and forget) — the core asymmetry the paper builds on.
    let positions = vec![Pos::new(0.0, 0.0), Pos::new(5000.0, 0.0)];
    let mut protos = vec![Probe::default(); 2];
    protos[0].sends.push((None, 1, 512));
    let mut sim = sim_with(positions, protos, 5);
    sim.run_until(SimTime::from_secs(5));

    assert_eq!(sim.protocols()[0].outcomes, vec![TxOutcome::Sent]);
    assert_eq!(sim.counters().tx_data[1].frames, 1);
    assert_eq!(sim.counters().retries, 0);
}

#[test]
fn queue_overflow_reports_error() {
    struct Flooder {
        accepted: u32,
        rejected: u32,
    }
    impl Protocol for Flooder {
        type Msg = u64;
        fn start(&mut self, ctx: &mut Ctx<'_, u64>) {
            for i in 0..200 {
                match ctx.send_broadcast(i, 512, 0) {
                    Ok(_) => self.accepted += 1,
                    Err(SendError::QueueFull) => self.rejected += 1,
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        fn handle_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, _: &u64, _: RxMeta) {}
        fn handle_timer(&mut self, _: &mut Ctx<'_, u64>, _: TimerId, _: u64) {}
    }
    let mut sim = Simulator::new(
        vec![Pos::new(0.0, 0.0)],
        no_fading(),
        WorldConfig::default(),
        vec![Flooder {
            accepted: 0,
            rejected: 0,
        }],
    );
    sim.run_until(SimTime::from_secs(60));
    let f = &sim.protocols()[0];
    assert_eq!(f.accepted, 50); // default queue cap
    assert_eq!(f.rejected, 150);
    assert_eq!(sim.counters().queue_drops, 150);
    // All accepted frames eventually go out.
    assert_eq!(sim.counters().tx_data[0].frames, 50);
}

#[test]
fn bad_destination_rejected() {
    struct SelfSender;
    impl Protocol for SelfSender {
        type Msg = u64;
        fn start(&mut self, ctx: &mut Ctx<'_, u64>) {
            assert_eq!(
                ctx.send_unicast(ctx.node(), 0, 64, 0),
                Err(SendError::BadDestination)
            );
            assert_eq!(
                ctx.send_unicast(NodeId::new(99), 0, 64, 0),
                Err(SendError::BadDestination)
            );
        }
        fn handle_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, _: &u64, _: RxMeta) {}
        fn handle_timer(&mut self, _: &mut Ctx<'_, u64>, _: TimerId, _: u64) {}
    }
    let mut sim = Simulator::new(
        vec![Pos::new(0.0, 0.0), Pos::new(10.0, 0.0)],
        no_fading(),
        WorldConfig::default(),
        vec![SelfSender, SelfSender],
    );
    sim.run_until(SimTime::from_secs(1));
}

#[test]
fn hidden_terminal_broadcasts_collide_at_middle() {
    // A and C cannot hear each other (600m apart > 550m CS range) but B in
    // the middle hears both. Simultaneous broadcasts must collide at B in a
    // deterministic no-fading world.
    let positions = vec![
        Pos::new(0.0, 0.0),
        Pos::new(300.0, 0.0),
        Pos::new(600.0, 0.0),
    ];
    let mut lost_at_b = 0;
    let trials = 20;
    for seed in 0..trials {
        let mut protos = vec![Probe::default(); 3];
        protos[0].sends.push((None, 1, 512));
        protos[2].sends.push((None, 2, 512));
        let mut sim = sim_with(positions.clone(), protos, seed);
        sim.run_until(SimTime::from_secs(1));
        // B is at 300m from each sender: beyond RX range (250m), within CS.
        // So B never decodes; the senders cannot carrier-sense each other.
        // Move B closer for a decodable variant below; here both arrivals
        // are interference only.
        let b = &sim.protocols()[1];
        if b.received.len() < 2 {
            lost_at_b += 1;
        }
    }
    assert!(lost_at_b > 0);
}

#[test]
fn hidden_terminal_decodable_variant() {
    // B at 200m from each of A (0m) and C (400m): decodable from both; A and
    // C are 400m apart — within CS range (550m), so they defer to each other
    // and most transmissions serialize. With randomized start jitter both
    // messages normally arrive.
    let positions = vec![
        Pos::new(0.0, 0.0),
        Pos::new(200.0, 0.0),
        Pos::new(400.0, 0.0),
    ];
    let mut total_received = 0;
    let trials = 10;
    for seed in 0..trials {
        let mut protos = vec![Probe::default(); 3];
        protos[0].sends.push((None, 1, 512));
        protos[2].sends.push((None, 2, 512));
        let mut sim = sim_with(positions.clone(), protos, 1000 + seed);
        sim.run_until(SimTime::from_secs(1));
        total_received += sim.protocols()[1].received.len();
    }
    // At least half of all messages should get through on average.
    assert!(
        total_received as f64 >= trials as f64,
        "B received {total_received} of {} messages",
        2 * trials
    );
}

#[test]
fn no_frames_leak_after_quiescence() {
    let positions = vec![Pos::new(0.0, 0.0), Pos::new(150.0, 0.0)];
    let mut protos = vec![Probe::default(); 2];
    protos[0].sends.push((None, 1, 512));
    protos[0].sends.push((Some(NodeId::new(1)), 2, 512));
    protos[1].sends.push((None, 3, 512));
    let mut sim = sim_with(positions, protos, 6);
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(sim.world().frames_in_flight(), 0);
}

#[test]
fn identical_seeds_identical_runs() {
    let run = |seed: u64| {
        let positions = vec![
            Pos::new(0.0, 0.0),
            Pos::new(180.0, 40.0),
            Pos::new(120.0, 190.0),
        ];
        let mut protos = vec![Probe::default(); 3];
        for (n, p) in protos.iter_mut().enumerate() {
            p.sends.push((None, n as u64, 512));
        }
        // Fading on: exercise the stochastic path.
        let medium = Box::new(PhysicalMedium::default());
        let mut sim = Simulator::new(
            positions,
            medium,
            WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            protos,
        );
        sim.run_until(SimTime::from_secs(2));
        let received: Vec<_> = sim.protocols().iter().map(|p| p.received.clone()).collect();
        (received, sim.counters().clone())
    };
    assert_eq!(run(77), run(77));
    // And the run actually did something.
    let (_, c) = run(77);
    assert_eq!(c.tx_data[1].frames, 3);
}

#[test]
fn rayleigh_fading_causes_partial_loss_on_long_links() {
    // Repeated broadcasts over a 230m link under Rayleigh fading: the paper's
    // core premise is that long links are lossy. Expect meaningful but
    // partial delivery.
    #[derive(Debug)]
    struct Beacon {
        count: u32,
        received: u32,
    }
    impl Protocol for Beacon {
        type Msg = u32;
        fn start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.node().index() == 0 {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        fn handle_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32, _: RxMeta) {
            self.received += 1;
        }
        fn handle_timer(&mut self, ctx: &mut Ctx<'_, u32>, _: TimerId, _: u64) {
            if self.count < 200 {
                self.count += 1;
                let _ = ctx.send_broadcast(self.count, 512, 0);
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        fn handle_tx_complete(&mut self, _: &mut Ctx<'_, u32>, _: TxHandle, _: TxOutcome) {}
    }
    let positions = vec![Pos::new(0.0, 0.0), Pos::new(230.0, 0.0)];
    let mut sim = Simulator::new(
        positions,
        Box::new(PhysicalMedium::default()),
        WorldConfig {
            seed: 99,
            ..WorldConfig::default()
        },
        vec![
            Beacon {
                count: 0,
                received: 0,
            },
            Beacon {
                count: 0,
                received: 0,
            },
        ],
    );
    sim.run_until(SimTime::from_secs(5));
    let got = sim.protocols()[1].received;
    assert!(got > 50, "received only {got}/200");
    assert!(got < 200, "no loss at all under Rayleigh fading?");
}

#[test]
fn per_node_counters_sum_to_globals() {
    let positions = vec![
        Pos::new(0.0, 0.0),
        Pos::new(150.0, 0.0),
        Pos::new(300.0, 0.0),
    ];
    let mut protos = vec![Probe::default(); 3];
    protos[0].sends.push((None, 1, 512));
    protos[1].sends.push((Some(NodeId::new(0)), 2, 512));
    protos[2].sends.push((None, 3, 256));
    let mut sim = sim_with(positions, protos, 77);
    sim.run_until(SimTime::from_secs(2));

    let per_node = sim.world().node_counters();
    let global = sim.counters();
    let tx_frames: u64 = per_node.iter().map(|n| n.tx_data_frames).sum();
    let tx_bytes: u64 = per_node.iter().map(|n| n.tx_data_bytes).sum();
    let rx_frames: u64 = per_node.iter().map(|n| n.rx_data_frames).sum();
    let ctrl: u64 = per_node.iter().map(|n| n.tx_ctrl_frames).sum();
    assert_eq!(
        tx_frames,
        global.tx_data.iter().map(|c| c.frames).sum::<u64>()
    );
    assert_eq!(tx_bytes, global.tx_data_bytes_total());
    assert_eq!(
        rx_frames,
        global.rx_data.iter().map(|c| c.frames).sum::<u64>()
    );
    assert_eq!(ctrl, global.tx_ctrl_frames);
    // Airtime was attributed to the transmitters.
    assert!(per_node[0].airtime_ns > 0);
    assert!(per_node[1].airtime_ns > 0);
}
