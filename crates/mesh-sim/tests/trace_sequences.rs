//! Trace-based assertions on exact MAC sequences.

use mesh_sim::prelude::*;
use mesh_sim::trace::{FrameKind, RingTrace, TraceEventKind};

#[derive(Debug, Default)]
struct SendOnce {
    dst: Option<NodeId>,
    sent: bool,
}

impl Protocol for SendOnce {
    type Msg = u8;
    fn start(&mut self, ctx: &mut Ctx<'_, u8>) {
        if let Some(d) = self.dst.take() {
            ctx.send_unicast(d, 1, 512, 0).expect("send");
            self.sent = true;
        }
    }
    fn handle_message(&mut self, _: &mut Ctx<'_, u8>, _: NodeId, _: &u8, _: RxMeta) {}
    fn handle_timer(&mut self, _: &mut Ctx<'_, u8>, _: TimerId, _: u64) {}
}

#[test]
fn unicast_exchange_is_rts_cts_data_ack_in_order() {
    let mut m = LinkTableMedium::new();
    m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
    let mut protos = vec![SendOnce::default(), SendOnce::default()];
    protos[0].dst = Some(NodeId::new(1));
    let mut sim = Simulator::new(
        vec![Pos::new(0.0, 0.0), Pos::new(10.0, 0.0)],
        Box::new(m),
        WorldConfig::default(),
        protos,
    );
    sim.world_mut().set_trace(Box::new(RingTrace::new(1024)));
    sim.run_until(SimTime::from_secs(1));
    let sink = sim.world_mut().take_trace().expect("trace attached");
    let ring: &RingTrace = sink.as_any().downcast_ref().expect("RingTrace installed");
    let tx_sequence: Vec<FrameKind> = ring
        .events()
        .filter_map(|e| match e.kind {
            TraceEventKind::TxStart { frame_kind, .. } => Some(frame_kind),
            _ => None,
        })
        .collect();
    assert_eq!(
        tx_sequence,
        vec![
            FrameKind::Rts,
            FrameKind::Cts,
            FrameKind::Data,
            FrameKind::Ack
        ],
        "unexpected MAC sequence"
    );
    // Every transmission was decoded by the peer: 4 Delivered events.
    let delivered = ring
        .events()
        .filter(|e| matches!(e.kind, TraceEventKind::Delivered { .. }))
        .count();
    assert_eq!(delivered, 4);
    // The data frame's Delivered carries the sender and class.
    let data_delivery = ring
        .events()
        .find(|e| {
            matches!(
                e.kind,
                TraceEventKind::Delivered {
                    frame_kind: FrameKind::Data,
                    ..
                }
            )
        })
        .expect("data delivered");
    assert_eq!(data_delivery.node, Some(NodeId::new(1)));
    assert_eq!(data_delivery.class, Some(0));
    assert!(data_delivery.seq.is_some());
    // Times never decrease across the exchange.
    let times: Vec<_> = ring.events().map(|e| e.at()).collect();
    let mut sorted = times.clone();
    sorted.sort();
    assert_eq!(times, sorted);
}

#[test]
fn broadcast_emits_single_data_frame() {
    let mut m = LinkTableMedium::new();
    m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
    #[derive(Debug)]
    struct Bcast;
    impl Protocol for Bcast {
        type Msg = u8;
        fn start(&mut self, ctx: &mut Ctx<'_, u8>) {
            if ctx.node().index() == 0 {
                ctx.send_broadcast(1, 512, 0).expect("send");
            }
        }
        fn handle_message(&mut self, _: &mut Ctx<'_, u8>, _: NodeId, _: &u8, _: RxMeta) {}
        fn handle_timer(&mut self, _: &mut Ctx<'_, u8>, _: TimerId, _: u64) {}
    }
    let mut sim = Simulator::new(
        vec![Pos::new(0.0, 0.0), Pos::new(10.0, 0.0)],
        Box::new(m),
        WorldConfig::default(),
        vec![Bcast, Bcast],
    );
    sim.world_mut().set_trace(Box::new(RingTrace::new(64)));
    sim.run_until(SimTime::from_secs(1));
    let sink = sim.world_mut().take_trace().unwrap();
    let dbg = format!("{sink:?}");
    // One Data TxStart, no control frames at all.
    assert_eq!(dbg.matches("TxStart").count(), 1, "{dbg}");
    assert!(!dbg.contains("Rts") && !dbg.contains("Ack"), "{dbg}");
}
