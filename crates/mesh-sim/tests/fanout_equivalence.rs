//! The indexed fan-out paths must be *bit-identical* to the naive reference
//! scans — same receiver sets, same powers (same RNG draw order), same
//! delays — across random topologies, after position changes, and in full
//! simulations under mobility.

use mesh_sim::geometry::{Area, Pos};
use mesh_sim::ids::NodeId;
use mesh_sim::medium::{LinkTableMedium, Medium, PhysicalMedium, PositionDelta, RxPlan};
use mesh_sim::mobility::RandomWaypoint;
use mesh_sim::prelude::*;
use mesh_sim::rng::SimRng;
use mesh_sim::time::{SimDuration, SimTime};
use mesh_sim::topology;
use proptest::prelude::*;

fn plans(m: &mut PhysicalMedium, tx: usize, positions: &[Pos], rng: &mut SimRng) -> Vec<RxPlan> {
    let mut out = Vec::new();
    m.fan_out(
        NodeId::new(tx as u32),
        positions,
        SimTime::ZERO,
        rng,
        &mut out,
    );
    out
}

proptest! {
    /// Indexed and naive `PhysicalMedium` fan-out produce identical RxPlan
    /// sequences *and* consume identical RNG streams, for every transmitter
    /// of a random topology — including after nodes move (with
    /// `invalidate_positions`).
    #[test]
    fn physical_indexed_matches_naive(
        n in 2usize..60,
        seed in any::<u64>(),
        side in 100.0f64..4000.0,
    ) {
        let mut layout_rng = SimRng::seed_from(seed);
        let mut positions =
            topology::random_placement(n, Area::square(side), &mut layout_rng);
        let mut naive = PhysicalMedium::default().with_indexing(false);
        let mut indexed = PhysicalMedium::default().with_indexing(true);
        for round in 0..3u64 {
            for tx in 0..n {
                let mut rng_n = SimRng::seed_from(seed ^ (round << 8) ^ tx as u64);
                let mut rng_i = rng_n.clone();
                let p_n = plans(&mut naive, tx, &positions, &mut rng_n);
                let p_i = plans(&mut indexed, tx, &positions, &mut rng_i);
                prop_assert_eq!(p_n, p_i);
                // Same number of draws consumed: the next draw must agree.
                prop_assert_eq!(rng_n.next_u64(), rng_i.next_u64());
            }
            // Move every node and tell the media; the indexed cache must
            // rebuild rather than replay stale geometry.
            for p in &mut positions {
                p.x += layout_rng.uniform_range(-50.0, 50.0);
                p.y += layout_rng.uniform_range(-50.0, 50.0);
            }
            naive.invalidate_positions();
            indexed.invalidate_positions();
        }
    }

    /// The three maintenance modes — naive O(N) scan, wholesale-rebuild
    /// index, and incrementally-patched index — stay bit-identical while a
    /// random-waypoint walk feeds per-tick [`Medium::positions_changed`]
    /// deltas: identical plan sequences, identical RNG consumption, for
    /// every transmitter on every tick. Resting nodes are deliberately left
    /// out of the move list so partial deltas (the incremental fast path)
    /// are exercised, not just full-population ticks.
    #[test]
    fn incremental_matches_rebuild_and_naive(
        n in 2usize..50,
        seed in any::<u64>(),
        side in 200.0f64..3000.0,
        speed in 0.5f64..40.0,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let area = Area::square(side);
        let mut positions = topology::random_placement(n, area, &mut rng);
        let mut waypoints = positions.clone();
        let mut naive = PhysicalMedium::default().with_indexing(false);
        let mut rebuild = PhysicalMedium::default().with_incremental(false);
        let mut incremental = PhysicalMedium::default();
        for tick in 0..6u64 {
            for tx in 0..n {
                let mut rng_n = SimRng::seed_from(seed ^ (tick << 8) ^ tx as u64);
                let mut rng_r = rng_n.clone();
                let mut rng_i = rng_n.clone();
                let p_n = plans(&mut naive, tx, &positions, &mut rng_n);
                let p_r = plans(&mut rebuild, tx, &positions, &mut rng_r);
                let p_i = plans(&mut incremental, tx, &positions, &mut rng_i);
                prop_assert_eq!(&p_n, &p_r, "rebuild diverged at tick {} tx {}", tick, tx);
                prop_assert_eq!(&p_n, &p_i, "incremental diverged at tick {} tx {}", tick, tx);
                let probe = rng_n.next_u64();
                prop_assert_eq!(probe, rng_r.next_u64());
                prop_assert_eq!(probe, rng_i.next_u64());
            }
            // One random-waypoint tick: walk toward the waypoint at `speed`,
            // re-aiming on arrival; some nodes rest and are not reported.
            let mut moves = Vec::new();
            for i in 0..n {
                if rng.chance(0.2) {
                    continue;
                }
                let (p, w) = (positions[i], waypoints[i]);
                let (dx, dy) = (w.x - p.x, w.y - p.y);
                let dist = (dx * dx + dy * dy).sqrt();
                let to = if dist <= speed {
                    waypoints[i] =
                        Pos::new(rng.uniform_range(0.0, side), rng.uniform_range(0.0, side));
                    w
                } else {
                    Pos::new(p.x + dx / dist * speed, p.y + dy / dist * speed)
                };
                positions[i] = to;
                moves.push(PositionDelta { node: NodeId::new(i as u32), from: p, to });
            }
            naive.positions_changed(&moves, &positions);
            rebuild.positions_changed(&moves, &positions);
            incremental.positions_changed(&moves, &positions);
        }
    }

    /// `LinkTableMedium`'s adjacency-list fan-out matches a reference scan
    /// over all node ids in ascending order probing `loss()` — the shape of
    /// the original implementation — including after `set_loss` updates.
    #[test]
    fn link_table_matches_reference_scan(
        n in 2usize..20,
        links in prop::collection::vec((any::<u8>(), any::<u8>(), 0.0f64..1.0), 0..40),
        seed in any::<u64>(),
    ) {
        let mut m = LinkTableMedium::new();
        for &(a, b, loss) in &links {
            let a = a as usize % n;
            let b = b as usize % n;
            if a != b {
                m.add_link(NodeId::new(a as u32), NodeId::new(b as u32), loss);
            }
        }
        let positions = vec![Pos::new(0.0, 0.0); n];
        for round in 0..2u64 {
            for tx in 0..n {
                let tx = NodeId::new(tx as u32);
                let mut rng_m = SimRng::seed_from(seed ^ (round << 8) ^ tx.index() as u64);
                let mut rng_r = rng_m.clone();
                let mut got = Vec::new();
                m.fan_out(tx, &positions, SimTime::ZERO, &mut rng_m, &mut got);
                // Reference: ascending node-id probe of the loss table.
                let mut want = Vec::new();
                for i in 0..n {
                    let node = NodeId::new(i as u32);
                    if node == tx {
                        continue;
                    }
                    if let Some(loss) = m.loss(tx, node) {
                        let decodable = !rng_r.chance(loss);
                        let power = if decodable {
                            m.phy().rx_threshold_w * 10.0
                        } else {
                            m.phy().cs_threshold_w * 2.0
                        };
                        want.push(RxPlan {
                            node,
                            power_w: power,
                            delay: SimDuration::from_nanos(200),
                        });
                    }
                }
                prop_assert_eq!(got, want);
                prop_assert_eq!(rng_m.next_u64(), rng_r.next_u64());
            }
            // Walk every link's loss (keeping membership) and re-check: the
            // in-place adjacency patch must track the table.
            let mut walk = SimRng::seed_from(seed ^ 0x10_55);
            for &(a, b, _) in &links {
                let a = NodeId::new((a as usize % n) as u32);
                let b = NodeId::new((b as usize % n) as u32);
                if a != b {
                    m.set_loss(a, b, walk.uniform());
                }
            }
        }
    }
}

/// A protocol that beacons periodically: every node broadcasts on a timer
/// and counts what it hears — steady medium traffic while nodes move.
#[derive(Debug, Default)]
struct Beacon {
    heard: u64,
}

impl Protocol for Beacon {
    type Msg = u32;
    fn start(&mut self, ctx: &mut Ctx<'_, u32>) {
        // Stagger the first beacons so they don't all collide at t=0.
        let jitter = SimDuration::from_micros(137 * (ctx.node().index() as u64 + 1));
        ctx.set_timer(SimDuration::from_millis(200) + jitter, 0);
    }
    fn handle_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: &u32, _: RxMeta) {
        self.heard += 1;
    }
    fn handle_timer(&mut self, ctx: &mut Ctx<'_, u32>, _: TimerId, _: u64) {
        let _ = ctx.send_broadcast(ctx.node().index() as u32, 64, 0);
        ctx.set_timer(SimDuration::from_millis(200), 0);
    }
}

fn mobile_run(indexed: bool, incremental: bool) -> (Vec<u64>, mesh_sim::counters::Counters, u64) {
    let mut rng = SimRng::seed_from(0xB0B);
    let area = Area::square(600.0);
    let positions = topology::random_placement(25, area, &mut rng);
    let medium = Box::new(
        PhysicalMedium::default()
            .with_indexing(indexed)
            .with_incremental(incremental),
    );
    let protos = (0..25).map(|_| Beacon::default()).collect();
    let mut sim = Simulator::new(positions, medium, WorldConfig::default(), protos);
    sim.set_mobility(Box::new(RandomWaypoint::new(
        area,
        1.0,
        10.0,
        SimDuration::from_secs(1),
    )));
    sim.run_until(SimTime::from_secs(20));
    let heard = sim.protocols().iter().map(|p| p.heard).collect();
    let hash = sim.schedule_hash();
    (heard, sim.counters().clone(), hash)
}

/// Under random-waypoint mobility all three maintenance modes must match
/// exactly: identical per-node delivery counts, counters, and — the
/// strongest fingerprint the simulator has — `schedule_hash`, which folds
/// every scheduled event of the run.
#[test]
fn mobility_three_modes_bit_identical() {
    let (heard_naive, counters_naive, hash_naive) = mobile_run(false, true);
    let (heard_rebuild, counters_rebuild, hash_rebuild) = mobile_run(true, false);
    let (heard_incr, counters_incr, hash_incr) = mobile_run(true, true);
    assert!(
        heard_naive.iter().sum::<u64>() > 0,
        "beacons should be heard — otherwise the test is vacuous"
    );
    assert_eq!(heard_naive, heard_rebuild);
    assert_eq!(counters_naive, counters_rebuild);
    assert_eq!(hash_naive, hash_rebuild);
    assert_eq!(heard_naive, heard_incr);
    assert_eq!(counters_naive, counters_incr);
    assert_eq!(hash_naive, hash_incr);
}
