//! Detailed unicast MAC behavior: retransmission, receive-side duplicate
//! suppression, and control-frame accounting under asymmetric links.

use mesh_sim::prelude::*;

#[derive(Debug, Default)]
struct OneShot {
    send_to: Option<NodeId>,
    bytes: u32,
    received: Vec<u64>,
    outcomes: Vec<TxOutcome>,
}

impl Protocol for OneShot {
    type Msg = u64;
    fn start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if let Some(dst) = self.send_to {
            ctx.send_unicast(dst, 42, self.bytes, 0).expect("send");
        }
    }
    fn handle_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, msg: &u64, _: RxMeta) {
        self.received.push(*msg);
    }
    fn handle_timer(&mut self, _: &mut Ctx<'_, u64>, _: TimerId, _: u64) {}
    fn handle_tx_complete(&mut self, _: &mut Ctx<'_, u64>, _: TxHandle, o: TxOutcome) {
        self.outcomes.push(o);
    }
}

/// Forward direction clean, reverse direction dead: data frames arrive but
/// CTS/ACKs never come back.
fn asymmetric_medium() -> LinkTableMedium {
    let mut m = LinkTableMedium::new();
    m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
    m.set_loss(NodeId::new(1), NodeId::new(0), 1.0);
    m
}

#[test]
fn lost_acks_cause_retries_and_final_failure() {
    // Small frame (below RTS threshold): the data goes out repeatedly, each
    // copy is delivered at the MAC of node 1 but deduplicated; node 0 sees a
    // failure after the short retry limit.
    let mut protos = vec![OneShot::default(), OneShot::default()];
    protos[0].send_to = Some(NodeId::new(1));
    protos[0].bytes = 64;
    let mut sim = Simulator::new(
        vec![Pos::new(0.0, 0.0), Pos::new(10.0, 0.0)],
        Box::new(asymmetric_medium()),
        WorldConfig::default(),
        protos,
    );
    sim.run_until(SimTime::from_secs(5));

    // Application got the payload exactly once despite the retransmissions.
    assert_eq!(sim.protocols()[1].received, vec![42]);
    assert!(
        sim.counters().duplicate_rx_suppressed > 0,
        "no dedup happened"
    );
    // Sender saw retries and an eventual failure.
    assert_eq!(sim.protocols()[0].outcomes.len(), 1);
    assert!(matches!(
        sim.protocols()[0].outcomes[0],
        TxOutcome::Failed { retries } if retries > 0
    ));
    assert!(sim.counters().retries > 0);
    // Node 1 ACKed every copy; the ACKs died on the dead reverse link.
    assert!(sim.counters().tx_ctrl_frames > 1);
}

#[test]
fn rts_with_dead_reverse_fails_without_data_ever_sent() {
    // Large frame: RTS goes out, CTS never returns, so the *data* frame is
    // never transmitted at all — only RTS retries.
    let mut protos = vec![OneShot::default(), OneShot::default()];
    protos[0].send_to = Some(NodeId::new(1));
    protos[0].bytes = 512;
    let mut sim = Simulator::new(
        vec![Pos::new(0.0, 0.0), Pos::new(10.0, 0.0)],
        Box::new(asymmetric_medium()),
        WorldConfig::default(),
        protos,
    );
    sim.run_until(SimTime::from_secs(5));

    assert!(
        sim.protocols()[1].received.is_empty(),
        "data leaked past failed RTS"
    );
    assert_eq!(
        sim.counters().tx_data[0].frames,
        0,
        "data frame transmitted without CTS"
    );
    assert_eq!(sim.counters().unicast_failures, 1);
}

#[test]
fn clean_bidirectional_link_needs_exactly_one_attempt() {
    let mut m = LinkTableMedium::new();
    m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
    let mut protos = vec![OneShot::default(), OneShot::default()];
    protos[0].send_to = Some(NodeId::new(1));
    protos[0].bytes = 512;
    let mut sim = Simulator::new(
        vec![Pos::new(0.0, 0.0), Pos::new(10.0, 0.0)],
        Box::new(m),
        WorldConfig::default(),
        protos,
    );
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(sim.protocols()[1].received, vec![42]);
    assert_eq!(sim.counters().retries, 0);
    assert_eq!(sim.counters().duplicate_rx_suppressed, 0);
    // RTS + CTS + ACK.
    assert_eq!(sim.counters().tx_ctrl_frames, 3);
    assert_eq!(sim.protocols()[0].outcomes, vec![TxOutcome::Sent]);
}
