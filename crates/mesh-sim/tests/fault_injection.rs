//! Fault-injection semantics and differential replay at the simulator level.
//!
//! A tiny flood protocol runs on a lossless chain (`LinkTableMedium`) so
//! every assertion about crashes, blackouts, partitions and loss bursts is
//! exact, and replays of the same `(topology, fault plan, seed)` triple are
//! checked to be bit-identical down to the counters.

use std::collections::HashSet;

use mesh_sim::fault::{FaultKind, FaultPlan};
use mesh_sim::prelude::*;

const BEAT: SimDuration = SimDuration::from_millis(100);

/// Node 0 broadcasts a fresh sequence number every 100 ms; everyone else
/// rebroadcasts each number once (network-layer dedup).
#[derive(Debug, Default)]
struct Flood {
    origin: bool,
    next_seq: u64,
    seen: HashSet<u64>,
    delivered: Vec<(SimTime, u64)>,
    restarts: u32,
}

impl Flood {
    fn origin() -> Self {
        Flood {
            origin: true,
            ..Flood::default()
        }
    }

    /// Sequence numbers delivered within `[from, to)`.
    fn delivered_in(&self, from: SimTime, to: SimTime) -> Vec<u64> {
        self.delivered
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|&(_, s)| s)
            .collect()
    }
}

impl Protocol for Flood {
    type Msg = u64;

    fn start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.origin {
            ctx.set_timer(BEAT, 0);
        }
    }

    fn handle_message(&mut self, ctx: &mut Ctx<'_, u64>, _src: NodeId, msg: &u64, _meta: RxMeta) {
        if self.seen.insert(*msg) {
            self.delivered.push((ctx.now(), *msg));
            let _ = ctx.send_broadcast(*msg, 256, 0);
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx<'_, u64>, _timer: TimerId, _kind: u64) {
        self.next_seq += 1;
        let _ = ctx.send_broadcast(self.next_seq, 256, 0);
        ctx.set_timer(BEAT, 0);
    }

    fn handle_restart(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.restarts += 1;
        self.seen.clear();
        if self.origin {
            ctx.set_timer(BEAT, 0);
        }
    }
}

/// A lossless 4-node chain 0—1—2—3: node 3 only hears the source through
/// the two relays, so relay faults are directly visible in its deliveries.
fn chain_sim(seed: u64) -> Simulator<Flood> {
    let positions: Vec<Pos> = (0..4).map(|i| Pos::new(200.0 * i as f64, 0.0)).collect();
    let mut medium = LinkTableMedium::new();
    for i in 0..3u32 {
        medium.add_link(NodeId::new(i), NodeId::new(i + 1), 0.0);
    }
    let protocols = vec![
        Flood::origin(),
        Flood::default(),
        Flood::default(),
        Flood::default(),
    ];
    Simulator::new(
        positions,
        Box::new(medium),
        WorldConfig {
            seed,
            ..WorldConfig::default()
        },
        protocols,
    )
}

fn s(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

#[test]
fn chain_delivers_everything_without_faults() {
    let mut sim = chain_sim(7);
    sim.set_invariant_interval(SimDuration::from_millis(500));
    sim.run_until(s(10));
    let sent = sim.protocols()[0].next_seq;
    let got = sim.protocols()[3].delivered.len() as u64;
    assert!(sent >= 99, "source only sent {sent}");
    // The last beat may still be in flight at cutoff.
    assert!(got >= sent - 1, "end of chain got {got}/{sent}");
}

#[test]
fn attaching_an_empty_plan_changes_nothing() {
    let mut clean = chain_sim(3);
    clean.run_until(s(5));
    let mut planned = chain_sim(3);
    planned.set_fault_plan(FaultPlan::new());
    planned.run_until(s(5));
    assert_eq!(clean.counters(), planned.counters());
}

#[test]
fn replay_is_bit_identical_under_faults() {
    let plan = FaultPlan::new()
        .crash_window(NodeId::new(2), s(2), s(4))
        .link_degrade_window(NodeId::new(0), NodeId::new(1), 0.5, s(5), s(6))
        .class_loss_window(0, 0.7, s(7), s(8));
    let run = |seed: u64| {
        let mut sim = chain_sim(seed);
        sim.set_fault_plan(plan.clone());
        sim.set_invariant_interval(SimDuration::from_millis(250));
        sim.run_until(s(10));
        let deliveries: Vec<Vec<(SimTime, u64)>> = sim
            .protocols()
            .iter()
            .map(|p| p.delivered.clone())
            .collect();
        (sim.counters().clone(), deliveries)
    };
    let (c1, d1) = run(11);
    let (c2, d2) = run(11);
    assert_eq!(c1, c2, "counters diverged between identical runs");
    assert_eq!(d1, d2, "delivery traces diverged between identical runs");
    let (c3, _) = run(12);
    assert_ne!(c1, c3, "different seeds should not collide exactly");
}

#[test]
fn crashed_relay_cuts_the_chain_and_recovery_restores_it() {
    let mut sim = chain_sim(5);
    sim.set_fault_plan(FaultPlan::new().crash_window(NodeId::new(1), s(3), s(6)));
    sim.set_invariant_interval(SimDuration::from_millis(250));
    sim.run_until(s(12));

    let end = &sim.protocols()[3];
    // Healthy before the crash...
    assert!(
        !end.delivered_in(s(1), s(3)).is_empty(),
        "no deliveries before the crash"
    );
    // ...dark while the only relay to the source is down (one frame may
    // already be in flight at the instant of the crash)...
    let during = end.delivered_in(s(3) + SimDuration::from_millis(10), s(6));
    assert!(
        during.is_empty(),
        "deliveries crossed a crashed relay: {during:?}"
    );
    // ...and healthy again after recovery (allow a beat to re-sync).
    let after = end.delivered_in(s(7), s(12));
    assert!(
        after.len() >= 40,
        "only {} deliveries after recovery",
        after.len()
    );
    assert_eq!(sim.protocols()[1].restarts, 1);
    assert_eq!(sim.counters().fault_events, 2);
}

#[test]
fn crashed_node_is_reported_down_and_quiesced() {
    let mut sim = chain_sim(9);
    sim.set_fault_plan(FaultPlan::new().at(s(2), FaultKind::NodeCrash(NodeId::new(2))));
    sim.run_until(s(4));
    assert!(sim.world().node_is_down(NodeId::new(2)));
    assert!(!sim.world().node_is_down(NodeId::new(1)));
    // The invariant suite (including mac-crashed-quiesced) holds.
    sim.check_invariants();
    // Down forever: no deliveries at the chain end after the cut clears.
    let end = &sim.protocols()[3];
    assert!(end
        .delivered_in(s(2) + SimDuration::from_millis(10), s(4))
        .is_empty());
}

#[test]
fn blackout_silences_one_direction_only() {
    let mut sim = chain_sim(13);
    // Cut 1→2 (data direction) for 3s..6s; 2→1 stays up but carries nothing
    // new since 2 no longer hears fresh sequence numbers.
    sim.set_fault_plan(FaultPlan::new().link_blackout_window(
        NodeId::new(1),
        NodeId::new(2),
        s(3),
        s(6),
    ));
    sim.run_until(s(10));
    let relay2 = &sim.protocols()[2];
    let during = relay2.delivered_in(s(3) + SimDuration::from_millis(10), s(6));
    assert!(
        during.is_empty(),
        "frames crossed a blacked-out link: {during:?}"
    );
    assert!(
        !relay2.delivered_in(s(7), s(10)).is_empty(),
        "link never recovered"
    );
    // Node 1 itself kept hearing the source throughout.
    assert!(!sim.protocols()[1].delivered_in(s(4), s(6)).is_empty());
}

#[test]
fn partition_blocks_cross_boundary_traffic() {
    let mut sim = chain_sim(17);
    // Boundary at x=300 m splits {0,1} from {2,3}.
    sim.set_fault_plan(
        FaultPlan::new()
            .at(
                s(3),
                FaultKind::Partition {
                    boundary_x_m: 300.0,
                },
            )
            .at(s(6), FaultKind::HealPartition),
    );
    sim.set_invariant_interval(SimDuration::from_millis(500));
    sim.run_until(s(10));
    let far = &sim.protocols()[3];
    let during = far.delivered_in(s(3) + SimDuration::from_millis(10), s(6));
    assert!(
        during.is_empty(),
        "frames crossed the partition: {during:?}"
    );
    assert!(
        !far.delivered_in(s(7), s(10)).is_empty(),
        "partition never healed"
    );
}

#[test]
fn total_class_loss_burst_stops_delivery_but_not_transmission() {
    let mut sim = chain_sim(21);
    sim.set_fault_plan(FaultPlan::new().class_loss_window(0, 1.0, s(3), s(6)));
    sim.set_invariant_interval(SimDuration::from_millis(500));
    sim.run_until(s(10));
    let end = &sim.protocols()[3];
    assert!(end
        .delivered_in(s(3) + SimDuration::from_millis(10), s(6))
        .is_empty());
    assert!(!end.delivered_in(s(7), s(10)).is_empty());
    // The source kept transmitting into the burst; the drops are accounted.
    assert!(sim.counters().fault_rx_dropped > 0);
}

#[test]
fn conservation_holds_at_fine_checkpoints_under_heavy_faults() {
    let plan = FaultPlan::new()
        .crash_window(NodeId::new(1), s(1), s(2))
        .crash_window(NodeId::new(2), s(2), s(3))
        .link_blackout_window(NodeId::new(0), NodeId::new(1), s(3), s(4))
        .link_degrade_window(NodeId::new(1), NodeId::new(2), 0.9, s(4), s(5))
        .class_loss_window(0, 0.5, s(5), s(6))
        .at(
            s(6),
            FaultKind::Partition {
                boundary_x_m: 100.0,
            },
        )
        .at(s(7), FaultKind::HealPartition);
    let mut sim = chain_sim(23);
    sim.set_fault_plan(plan);
    // A 50 ms cadence checks between almost every pair of protocol actions.
    sim.set_invariant_interval(SimDuration::from_millis(50));
    sim.run_until(s(9));
    // 2 crash windows (2 events each) + 2 link windows (4 each: both
    // directions) + burst window (2) + partition pair (2).
    assert_eq!(sim.counters().fault_events, 16);
}
