//! Property-based tests of the simulator substrate.

use mesh_sim::prelude::*;
use proptest::prelude::*;

/// Protocol that arms a batch of timers at start and records fire order.
#[derive(Debug, Default)]
struct TimerRecorder {
    delays_ms: Vec<u64>,
    fired: Vec<u64>, // kinds, in fire order
}

impl Protocol for TimerRecorder {
    type Msg = ();
    fn start(&mut self, ctx: &mut Ctx<'_, ()>) {
        for (i, &d) in self.delays_ms.iter().enumerate() {
            ctx.set_timer(SimDuration::from_millis(d), i as u64);
        }
    }
    fn handle_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &(), _: RxMeta) {}
    fn handle_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerId, kind: u64) {
        self.fired.push(kind);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timers fire in non-decreasing time order, ties in insertion order.
    #[test]
    fn timers_fire_in_schedule_order(delays in prop::collection::vec(0u64..5_000, 1..40)) {
        let mut sim = Simulator::new(
            vec![Pos::new(0.0, 0.0)],
            Box::new(PhysicalMedium::default()),
            WorldConfig::default(),
            vec![TimerRecorder { delays_ms: delays.clone(), fired: Vec::new() }],
        );
        sim.run_until(SimTime::from_secs(10));
        let fired = &sim.protocols()[0].fired;
        prop_assert_eq!(fired.len(), delays.len());
        // Expected: indices sorted by (delay, index).
        let mut expect: Vec<usize> = (0..delays.len()).collect();
        expect.sort_by_key(|&i| (delays[i], i));
        let got: Vec<usize> = fired.iter().map(|&k| k as usize).collect();
        prop_assert_eq!(got, expect);
    }

    /// Mean received power is monotone non-increasing with distance for both
    /// path-loss models.
    #[test]
    fn power_monotone_in_distance(mut ds in prop::collection::vec(1.0f64..5_000.0, 2..20)) {
        ds.sort_by(f64::total_cmp);
        for model in [PathLossModel::FreeSpace, PathLossModel::TwoRayGround] {
            let phy = PhyParams { path_loss: model, ..PhyParams::default() };
            let mut last = f64::INFINITY;
            for &d in &ds {
                let p = phy.mean_rx_power_w(d);
                prop_assert!(p <= last * (1.0 + 1e-12), "{model:?} at {d}");
                last = p;
            }
        }
    }

    /// Fading never produces negative or NaN powers.
    #[test]
    fn sampled_power_is_sane(d in 1.0f64..2_000.0, seed in 0u64..1_000) {
        let phy = PhyParams::default();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..32 {
            let p = phy.sample_rx_power_w(d, &mut rng);
            prop_assert!(p.is_finite() && p >= 0.0);
        }
    }

    /// Data airtime is strictly monotone in payload size and always exceeds
    /// the PLCP overhead.
    #[test]
    fn airtime_monotone(a in 0u32..3_000, b in 0u32..3_000) {
        let p = MacParams::default();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(p.data_airtime(lo) <= p.data_airtime(hi));
        prop_assert!(p.data_airtime(lo) > p.plcp_overhead);
    }

    /// Contention windows never exceed the maximum and never shrink.
    #[test]
    fn cw_growth_bounded(steps in 0u32..20) {
        let p = MacParams::default();
        let mut cw = p.cw_min;
        for _ in 0..steps {
            let next = p.next_cw(cw);
            prop_assert!(next >= cw);
            prop_assert!(next <= p.cw_max);
            cw = next;
        }
    }

    /// `random_connected` placements are connected and inside the area.
    #[test]
    fn random_connected_holds_invariants(seed in 0u64..200) {
        let mut rng = SimRng::seed_from(seed);
        let area = Area::square(600.0);
        let ps = mesh_sim::topology::random_connected(20, area, 250.0, &mut rng, 10_000);
        prop_assert!(mesh_sim::topology::is_connected(&ps, 250.0));
        prop_assert!(ps.iter().all(|&p| area.contains(p)));
    }

    /// Hop distances satisfy the neighbor property: adjacent nodes differ by
    /// at most one hop.
    #[test]
    fn hop_distance_lipschitz(seed in 0u64..200) {
        let mut rng = SimRng::seed_from(seed);
        let ps = mesh_sim::topology::random_connected(
            15, Area::square(500.0), 250.0, &mut rng, 10_000);
        let d = mesh_sim::topology::hop_distances(&ps, 250.0, 0);
        let adj = mesh_sim::topology::disk_graph(&ps, 250.0);
        for (i, ns) in adj.iter().enumerate() {
            for &j in ns {
                prop_assert!(d[i].abs_diff(d[j]) <= 1);
            }
        }
    }

    /// Duration arithmetic: saturating add/sub round-trips within range.
    #[test]
    fn duration_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!((da + db) - db, da);
        let t = SimTime::from_nanos(a) + db;
        prop_assert_eq!(t.saturating_since(SimTime::from_nanos(a)), db);
    }
}
