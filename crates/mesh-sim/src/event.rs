//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence number)`: ties in simulated time
//! are broken by insertion order, which makes runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ids::{FrameId, NodeId, TimerId};
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;

/// The kinds of events the simulator processes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EventKind {
    /// A MAC state-machine timer (DIFS end, backoff end, CTS/ACK timeout).
    MacTimer { node: NodeId, gen: u64 },
    /// A pending SIFS-spaced control response (CTS or ACK) is due.
    CtrlTimer { node: NodeId, gen: u64 },
    /// A transmission by `node` finishes.
    TxEnd { node: NodeId, frame: FrameId },
    /// The first energy of `frame` arrives at `node`.
    RxStart {
        node: NodeId,
        frame: FrameId,
        power_w: f64,
    },
    /// The last energy of `frame` leaves `node`.
    RxEnd {
        node: NodeId,
        frame: FrameId,
        power_w: f64,
    },
    /// A protocol timer fires.
    ProtoTimer {
        node: NodeId,
        timer: TimerId,
        kind: u64,
    },
    /// The mobility model is due for a position update.
    MobilityTick,
    /// Entry `idx` of the attached fault plan fires.
    Fault { idx: usize },
}

#[derive(Debug, Clone)]
pub(crate) struct ScheduledEvent {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Fold one dequeued event into a running FNV-1a schedule hash.
///
/// The hash commits to the exact dequeue order `(time, seq, kind)` of every
/// event the simulator processes, so two runs of the same
/// `(scenario, plan, seed)` agree on it iff their event schedules are
/// bit-identical. This is the runtime cross-check behind the static
/// determinism rules (mesh-lint R1–R5, DESIGN.md §10): counters can collide
/// by luck, the schedule hash cannot realistically do so.
pub(crate) fn fold_schedule_hash(h: &mut u64, ev: &ScheduledEvent) {
    fn fold(h: &mut u64, v: u64) {
        for byte in v.to_le_bytes() {
            *h ^= byte as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a prime
        }
    }
    fold(h, ev.time.as_nanos());
    fold(h, ev.seq);
    match ev.kind {
        EventKind::MacTimer { node, gen } => {
            fold(h, 1);
            fold(h, node.as_u32() as u64);
            fold(h, gen);
        }
        EventKind::CtrlTimer { node, gen } => {
            fold(h, 2);
            fold(h, node.as_u32() as u64);
            fold(h, gen);
        }
        EventKind::TxEnd { node, frame } => {
            fold(h, 3);
            fold(h, node.as_u32() as u64);
            fold(h, frame.as_u64());
        }
        EventKind::RxStart {
            node,
            frame,
            power_w,
        } => {
            fold(h, 4);
            fold(h, node.as_u32() as u64);
            fold(h, frame.as_u64());
            fold(h, power_w.to_bits());
        }
        EventKind::RxEnd {
            node,
            frame,
            power_w,
        } => {
            fold(h, 5);
            fold(h, node.as_u32() as u64);
            fold(h, frame.as_u64());
            fold(h, power_w.to_bits());
        }
        EventKind::ProtoTimer { node, timer, kind } => {
            fold(h, 6);
            fold(h, node.as_u32() as u64);
            fold(h, timer.0);
            fold(h, kind);
        }
        EventKind::MobilityTick => fold(h, 7),
        EventKind::Fault { idx } => {
            fold(h, 8);
            fold(h, idx as u64);
        }
    }
}

/// FNV-1a offset basis: the schedule hash of a run with zero events.
pub(crate) const SCHEDULE_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

// Wire tags match the schedule-hash kind tags (1–8) so the two encodings
// can never silently drift apart.
impl Snap for EventKind {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            EventKind::MacTimer { node, gen } => {
                w.put_u8(1);
                node.snap(w);
                w.put_u64(gen);
            }
            EventKind::CtrlTimer { node, gen } => {
                w.put_u8(2);
                node.snap(w);
                w.put_u64(gen);
            }
            EventKind::TxEnd { node, frame } => {
                w.put_u8(3);
                node.snap(w);
                frame.snap(w);
            }
            EventKind::RxStart {
                node,
                frame,
                power_w,
            } => {
                w.put_u8(4);
                node.snap(w);
                frame.snap(w);
                w.put_f64(power_w);
            }
            EventKind::RxEnd {
                node,
                frame,
                power_w,
            } => {
                w.put_u8(5);
                node.snap(w);
                frame.snap(w);
                w.put_f64(power_w);
            }
            EventKind::ProtoTimer { node, timer, kind } => {
                w.put_u8(6);
                node.snap(w);
                timer.snap(w);
                w.put_u64(kind);
            }
            EventKind::MobilityTick => w.put_u8(7),
            EventKind::Fault { idx } => {
                w.put_u8(8);
                w.put_usize(idx);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            1 => EventKind::MacTimer {
                node: NodeId::unsnap(r)?,
                gen: r.u64()?,
            },
            2 => EventKind::CtrlTimer {
                node: NodeId::unsnap(r)?,
                gen: r.u64()?,
            },
            3 => EventKind::TxEnd {
                node: NodeId::unsnap(r)?,
                frame: FrameId::unsnap(r)?,
            },
            4 => EventKind::RxStart {
                node: NodeId::unsnap(r)?,
                frame: FrameId::unsnap(r)?,
                power_w: r.f64()?,
            },
            5 => EventKind::RxEnd {
                node: NodeId::unsnap(r)?,
                frame: FrameId::unsnap(r)?,
                power_w: r.f64()?,
            },
            6 => EventKind::ProtoTimer {
                node: NodeId::unsnap(r)?,
                timer: TimerId::unsnap(r)?,
                kind: r.u64()?,
            },
            7 => EventKind::MobilityTick,
            8 => EventKind::Fault { idx: r.usize()? },
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

impl Snap for ScheduledEvent {
    fn snap(&self, w: &mut SnapWriter) {
        self.time.snap(w);
        w.put_u64(self.seq);
        self.kind.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ScheduledEvent {
            time: SimTime::unsnap(r)?,
            seq: r.u64()?,
            kind: EventKind::unsnap(r)?,
        })
    }
}

impl Snap for EventQueue {
    fn snap(&self, w: &mut SnapWriter) {
        // The heap's internal layout is not canonical; serialize the pending
        // events in their (unique) `(time, seq)` dequeue order instead so
        // equal queues always produce equal bytes.
        let mut pending: Vec<&ScheduledEvent> = self.heap.iter().collect();
        pending.sort_by_key(|e| (e.time, e.seq));
        w.put_usize(pending.len());
        for ev in pending {
            ev.snap(w);
        }
        w.put_u64(self.seq);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            heap.push(ScheduledEvent::unsnap(r)?);
        }
        let seq = r.u64()?;
        Ok(EventQueue { heap, seq })
    }
}

/// Min-heap of scheduled events with deterministic tie-breaking.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(ScheduledEvent { time, seq, kind });
    }

    /// Pop the earliest event if it occurs at or before `limit`.
    pub fn pop_if_at_or_before(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        if self.heap.peek().is_some_and(|e| e.time <= limit) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Time of the next event, if any.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(node: u32) -> EventKind {
        EventKind::MacTimer {
            node: NodeId::new(node),
            gen: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), dummy(3));
        q.push(SimTime::from_nanos(10), dummy(1));
        q.push(SimTime::from_nanos(20), dummy(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_if_at_or_before(SimTime::MAX))
            .map(|e| e.time.as_nanos())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.push(t, dummy(1));
        q.push(t, dummy(2));
        q.push(t, dummy(3));
        let nodes: Vec<u32> = std::iter::from_fn(|| q.pop_if_at_or_before(SimTime::MAX))
            .map(|e| match e.kind {
                EventKind::MacTimer { node, .. } => node.as_u32(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![1, 2, 3]);
    }

    #[test]
    fn respects_limit() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), dummy(1));
        assert!(q.pop_if_at_or_before(SimTime::from_nanos(99)).is_none());
        assert!(q.pop_if_at_or_before(SimTime::from_nanos(100)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_hash_commits_to_dequeue_order() {
        let drain = |pushes: &[(u64, u32)]| {
            let mut q = EventQueue::new();
            for &(t, n) in pushes {
                q.push(SimTime::from_nanos(t), dummy(n));
            }
            let mut h = SCHEDULE_HASH_SEED;
            while let Some(ev) = q.pop_if_at_or_before(SimTime::MAX) {
                fold_schedule_hash(&mut h, &ev);
            }
            h
        };
        let a = drain(&[(10, 1), (20, 2)]);
        let b = drain(&[(10, 1), (20, 2)]);
        let swapped = drain(&[(10, 2), (20, 1)]);
        assert_eq!(a, b, "identical schedules must hash identically");
        assert_ne!(a, swapped, "different event payloads must change the hash");
        assert_ne!(a, SCHEDULE_HASH_SEED, "events must perturb the seed value");
    }

    #[test]
    fn peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(42), dummy(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.len(), 1);
    }
}
