//! Frames in flight on the medium, and their storage.
//!
//! The simulator never serializes payloads: a frame carries the protocol
//! message by value plus an explicit on-air size in bytes. Frames live in a
//! slab while any reception or transmission event still references them.

use crate::ids::{FrameId, NodeId, TxHandle};
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::SimDuration;
use std::sync::Arc;

/// What a frame is, at the MAC level.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FrameBody<M> {
    /// Request-to-send; `nav` covers CTS + DATA + ACK.
    Rts { dst: NodeId, nav: SimDuration },
    /// Clear-to-send; `nav` covers DATA + ACK.
    Cts { dst: NodeId, nav: SimDuration },
    /// Link-layer acknowledgment.
    Ack { dst: NodeId },
    /// A data frame carrying a protocol message.
    Data {
        /// `None` means link-layer broadcast.
        dst: Option<NodeId>,
        /// Shared payload: cloning a frame body (one clone per receiver on
        /// broadcast fan-out) bumps a refcount instead of copying `M`.
        msg: Arc<M>,
        /// Protocol-defined traffic class for byte accounting.
        class: u8,
        handle: TxHandle,
        /// MAC-level sequence number for receive-side duplicate detection
        /// (constant across retransmissions of the same frame).
        mac_seq: u64,
    },
}

/// A frame occupying the medium.
#[derive(Debug, Clone)]
pub(crate) struct Frame<M> {
    pub src: NodeId,
    pub body: FrameBody<M>,
    /// Total on-air size in bytes (payload + MAC header for data frames).
    pub bytes: u32,
    /// Airtime of the frame.
    pub duration: SimDuration,
    /// Outstanding event references (one per scheduled RxEnd, plus TxEnd).
    pub refs: u32,
}

impl<M> Frame<M> {
    /// Destination of the frame, `None` for broadcast.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn dst(&self) -> Option<NodeId> {
        match &self.body {
            FrameBody::Rts { dst, .. } | FrameBody::Cts { dst, .. } | FrameBody::Ack { dst } => {
                Some(*dst)
            }
            FrameBody::Data { dst, .. } => *dst,
        }
    }
}

/// Slab of in-flight frames with id reuse.
#[derive(Debug)]
pub(crate) struct FrameSlab<M> {
    slots: Vec<Option<Frame<M>>>,
    free: Vec<u32>,
    /// Generation counters make stale `FrameId`s detectable.
    gens: Vec<u32>,
    live: usize,
}

impl<M> Default for FrameSlab<M> {
    fn default() -> Self {
        FrameSlab {
            slots: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            live: 0,
        }
    }
}

impl<M> FrameSlab<M> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a frame with an initial reference count.
    pub fn insert(&mut self, frame: Frame<M>) -> FrameId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(frame);
            FrameId(encode(slot, self.gens[slot as usize]))
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Some(frame));
            self.gens.push(0);
            FrameId(encode(slot, 0))
        }
    }

    pub fn get(&self, id: FrameId) -> Option<&Frame<M>> {
        let (slot, gen) = decode(id.0);
        if self.gens.get(slot as usize) != Some(&gen) {
            return None;
        }
        self.slots[slot as usize].as_ref()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn get_mut(&mut self, id: FrameId) -> Option<&mut Frame<M>> {
        let (slot, gen) = decode(id.0);
        if self.gens.get(slot as usize) != Some(&gen) {
            return None;
        }
        self.slots[slot as usize].as_mut()
    }

    /// Drop one reference; frees the frame when the count reaches zero.
    /// Returns the frame if this was the final reference.
    pub fn release(&mut self, id: FrameId) -> Option<Frame<M>> {
        let (slot, gen) = decode(id.0);
        if self.gens.get(slot as usize) != Some(&gen) {
            return None;
        }
        let f = self.slots[slot as usize].as_mut()?;
        debug_assert!(f.refs > 0, "released a frame with zero refs");
        f.refs -= 1;
        if f.refs == 0 {
            let f = self.slots[slot as usize].take();
            self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
            self.free.push(slot);
            self.live -= 1;
            f
        } else {
            None
        }
    }

    /// Number of live frames (for leak assertions in tests).
    pub fn live(&self) -> usize {
        self.live
    }
}

impl<M: Snap> Snap for FrameBody<M> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            FrameBody::Rts { dst, nav } => {
                w.put_u8(0);
                dst.snap(w);
                nav.snap(w);
            }
            FrameBody::Cts { dst, nav } => {
                w.put_u8(1);
                dst.snap(w);
                nav.snap(w);
            }
            FrameBody::Ack { dst } => {
                w.put_u8(2);
                dst.snap(w);
            }
            FrameBody::Data {
                dst,
                msg,
                class,
                handle,
                mac_seq,
            } => {
                w.put_u8(3);
                dst.snap(w);
                msg.snap(w);
                w.put_u8(*class);
                handle.snap(w);
                w.put_u64(*mac_seq);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FrameBody::Rts {
                dst: Snap::unsnap(r)?,
                nav: Snap::unsnap(r)?,
            },
            1 => FrameBody::Cts {
                dst: Snap::unsnap(r)?,
                nav: Snap::unsnap(r)?,
            },
            2 => FrameBody::Ack {
                dst: Snap::unsnap(r)?,
            },
            3 => FrameBody::Data {
                dst: Snap::unsnap(r)?,
                msg: Snap::unsnap(r)?,
                class: r.u8()?,
                handle: Snap::unsnap(r)?,
                mac_seq: r.u64()?,
            },
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

impl<M: Snap> Snap for Frame<M> {
    fn snap(&self, w: &mut SnapWriter) {
        self.src.snap(w);
        self.body.snap(w);
        w.put_u32(self.bytes);
        self.duration.snap(w);
        w.put_u32(self.refs);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Frame {
            src: Snap::unsnap(r)?,
            body: Snap::unsnap(r)?,
            bytes: r.u32()?,
            duration: Snap::unsnap(r)?,
            refs: r.u32()?,
        })
    }
}

// The slab is serialized structurally (slots, free list, generations) so
// restored `FrameId`s — which encode `(slot, generation)` and are referenced
// from the event queue — keep resolving to the same frames.
impl<M: Snap> Snap for FrameSlab<M> {
    fn snap(&self, w: &mut SnapWriter) {
        self.slots.snap(w);
        self.free.snap(w);
        self.gens.snap(w);
        w.put_usize(self.live);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FrameSlab {
            slots: Snap::unsnap(r)?,
            free: Snap::unsnap(r)?,
            gens: Snap::unsnap(r)?,
            live: r.usize()?,
        })
    }
}

fn encode(slot: u32, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

fn decode(id: u64) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(refs: u32) -> Frame<u32> {
        Frame {
            src: NodeId::new(0),
            body: FrameBody::Data {
                dst: None,
                msg: Arc::new(7),
                class: 0,
                handle: TxHandle(1),
                mac_seq: 0,
            },
            bytes: 100,
            duration: SimDuration::from_micros(400),
            refs,
        }
    }

    #[test]
    fn insert_get_release() {
        let mut slab = FrameSlab::new();
        let id = slab.insert(frame(2));
        assert!(slab.get(id).is_some());
        assert!(slab.release(id).is_none());
        assert_eq!(slab.live(), 1);
        let last = slab.release(id);
        assert!(last.is_some());
        assert_eq!(slab.live(), 0);
        assert!(slab.get(id).is_none());
    }

    #[test]
    fn stale_ids_do_not_alias_reused_slots() {
        let mut slab = FrameSlab::new();
        let a = slab.insert(frame(1));
        slab.release(a);
        let b = slab.insert(frame(1));
        // Slot is reused but generation differs.
        assert!(slab.get(a).is_none());
        assert!(slab.get(b).is_some());
        assert_ne!(a, b);
    }

    #[test]
    fn dst_of_bodies() {
        let f = frame(1);
        assert_eq!(f.dst(), None);
        let r: Frame<u32> = Frame {
            body: FrameBody::Rts {
                dst: NodeId::new(4),
                nav: SimDuration::ZERO,
            },
            ..frame(1)
        };
        assert_eq!(r.dst(), Some(NodeId::new(4)));
    }

    #[test]
    fn get_mut_allows_marking() {
        let mut slab = FrameSlab::new();
        let id = slab.insert(frame(1));
        if let Some(f) = slab.get_mut(id) {
            f.bytes = 200;
        }
        assert_eq!(slab.get(id).unwrap().bytes, 200);
    }
}
