//! IEEE 802.11 DCF MAC: parameters and per-node state.
//!
//! The distinction at the heart of the paper lives here: **unicast** data uses
//! carrier sense + backoff + (optionally) RTS/CTS, is acknowledged, and is
//! retransmitted on failure; **broadcast** data uses carrier sense + backoff
//! only — no RTS/CTS, no ACK, no retransmission — so each packet gets exactly
//! one chance on each link.
//!
//! The state-machine *driver* lives in [`crate::world`]; this module holds the
//! timing parameters, queue entries and state data, plus pure timing helpers
//! that are unit-tested in isolation.

use std::collections::{BTreeMap, VecDeque};

use crate::ids::{NodeId, TxHandle};
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// MAC-layer timing and policy parameters (802.11 DSSS defaults at 2 Mbps).
#[derive(Debug, Clone, PartialEq)]
pub struct MacParams {
    /// Slot time.
    pub slot: SimDuration,
    /// Short inter-frame space.
    pub sifs: SimDuration,
    /// DCF inter-frame space.
    pub difs: SimDuration,
    /// Minimum contention window (slots, as `CWmin`; backoff drawn from `[0, cw]`).
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// Data bit rate in bits/s (2 Mbps in the paper; also used for broadcast).
    pub data_rate_bps: f64,
    /// Basic rate for control frames (RTS/CTS/ACK) in bits/s.
    pub basic_rate_bps: f64,
    /// PLCP preamble + header time prepended to every frame.
    pub plcp_overhead: SimDuration,
    /// MAC header + FCS bytes added to each data payload.
    pub mac_header_bytes: u32,
    /// RTS frame size in bytes.
    pub rts_bytes: u32,
    /// CTS frame size in bytes.
    pub cts_bytes: u32,
    /// ACK frame size in bytes.
    pub ack_bytes: u32,
    /// Unicast payloads at or above this size use RTS/CTS.
    pub rts_threshold_bytes: u32,
    /// Station short retry limit (RTS and small frames).
    pub short_retry_limit: u32,
    /// Station long retry limit (data sent after RTS).
    pub long_retry_limit: u32,
    /// MAC transmit queue capacity (drop-tail).
    pub queue_cap: usize,
    /// Margin added to CTS/ACK timeouts to cover propagation.
    pub timeout_margin: SimDuration,
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams {
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            cw_min: 31,
            cw_max: 1023,
            data_rate_bps: 2.0e6,
            basic_rate_bps: 1.0e6,
            plcp_overhead: SimDuration::from_micros(192),
            mac_header_bytes: 28,
            rts_bytes: 20,
            cts_bytes: 14,
            ack_bytes: 14,
            rts_threshold_bytes: 256,
            short_retry_limit: 7,
            long_retry_limit: 4,
            queue_cap: 50,
            timeout_margin: SimDuration::from_micros(10),
        }
    }
}

impl MacParams {
    /// Airtime of a data frame with the given *payload* size (MAC header and
    /// PLCP overhead added here).
    pub fn data_airtime(&self, payload_bytes: u32) -> SimDuration {
        let bits = ((payload_bytes + self.mac_header_bytes) as f64) * 8.0;
        self.plcp_overhead + SimDuration::from_secs_f64(bits / self.data_rate_bps)
    }

    /// Airtime of a control frame of `bytes` total size at the basic rate.
    pub fn ctrl_airtime(&self, bytes: u32) -> SimDuration {
        self.plcp_overhead + SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.basic_rate_bps)
    }

    /// How long a sender waits for a CTS after finishing its RTS.
    pub fn cts_timeout(&self) -> SimDuration {
        self.sifs + self.ctrl_airtime(self.cts_bytes) + self.timeout_margin
    }

    /// How long a sender waits for an ACK after finishing a data frame.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.ctrl_airtime(self.ack_bytes) + self.timeout_margin
    }

    /// NAV carried in an RTS: covers CTS + DATA + ACK and their SIFS gaps.
    pub fn rts_nav(&self, payload_bytes: u32) -> SimDuration {
        self.sifs
            + self.ctrl_airtime(self.cts_bytes)
            + self.sifs
            + self.data_airtime(payload_bytes)
            + self.sifs
            + self.ctrl_airtime(self.ack_bytes)
    }

    /// NAV carried in a CTS: covers DATA + ACK.
    pub fn cts_nav(&self, payload_bytes: u32) -> SimDuration {
        self.sifs + self.data_airtime(payload_bytes) + self.sifs + self.ctrl_airtime(self.ack_bytes)
    }

    /// The next contention window after a failed attempt.
    pub fn next_cw(&self, cw: u32) -> u32 {
        ((cw << 1) | 1).min(self.cw_max)
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the contention windows are misordered, a rate is
    /// non-positive, or the queue capacity is zero.
    pub fn validate(&self) {
        assert!(self.cw_min <= self.cw_max, "cw_min must not exceed cw_max");
        assert!(
            self.data_rate_bps > 0.0 && self.basic_rate_bps > 0.0,
            "bit rates must be positive"
        );
        assert!(self.queue_cap > 0, "queue capacity must be positive");
        assert!(
            self.sifs < self.difs,
            "SIFS must be shorter than DIFS (priority inversion otherwise)"
        );
    }
}

/// A queued outgoing data frame.
#[derive(Debug, Clone)]
pub(crate) struct OutFrame<M> {
    /// `None` = link-layer broadcast.
    pub dst: Option<NodeId>,
    /// Shared with every in-flight copy of this frame (retries included).
    pub msg: std::sync::Arc<M>,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Protocol-defined traffic class for accounting.
    pub class: u8,
    pub handle: TxHandle,
    /// MAC sequence number (stable across retries).
    pub mac_seq: u64,
}

/// DCF state machine states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MacState {
    /// Nothing to send.
    Idle,
    /// Head frame waiting for the channel to go idle.
    WaitChannel,
    /// Sensing DIFS before backoff/transmit.
    Difs,
    /// Counting down backoff slots; `slot_start` is when counting (re)began.
    Backoff { slot_start: SimTime },
    /// Transmitting the head data frame.
    TxData,
    /// Transmitting an RTS.
    TxRts,
    /// RTS sent, waiting for CTS.
    WaitCts,
    /// CTS received; SIFS gap before sending data.
    SifsBeforeData,
    /// Unicast data sent, waiting for ACK.
    WaitAck,
}

/// A SIFS-spaced control response owed to a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtrlResponse {
    /// Send a CTS to `dst`; `nav` is embedded for overhearers. `payload`
    /// is the expected data size (to compute our own NAV bookkeeping).
    Cts { dst: NodeId, nav: SimDuration },
    /// Send an ACK to `dst`.
    Ack { dst: NodeId },
}

/// Per-node MAC state.
#[derive(Debug)]
pub(crate) struct Mac<M> {
    pub state: MacState,
    pub queue: VecDeque<OutFrame<M>>,
    /// Current contention window.
    pub cw: u32,
    /// Remaining backoff slots for the head frame (drawn once per attempt,
    /// decremented when the channel interrupts the countdown).
    pub backoff_slots: u32,
    pub short_retries: u32,
    pub long_retries: u32,
    /// Generation for `MacTimer` events; stale timers are ignored.
    pub timer_gen: u64,
    /// Generation for `CtrlTimer` events.
    pub ctrl_gen: u64,
    /// Pending SIFS-spaced response.
    pub pending_ctrl: Option<CtrlResponse>,
    /// Receive-side duplicate detection for unicast data: last MAC seq
    /// accepted from each source. A `BTreeMap` so snapshots can serialize
    /// it in canonical key order (mesh-lint R1 forbids `HashMap` iteration).
    pub rx_dedup: BTreeMap<NodeId, u64>,
}

impl<M> Default for Mac<M> {
    fn default() -> Self {
        Mac {
            state: MacState::Idle,
            queue: VecDeque::new(),
            cw: 0, // set from params on first use
            backoff_slots: 0,
            short_retries: 0,
            long_retries: 0,
            timer_gen: 0,
            ctrl_gen: 0,
            pending_ctrl: None,
            rx_dedup: BTreeMap::new(),
        }
    }
}

impl<M> Mac<M> {
    /// Invalidate any outstanding MAC timer and return the new generation.
    pub fn bump_timer(&mut self) -> u64 {
        self.timer_gen += 1;
        self.timer_gen
    }

    /// Invalidate any outstanding control timer and return the new generation.
    pub fn bump_ctrl(&mut self) -> u64 {
        self.ctrl_gen += 1;
        self.ctrl_gen
    }

    /// Reset per-frame retry state after success or abandonment.
    pub fn reset_contention(&mut self, cw_min: u32) {
        self.cw = cw_min;
        self.short_retries = 0;
        self.long_retries = 0;
    }
}

impl<M: Snap> Snap for OutFrame<M> {
    fn snap(&self, w: &mut SnapWriter) {
        self.dst.snap(w);
        self.msg.snap(w);
        w.put_u32(self.bytes);
        w.put_u8(self.class);
        self.handle.snap(w);
        w.put_u64(self.mac_seq);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(OutFrame {
            dst: Snap::unsnap(r)?,
            msg: Snap::unsnap(r)?,
            bytes: r.u32()?,
            class: r.u8()?,
            handle: Snap::unsnap(r)?,
            mac_seq: r.u64()?,
        })
    }
}

impl Snap for MacState {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            MacState::Idle => w.put_u8(0),
            MacState::WaitChannel => w.put_u8(1),
            MacState::Difs => w.put_u8(2),
            MacState::Backoff { slot_start } => {
                w.put_u8(3);
                slot_start.snap(w);
            }
            MacState::TxData => w.put_u8(4),
            MacState::TxRts => w.put_u8(5),
            MacState::WaitCts => w.put_u8(6),
            MacState::SifsBeforeData => w.put_u8(7),
            MacState::WaitAck => w.put_u8(8),
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => MacState::Idle,
            1 => MacState::WaitChannel,
            2 => MacState::Difs,
            3 => MacState::Backoff {
                slot_start: Snap::unsnap(r)?,
            },
            4 => MacState::TxData,
            5 => MacState::TxRts,
            6 => MacState::WaitCts,
            7 => MacState::SifsBeforeData,
            8 => MacState::WaitAck,
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

impl Snap for CtrlResponse {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            CtrlResponse::Cts { dst, nav } => {
                w.put_u8(0);
                dst.snap(w);
                nav.snap(w);
            }
            CtrlResponse::Ack { dst } => {
                w.put_u8(1);
                dst.snap(w);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => CtrlResponse::Cts {
                dst: Snap::unsnap(r)?,
                nav: Snap::unsnap(r)?,
            },
            1 => CtrlResponse::Ack {
                dst: Snap::unsnap(r)?,
            },
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

impl<M: Snap> Snap for Mac<M> {
    fn snap(&self, w: &mut SnapWriter) {
        self.state.snap(w);
        self.queue.snap(w);
        w.put_u32(self.cw);
        w.put_u32(self.backoff_slots);
        w.put_u32(self.short_retries);
        w.put_u32(self.long_retries);
        w.put_u64(self.timer_gen);
        w.put_u64(self.ctrl_gen);
        self.pending_ctrl.snap(w);
        self.rx_dedup.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Mac {
            state: Snap::unsnap(r)?,
            queue: Snap::unsnap(r)?,
            cw: r.u32()?,
            backoff_slots: r.u32()?,
            short_retries: r.u32()?,
            long_retries: r.u32()?,
            timer_gen: r.u64()?,
            ctrl_gen: r.u64()?,
            pending_ctrl: Snap::unsnap(r)?,
            rx_dedup: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_airtime_matches_hand_calc() {
        let p = MacParams::default();
        // 512B payload + 28B header = 540B = 4320 bits at 2 Mbps = 2160 us,
        // plus 192 us PLCP.
        let t = p.data_airtime(512);
        assert_eq!(t, SimDuration::from_micros(2160 + 192));
    }

    #[test]
    fn ctrl_airtime_uses_basic_rate() {
        let p = MacParams::default();
        // 14 bytes = 112 bits at 1 Mbps = 112 us + 192 us.
        assert_eq!(p.ctrl_airtime(14), SimDuration::from_micros(112 + 192));
    }

    #[test]
    fn cw_doubles_to_max() {
        let p = MacParams::default();
        let mut cw = p.cw_min;
        let mut seen = vec![cw];
        for _ in 0..8 {
            cw = p.next_cw(cw);
            seen.push(cw);
        }
        assert_eq!(seen[..6], [31, 63, 127, 255, 511, 1023]);
        assert_eq!(*seen.last().unwrap(), p.cw_max);
    }

    #[test]
    fn nav_covers_full_exchange() {
        let p = MacParams::default();
        let rts_nav = p.rts_nav(512);
        let cts_nav = p.cts_nav(512);
        assert!(rts_nav > cts_nav);
        assert_eq!(rts_nav, p.sifs + p.ctrl_airtime(p.cts_bytes) + cts_nav);
    }

    #[test]
    fn timeouts_exceed_sifs_plus_ctrl() {
        let p = MacParams::default();
        assert!(p.cts_timeout() > p.sifs + p.ctrl_airtime(p.cts_bytes));
        assert!(p.ack_timeout() > p.sifs + p.ctrl_airtime(p.ack_bytes));
    }

    #[test]
    fn default_params_validate() {
        MacParams::default().validate();
    }

    #[test]
    #[should_panic(expected = "cw_min")]
    fn misordered_cw_rejected() {
        MacParams {
            cw_min: 100,
            cw_max: 50,
            ..MacParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_queue_rejected() {
        MacParams {
            queue_cap: 0,
            ..MacParams::default()
        }
        .validate();
    }

    #[test]
    fn generations_invalidate() {
        let mut m: Mac<u8> = Mac::default();
        let g1 = m.bump_timer();
        let g2 = m.bump_timer();
        assert!(g2 > g1);
        let c1 = m.bump_ctrl();
        assert_eq!(c1, 1);
    }

    #[test]
    fn reset_contention_clears_retries() {
        let mut m: Mac<u8> = Mac {
            cw: 255,
            short_retries: 3,
            long_retries: 2,
            ..Mac::default()
        };
        m.reset_contention(31);
        assert_eq!((m.cw, m.short_retries, m.long_retries), (31, 0, 0));
    }
}
