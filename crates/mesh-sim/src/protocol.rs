//! The protocol trait implemented by network-layer code running on each node.

use crate::ids::{NodeId, TimerId, TxHandle};
use crate::time::SimTime;
use crate::world::Ctx;

/// Metadata attached to a received message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxMeta {
    /// Arrival time (end of the frame).
    pub at: SimTime,
    /// Received power in watts.
    pub power_w: f64,
}

/// Final outcome of a transmission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Frame left the radio successfully (for unicast: ACKed).
    Sent,
    /// Unicast abandoned after exhausting MAC retries.
    Failed {
        /// Total retry attempts made.
        retries: u32,
    },
}

impl TxOutcome {
    /// Whether the transmission succeeded.
    pub fn is_sent(self) -> bool {
        matches!(self, TxOutcome::Sent)
    }
}

/// A network-layer protocol instance, one per node.
///
/// All interaction with the simulated world happens through the [`Ctx`]
/// passed to each callback. Implementations should be deterministic given
/// the RNG stream offered by the context.
///
/// # Examples
///
/// A protocol that floods a single message once and counts deliveries:
///
/// ```
/// use mesh_sim::prelude::*;
///
/// struct Flood { origin: bool, got: u32 }
///
/// impl Protocol for Flood {
///     type Msg = u64;
///     fn start(&mut self, ctx: &mut Ctx<'_, u64>) {
///         if self.origin {
///             ctx.send_broadcast(7, 64, 0).expect("queue empty at start");
///         }
///     }
///     fn handle_message(&mut self, _ctx: &mut Ctx<'_, u64>, _src: NodeId,
///                       _msg: &u64, _meta: RxMeta) {
///         self.got += 1;
///     }
///     fn handle_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _timer: TimerId, _kind: u64) {}
/// }
/// ```
pub trait Protocol: Sized {
    /// The message type this protocol exchanges.
    type Msg: Clone + std::fmt::Debug;

    /// Called once at simulation start (time zero), in node-id order.
    fn start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// A message was received (link-layer broadcast heard, or unicast
    /// addressed to this node).
    fn handle_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg>,
        src: NodeId,
        msg: &Self::Msg,
        meta: RxMeta,
    );

    /// A timer armed via [`Ctx::set_timer`] fired.
    fn handle_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, timer: TimerId, kind: u64);

    /// A transmission queued earlier completed (default: ignored).
    fn handle_tx_complete(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg>,
        handle: TxHandle,
        outcome: TxOutcome,
    ) {
        let _ = (ctx, handle, outcome);
    }

    /// The node rebooted after a fault-injected crash (see [`crate::fault`]).
    ///
    /// While the node was down its MAC queue was purged, timers were
    /// swallowed (not deferred), and nothing was received. Implementations
    /// should discard volatile protocol state and re-arm their periodic
    /// timers here, as in [`Protocol::start`]. The default does nothing,
    /// which leaves the node silent after recovery — fine for protocols that
    /// are never run under fault injection.
    fn handle_restart(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }
}
