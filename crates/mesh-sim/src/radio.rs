//! Per-node radio reception state.
//!
//! Implements the classic threshold/capture reception model: a frame is
//! decodable if its power exceeds the receive threshold and it is not
//! destroyed by a collision; any energy above the carrier-sense threshold
//! makes the channel busy. The radio is half-duplex.

use crate::ids::FrameId;
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;

/// A reception in progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OngoingRx {
    pub frame: FrameId,
    pub power_w: f64,
    pub end: SimTime,
    pub corrupted: bool,
}

/// The outcome of an arrival at a radio, used for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArrivalOutcome {
    /// Started decoding this frame.
    StartedRx,
    /// Captured the receiver away from a weaker frame (which is lost).
    CapturedOver,
    /// Arrived while a stronger frame was being received; interference only.
    LostToStronger,
    /// Collided: both this frame and the one being received are lost.
    Collision,
    /// Power below the receive threshold; channel busy only.
    BelowRxThreshold,
    /// The radio was transmitting; the arrival is unreceivable.
    WhileTx,
}

/// Half-duplex radio with threshold-based reception and power capture.
#[derive(Debug, Clone, Default)]
pub(crate) struct Radio {
    /// End of our own transmission, if transmitting.
    pub tx_until: Option<SimTime>,
    /// Frame currently being decoded.
    pub rx: Option<OngoingRx>,
    /// Latest end time of any energy heard (incl. undecodable arrivals).
    pub energy_until: SimTime,
    /// Virtual carrier sense (NAV) from overheard RTS/CTS.
    pub nav_until: SimTime,
}

impl Radio {
    /// Whether the physical channel is sensed busy at `now` (energy or own
    /// TX/RX; NAV excluded — see [`Radio::busy_with_nav`]).
    pub fn physically_busy(&self, now: SimTime) -> bool {
        self.tx_until.is_some() || self.rx.is_some() || now < self.energy_until
    }

    /// Physical *or* virtual (NAV) carrier sense.
    pub fn busy_with_nav(&self, now: SimTime) -> bool {
        self.physically_busy(now) || now < self.nav_until
    }

    /// The future instant when currently-known busy conditions lapse, if the
    /// radio is busy only due to time-based conditions (energy/NAV). Returns
    /// `None` if idle now or if an ongoing TX/RX will generate its own event.
    pub fn busy_horizon(&self, now: SimTime) -> Option<SimTime> {
        if self.tx_until.is_some() || self.rx.is_some() {
            return None;
        }
        let t = self.energy_until.max(self.nav_until);
        if t > now {
            Some(t)
        } else {
            None
        }
    }

    /// Begin transmitting until `end`. Any reception in progress is aborted
    /// (half-duplex).
    pub fn start_tx(&mut self, end: SimTime) {
        debug_assert!(self.tx_until.is_none(), "radio already transmitting");
        self.rx = None;
        self.tx_until = Some(end);
    }

    /// Our transmission finished.
    pub fn end_tx(&mut self) {
        debug_assert!(self.tx_until.is_some());
        self.tx_until = None;
    }

    /// Process the start of an arrival with the given power.
    ///
    /// `rx_thresh` and `capture_ratio` come from the PHY parameters.
    pub fn arrival(
        &mut self,
        frame: FrameId,
        power_w: f64,
        end: SimTime,
        rx_thresh: f64,
        capture_ratio: f64,
    ) -> ArrivalOutcome {
        self.energy_until = self.energy_until.max(end);

        if self.tx_until.is_some() {
            return ArrivalOutcome::WhileTx;
        }
        if power_w < rx_thresh {
            // Not decodable, but strong interference can still corrupt an
            // ongoing reception if the desired frame lacks capture margin.
            if let Some(rx) = &mut self.rx {
                if rx.power_w < capture_ratio * power_w {
                    rx.corrupted = true;
                }
            }
            return ArrivalOutcome::BelowRxThreshold;
        }
        match &mut self.rx {
            None => {
                self.rx = Some(OngoingRx {
                    frame,
                    power_w,
                    end,
                    corrupted: false,
                });
                ArrivalOutcome::StartedRx
            }
            Some(cur) => {
                if power_w >= capture_ratio * cur.power_w {
                    // New frame captures the receiver; the old one is lost.
                    self.rx = Some(OngoingRx {
                        frame,
                        power_w,
                        end,
                        corrupted: false,
                    });
                    ArrivalOutcome::CapturedOver
                } else if cur.power_w >= capture_ratio * power_w {
                    ArrivalOutcome::LostToStronger
                } else {
                    cur.corrupted = true;
                    ArrivalOutcome::Collision
                }
            }
        }
    }

    /// Process the end of an arrival. Returns the completed reception if this
    /// frame was the one being decoded (caller checks `corrupted`).
    pub fn arrival_end(&mut self, frame: FrameId) -> Option<OngoingRx> {
        if self.rx.is_some_and(|rx| rx.frame == frame) {
            self.rx.take()
        } else {
            None
        }
    }
}

impl Snap for OngoingRx {
    fn snap(&self, w: &mut SnapWriter) {
        self.frame.snap(w);
        w.put_f64(self.power_w);
        self.end.snap(w);
        w.put_bool(self.corrupted);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(OngoingRx {
            frame: Snap::unsnap(r)?,
            power_w: r.f64()?,
            end: Snap::unsnap(r)?,
            corrupted: r.bool()?,
        })
    }
}

impl Snap for Radio {
    fn snap(&self, w: &mut SnapWriter) {
        self.tx_until.snap(w);
        self.rx.snap(w);
        self.energy_until.snap(w);
        self.nav_until.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Radio {
            tx_until: Snap::unsnap(r)?,
            rx: Snap::unsnap(r)?,
            energy_until: Snap::unsnap(r)?,
            nav_until: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RX: f64 = 1e-9;
    const CAP: f64 = 10.0;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn clean_reception() {
        let mut r = Radio::default();
        let out = r.arrival(FrameId(1), 2e-9, t(100), RX, CAP);
        assert_eq!(out, ArrivalOutcome::StartedRx);
        let done = r.arrival_end(FrameId(1)).unwrap();
        assert!(!done.corrupted);
        assert!(r.rx.is_none());
    }

    #[test]
    fn below_threshold_only_busies_channel() {
        let mut r = Radio::default();
        let out = r.arrival(FrameId(1), 1e-11, t(100), RX, CAP);
        assert_eq!(out, ArrivalOutcome::BelowRxThreshold);
        assert!(r.rx.is_none());
        assert!(r.physically_busy(t(50)));
        assert!(!r.physically_busy(t(100)));
    }

    #[test]
    fn collision_corrupts_both() {
        let mut r = Radio::default();
        r.arrival(FrameId(1), 2e-9, t(100), RX, CAP);
        let out = r.arrival(FrameId(2), 3e-9, t(120), RX, CAP);
        assert_eq!(out, ArrivalOutcome::Collision);
        let done = r.arrival_end(FrameId(1)).unwrap();
        assert!(done.corrupted);
        // Frame 2 was never "the" reception.
        assert!(r.arrival_end(FrameId(2)).is_none());
    }

    #[test]
    fn capture_by_much_stronger_frame() {
        let mut r = Radio::default();
        r.arrival(FrameId(1), 1e-9, t(100), RX, CAP);
        let out = r.arrival(FrameId(2), 2e-8, t(120), RX, CAP);
        assert_eq!(out, ArrivalOutcome::CapturedOver);
        assert!(r.arrival_end(FrameId(1)).is_none());
        let done = r.arrival_end(FrameId(2)).unwrap();
        assert!(!done.corrupted);
    }

    #[test]
    fn weaker_frame_lost_to_stronger_ongoing() {
        let mut r = Radio::default();
        r.arrival(FrameId(1), 2e-8, t(100), RX, CAP);
        let out = r.arrival(FrameId(2), 1e-9, t(120), RX, CAP);
        assert_eq!(out, ArrivalOutcome::LostToStronger);
        let done = r.arrival_end(FrameId(1)).unwrap();
        assert!(!done.corrupted);
    }

    #[test]
    fn strong_subthreshold_interference_corrupts() {
        let mut r = Radio::default();
        r.arrival(FrameId(1), 1.5e-9, t(100), RX, CAP);
        // 0.5e-9 < RX threshold but 1.5e-9 < 10 * 0.5e-9, so no capture margin.
        let out = r.arrival(FrameId(2), 0.5e-9, t(120), RX, CAP);
        assert_eq!(out, ArrivalOutcome::BelowRxThreshold);
        assert!(r.arrival_end(FrameId(1)).unwrap().corrupted);
    }

    #[test]
    fn arrivals_during_tx_are_lost() {
        let mut r = Radio::default();
        r.start_tx(t(500));
        let out = r.arrival(FrameId(1), 1e-6, t(100), RX, CAP);
        assert_eq!(out, ArrivalOutcome::WhileTx);
        assert!(r.arrival_end(FrameId(1)).is_none());
        r.end_tx();
        assert!(!r.physically_busy(t(200)));
    }

    #[test]
    fn starting_tx_aborts_rx() {
        let mut r = Radio::default();
        r.arrival(FrameId(1), 2e-9, t(100), RX, CAP);
        r.start_tx(t(300));
        assert!(r.arrival_end(FrameId(1)).is_none());
    }

    #[test]
    fn busy_horizon_reports_energy_and_nav() {
        let mut r = Radio::default();
        assert_eq!(r.busy_horizon(t(0)), None);
        r.arrival(FrameId(1), 1e-11, t(100), RX, CAP); // below RX: energy only
        assert_eq!(r.busy_horizon(t(0)), Some(t(100)));
        r.nav_until = t(200);
        assert_eq!(r.busy_horizon(t(0)), Some(t(200)));
        assert_eq!(r.busy_horizon(t(250)), None);
    }

    #[test]
    fn nav_affects_only_virtual_sense() {
        let r = Radio {
            nav_until: t(100),
            ..Radio::default()
        };
        assert!(!r.physically_busy(t(10)));
        assert!(r.busy_with_nav(t(10)));
        assert!(!r.busy_with_nav(t(100)));
    }
}
