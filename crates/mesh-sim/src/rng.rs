//! Deterministic random number generation.
//!
//! Every run of the simulator is a pure function of `(configuration, seed)`.
//! All stochastic decisions — placement, fading, backoff, jitter — draw from a
//! single [`SimRng`] in event order, so two runs with the same seed produce
//! identical traces.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulator's random number generator.
///
/// A thin wrapper over a seeded [`SmallRng`] with helpers for the
/// distributions the simulator needs.
///
/// ```
/// use mesh_sim::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator; used to give sub-systems
    /// (placement vs. traffic vs. channel) their own deterministic streams.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream label in so forks with different labels diverge even
        // when created back to back.
        let seed = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(seed)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        if lo == hi {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform_u32(&mut self, n: u32) -> u32 {
        assert!(n > 0, "empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Unit-mean exponential sample, the power gain of a Rayleigh-faded link.
    pub fn rayleigh_power_gain(&mut self) -> f64 {
        let d: f64 = rand_distr::Exp1.sample_from(&mut self.inner);
        d
    }

    /// Zero-mean normal sample with standard deviation `sigma_db` (used for
    /// optional log-normal shadowing, in dB).
    pub fn normal_db(&mut self, sigma_db: f64) -> f64 {
        if sigma_db <= 0.0 {
            return 0.0;
        }
        let n: f64 = rand_distr::StandardNormal.sample_from(&mut self.inner);
        n * sigma_db
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// Extension to sample a `rand_distr` distribution from any RNG without the
/// caller importing the `Distribution` trait.
trait SampleFrom<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T, D: rand_distr::Distribution<T>> SampleFrom<T> for D {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut root1 = SimRng::seed_from(99);
        let mut root2 = SimRng::seed_from(99);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut root3 = SimRng::seed_from(99);
        let mut g = root3.fork(2);
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform_range(4.0, 4.0), 4.0);
    }

    #[test]
    fn chance_edges() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = SimRng::seed_from(5);
        let hits = (0..20_000).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn rayleigh_gain_unit_mean() {
        let mut rng = SimRng::seed_from(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.rayleigh_power_gain()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn normal_db_zero_sigma_is_zero() {
        let mut rng = SimRng::seed_from(8);
        assert_eq!(rng.normal_db(0.0), 0.0);
    }
}
