//! Deterministic random number generation.
//!
//! Every run of the simulator is a pure function of `(configuration, seed)`.
//! All stochastic decisions — placement, fading, backoff, jitter — draw from a
//! single [`SimRng`] in event order, so two runs with the same seed produce
//! identical traces.
//!
//! The generator is a self-contained xoshiro256++ (seeded via SplitMix64), so
//! the simulator has no external RNG dependency and its streams are stable
//! across toolchains and crate upgrades.

/// The simulator's random number generator.
///
/// A small, fast xoshiro256++ generator with helpers for the distributions
/// the simulator needs.
///
/// ```
/// use mesh_sim::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator; used to give sub-systems
    /// (placement vs. traffic vs. channel) their own deterministic streams.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream label in so forks with different labels diverge even
        // when created back to back.
        let seed = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(seed)
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        if lo == hi {
            lo
        } else {
            // Rounding can push `lo + u*(hi-lo)` onto `hi`; keep it exclusive.
            let x = lo + self.uniform() * (hi - lo);
            if x < hi {
                x
            } else {
                hi - (hi - lo) * f64::EPSILON
            }
        }
    }

    /// Uniform integer in `[0, n)` (Lemire's unbiased method).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform_u32(&mut self, n: u32) -> u32 {
        assert!(n > 0, "empty range");
        let mut m = u64::from(self.next_u32()) * u64::from(n);
        let mut low = m as u32;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                m = u64::from(self.next_u32()) * u64::from(n);
                low = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Unit-mean exponential sample, the power gain of a Rayleigh-faded link.
    pub fn rayleigh_power_gain(&mut self) -> f64 {
        // Inverse CDF; `1 - uniform()` is in (0, 1], so the log is finite.
        -(1.0 - self.uniform()).ln()
    }

    /// Zero-mean normal sample with standard deviation `sigma_db` (used for
    /// optional log-normal shadowing, in dB).
    pub fn normal_db(&mut self, sigma_db: f64) -> f64 {
        if sigma_db <= 0.0 {
            return 0.0;
        }
        // Box-Muller; `1 - uniform()` keeps the log argument in (0, 1].
        let r = (-2.0 * (1.0 - self.uniform()).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * self.uniform();
        r * theta.cos() * sigma_db
    }
}

impl crate::snapshot::Snap for SimRng {
    fn snap(&self, w: &mut crate::snapshot::SnapWriter) {
        for word in self.s {
            w.put_u64(word);
        }
    }

    fn unsnap(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Self, crate::snapshot::SnapError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        Ok(SimRng { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut root1 = SimRng::seed_from(99);
        let mut root2 = SimRng::seed_from(99);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut root3 = SimRng::seed_from(99);
        let mut g = root3.fork(2);
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform_range(4.0, 4.0), 4.0);
    }

    #[test]
    fn uniform_u32_covers_and_bounds() {
        let mut rng = SimRng::seed_from(10);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = rng.uniform_u32(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn chance_edges() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = SimRng::seed_from(5);
        let hits = (0..20_000).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn rayleigh_gain_unit_mean() {
        let mut rng = SimRng::seed_from(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.rayleigh_power_gain()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn normal_db_zero_sigma_is_zero() {
        let mut rng = SimRng::seed_from(8);
        assert_eq!(rng.normal_db(0.0), 0.0);
    }

    #[test]
    fn normal_db_moments() {
        let mut rng = SimRng::seed_from(12);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal_db(6.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.1, "sd={}", var.sqrt());
    }
}
