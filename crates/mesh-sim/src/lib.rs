//! # mesh-sim — a deterministic wireless mesh network simulator
//!
//! This crate is the simulation substrate for the reproduction of
//! *"High-Throughput Multicast Routing Metrics in Wireless Mesh Networks"*
//! (ICDCS 2006). It provides what the paper obtained from GloMoSim:
//!
//! * a **discrete-event engine** with deterministic, seeded randomness
//!   ([`simulator::Simulator`], [`world::World`]);
//! * **radio propagation**: Friis and TwoRay ground-reflection path loss with
//!   Rayleigh/Ricean fading and optional log-normal shadowing
//!   ([`propagation`]), or fully custom media via the [`medium::Medium`]
//!   trait (the `testbed` crate uses this for trace-driven link loss);
//! * a **threshold/capture PHY** reception model (the `radio` module);
//! * an **802.11 DCF MAC** ([`mac`]) in which — crucially for the paper —
//!   *unicast* frames get RTS/CTS, ACKs and retransmissions while *broadcast*
//!   frames get carrier sense and backoff only, one attempt per link;
//! * **topology generators** matching the paper's setup ([`topology`]).
//!
//! Protocols implement [`protocol::Protocol`] and drive the world through
//! [`world::Ctx`]. See the `odmrp` crate for a full multicast protocol built
//! on this interface.
//!
//! ## Example
//!
//! A two-node network where node 0 broadcasts one message:
//!
//! ```
//! use mesh_sim::prelude::*;
//!
//! #[derive(Default)]
//! struct Hello { received: u32 }
//!
//! impl Protocol for Hello {
//!     type Msg = &'static str;
//!     fn start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
//!         if ctx.node().index() == 0 {
//!             ctx.send_broadcast("hello", 64, 0).expect("queue empty");
//!         }
//!     }
//!     fn handle_message(&mut self, _ctx: &mut Ctx<'_, &'static str>,
//!                       _src: NodeId, _msg: &&'static str, _meta: RxMeta) {
//!         self.received += 1;
//!     }
//!     fn handle_timer(&mut self, _: &mut Ctx<'_, &'static str>, _: TimerId, _: u64) {}
//! }
//!
//! // Disable fading so the outcome is deterministic for the doctest.
//! let phy = PhyParams { fading: FadingModel::None, ..PhyParams::default() };
//! let medium = Box::new(PhysicalMedium::new(phy));
//! let positions = vec![Pos::new(0.0, 0.0), Pos::new(100.0, 0.0)];
//! let mut sim = Simulator::new(positions, medium, WorldConfig::default(),
//!                              vec![Hello::default(), Hello::default()]);
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.protocols()[1].received, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counters;
mod event;
pub mod fault;
mod frame;
pub mod geometry;
pub mod ids;
pub mod invariants;
pub mod mac;
pub mod medium;
pub mod metrics;
pub mod mobility;
pub mod neighbor_index;
pub mod propagation;
pub mod protocol;
mod radio;
pub mod rng;
pub mod simulator;
pub mod snapshot;
pub mod time;
pub mod topology;
pub mod trace;
pub mod world;

/// Convenient re-exports of the items most users need.
pub mod prelude {
    pub use crate::counters::Counters;
    pub use crate::fault::{FaultKind, FaultPlan, RandomFaultConfig};
    pub use crate::geometry::{Area, Pos};
    pub use crate::ids::{GroupId, NodeId, TimerId, TxHandle};
    pub use crate::invariants::Violation;
    pub use crate::mac::MacParams;
    pub use crate::medium::{LinkEffect, LinkTableMedium, Medium, PhysicalMedium, RxPlan};
    pub use crate::metrics::{MetricsBucket, TimeSeries};
    pub use crate::neighbor_index::NeighborIndex;
    pub use crate::propagation::{FadingModel, PathLossModel, PhyParams};
    pub use crate::protocol::{Protocol, RxMeta, TxOutcome};
    pub use crate::rng::SimRng;
    pub use crate::simulator::{Simulator, WatchdogBudget};
    pub use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter, SnapshotState};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Decision, DropReason, JsonlTrace, RingTrace, TraceEvent, TraceSink};
    pub use crate::world::{Ctx, SendError, World, WorldConfig};
}
