//! Identifier newtypes used throughout the simulator.

use std::fmt;

/// Identifier of a node in the simulated network.
///
/// Node ids are dense indices assigned in creation order, so they double as
/// indices into per-node arrays.
///
/// ```
/// use mesh_sim::ids::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Create a node id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a frame in flight on the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub(crate) u64);

impl FrameId {
    /// The raw value; exposed for tracing and debugging.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Handle identifying an outgoing transmission request, echoed back to the
/// protocol in [`crate::protocol::Protocol::handle_tx_complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxHandle(pub u64);

impl fmt::Display for TxHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// Identifier of a protocol timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a multicast group (carried opaquely by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(17);
        assert_eq!(n.index(), 17);
        assert_eq!(n.as_u32(), 17);
        assert_eq!(n.to_string(), "n17");
    }

    #[test]
    fn display_forms_nonempty() {
        assert_eq!(FrameId(4).to_string(), "f4");
        assert_eq!(TxHandle(9).to_string(), "tx9");
        assert_eq!(TimerId(2).to_string(), "t2");
        assert_eq!(GroupId(1).to_string(), "g1");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(FrameId(1) < FrameId(2));
    }
}
