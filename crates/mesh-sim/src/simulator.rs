//! The top-level simulator: owns the world and the protocol instances and
//! routes upcalls between them.

use crate::counters::Counters;
use crate::fault::FaultPlan;
use crate::geometry::Pos;
use crate::medium::Medium;
use crate::protocol::Protocol;
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter, SnapshotState};
use crate::time::{SimDuration, SimTime};
use crate::world::{Ctx, Upcall, World, WorldConfig};

/// Periodic checkpoint consumer for [`Simulator::checkpoint_every`]: receives
/// the simulated time a checkpoint was taken at plus its serialized bytes.
pub type CheckpointSink = Box<dyn FnMut(SimTime, Vec<u8>) + Send>;

/// A protocol-level invariant oracle: inspects the world and the protocol
/// instances at a checkpoint and returns a message per violation.
pub type Oracle<P> = Box<dyn FnMut(&World<<P as Protocol>::Msg>, &[P]) -> Vec<String> + Send>;

/// Stable prefix of the panic message raised by the sim-time watchdog, so
/// supervisors (`run_matrix_supervised`) can classify a livelock apart from
/// any other panic.
pub const WATCHDOG_PANIC_PREFIX: &str = "sim-time watchdog: ";

/// Livelock budget for [`Simulator::set_watchdog`].
///
/// The watchdog is sim-time based (never wall-clock, per the replay
/// contract): a run is declared livelocked when more than `max_events`
/// events are dispatched while simulated time advances by less than
/// `min_progress`. A healthy protocol schedules bounded work per unit of
/// simulated time; a zero-delay timer loop or a send/ack storm does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogBudget {
    /// Events allowed per `min_progress` of simulated time.
    pub max_events: u64,
    /// The simulated-time quantum the budget applies to.
    pub min_progress: SimDuration,
}

/// The monomorphized checkpoint serializer [`Simulator::checkpoint_every`]
/// installs: `(sim, fingerprint) -> snapshot bytes`.
type CkptMake<P> = fn(&Simulator<P>, u64) -> Vec<u8>;

/// A complete simulation: world + one protocol instance per node.
///
/// # Examples
///
/// ```
/// use mesh_sim::prelude::*;
///
/// struct Quiet;
/// impl Protocol for Quiet {
///     type Msg = ();
///     fn start(&mut self, _ctx: &mut Ctx<'_, ()>) {}
///     fn handle_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &(), _: RxMeta) {}
///     fn handle_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerId, _: u64) {}
/// }
///
/// let positions = vec![Pos::new(0.0, 0.0), Pos::new(100.0, 0.0)];
/// let medium = Box::new(PhysicalMedium::default());
/// let mut sim = Simulator::new(positions, medium, WorldConfig::default(),
///                              vec![Quiet, Quiet]);
/// sim.run_until(SimTime::from_secs(1));
/// assert_eq!(sim.now(), SimTime::from_secs(1));
/// ```
pub struct Simulator<P: Protocol> {
    world: World<P::Msg>,
    protocols: Vec<P>,
    started: bool,
    upcall_buf: Vec<Upcall<P::Msg>>,
    /// How often the invariant oracles run; `None` disables checkpoints.
    check_interval: Option<SimDuration>,
    next_check: Option<SimTime>,
    oracles: Vec<Oracle<P>>,
    watchdog: Option<WatchdogBudget>,
    /// Start of the current watchdog window.
    wd_anchor: SimTime,
    /// Events dispatched since `wd_anchor`.
    wd_events: u64,
    /// Periodic-checkpoint cadence; `None` disables checkpointing.
    ckpt_every: Option<SimDuration>,
    /// When the next periodic checkpoint is due.
    next_ckpt: Option<SimTime>,
    /// Config fingerprint stamped into each emitted checkpoint header.
    ckpt_fingerprint: u64,
    /// Monomorphized serializer installed by [`Simulator::checkpoint_every`].
    /// Stored as a plain `fn` so `run_until` can emit checkpoints without
    /// `Snap`/`SnapshotState` bounds leaking onto every `Simulator` user.
    ckpt_make: Option<CkptMake<P>>,
    /// Where emitted checkpoints go.
    ckpt_sink: Option<CheckpointSink>,
}

impl<P: Protocol> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("world", &self.world)
            .field("nodes", &self.protocols.len())
            .field("started", &self.started)
            .finish()
    }
}

impl<P: Protocol> Simulator<P> {
    /// Create a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `positions` and `protocols` have different lengths.
    pub fn new(
        positions: Vec<Pos>,
        medium: Box<dyn Medium>,
        config: WorldConfig,
        protocols: Vec<P>,
    ) -> Self {
        assert_eq!(
            positions.len(),
            protocols.len(),
            "one protocol instance required per node"
        );
        Simulator {
            world: World::new(positions, medium, config),
            protocols,
            started: false,
            upcall_buf: Vec::new(),
            check_interval: None,
            next_check: None,
            oracles: Vec::new(),
            watchdog: None,
            wd_anchor: SimTime::ZERO,
            wd_events: 0,
            ckpt_every: None,
            next_ckpt: None,
            ckpt_fingerprint: 0,
            ckpt_make: None,
            ckpt_sink: None,
        }
    }

    /// Arm the sim-time watchdog (see [`WatchdogBudget`]). Exceeding the
    /// budget panics with a message starting with [`WATCHDOG_PANIC_PREFIX`].
    ///
    /// # Panics
    ///
    /// Panics if `min_progress` is zero or `max_events` is zero.
    pub fn set_watchdog(&mut self, budget: WatchdogBudget) {
        assert!(
            budget.min_progress.as_nanos() > 0,
            "watchdog quantum must be positive"
        );
        assert!(
            budget.max_events > 0,
            "watchdog event budget must be positive"
        );
        self.watchdog = Some(budget);
        self.wd_anchor = self.world.now();
        self.wd_events = 0;
    }

    /// Attach a deterministic fault plan (see [`crate::fault`]).
    ///
    /// # Panics
    ///
    /// Panics if a plan is already attached or a fault is scheduled in the
    /// past.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.world.set_fault_plan(plan);
    }

    /// Run the invariant oracles every `every` of simulated time (plus once
    /// at the end of each `run_until`). A violation panics with the full
    /// list of broken invariants.
    pub fn set_invariant_interval(&mut self, every: SimDuration) {
        assert!(every.as_nanos() > 0, "checkpoint interval must be positive");
        self.check_interval = Some(every);
        self.next_check = None;
    }

    /// Register an additional protocol-level oracle run at each checkpoint
    /// alongside the built-in world oracles.
    pub fn add_oracle(&mut self, oracle: Oracle<P>) {
        self.oracles.push(oracle);
    }

    /// Run the world oracles plus registered protocol oracles once.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn check_invariants(&mut self) {
        let mut msgs: Vec<String> = self
            .world
            .check_invariants()
            .iter()
            .map(|v| v.to_string())
            .collect();
        let world = &self.world;
        let protocols = &self.protocols;
        for oracle in &mut self.oracles {
            msgs.extend(oracle(world, protocols));
        }
        assert!(
            msgs.is_empty(),
            "invariant violation(s) at {:?}:\n  {}",
            world.now(),
            msgs.join("\n  ")
        );
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Run statistics so far.
    pub fn counters(&self) -> &Counters {
        self.world.counters()
    }

    /// Schedule hash over every event processed so far (see
    /// [`World::schedule_hash`]): equal seeds must yield equal hashes.
    pub fn schedule_hash(&self) -> u64 {
        self.world.schedule_hash()
    }

    /// Immutable access to the protocol instances (indexed by node id).
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// Mutable access to the protocol instances (for test instrumentation).
    pub fn protocols_mut(&mut self) -> &mut [P] {
        &mut self.protocols
    }

    /// The world (read-only introspection: positions, counters, frames).
    pub fn world(&self) -> &World<P::Msg> {
        &self.world
    }

    /// Mutable world access (attaching trace sinks and similar plumbing).
    pub fn world_mut(&mut self) -> &mut World<P::Msg> {
        &mut self.world
    }

    /// Attach a mobility model (default: nodes are static).
    pub fn set_mobility(&mut self, model: Box<dyn crate::mobility::Mobility>) {
        self.world.set_mobility(model);
    }

    /// Advance the simulation until `t`, processing every event scheduled at
    /// or before it. On first call, `start` is invoked on every protocol.
    pub fn run_until(&mut self, t: SimTime) {
        if !self.started {
            self.started = true;
            for i in 0..self.protocols.len() {
                let node = crate::ids::NodeId::new(i as u32);
                let mut ctx = Ctx {
                    world: &mut self.world,
                    node,
                };
                self.protocols[i].start(&mut ctx);
            }
        }
        loop {
            let more = self.world.step(t, &mut self.upcall_buf);
            // Route upcalls generated by this event before the next one,
            // in the order the world produced them. Protocol callbacks do
            // not generate further upcalls (sends are asynchronous), so a
            // simple take-and-drain is safe.
            let mut ups = std::mem::take(&mut self.upcall_buf);
            for up in ups.drain(..) {
                match up {
                    Upcall::Deliver {
                        node,
                        src,
                        msg,
                        meta,
                    } => {
                        let mut ctx = Ctx {
                            world: &mut self.world,
                            node,
                        };
                        self.protocols[node.index()].handle_message(
                            &mut ctx,
                            src,
                            msg.as_ref(),
                            meta,
                        );
                    }
                    Upcall::TxDone {
                        node,
                        handle,
                        outcome,
                    } => {
                        let mut ctx = Ctx {
                            world: &mut self.world,
                            node,
                        };
                        self.protocols[node.index()].handle_tx_complete(&mut ctx, handle, outcome);
                    }
                    Upcall::Timer { node, timer, kind } => {
                        let mut ctx = Ctx {
                            world: &mut self.world,
                            node,
                        };
                        self.protocols[node.index()].handle_timer(&mut ctx, timer, kind);
                    }
                    Upcall::Restart { node } => {
                        let mut ctx = Ctx {
                            world: &mut self.world,
                            node,
                        };
                        self.protocols[node.index()].handle_restart(&mut ctx);
                    }
                }
            }
            self.upcall_buf = ups;
            if let Some(wd) = self.watchdog {
                let now = self.world.now();
                if now.saturating_since(self.wd_anchor) >= wd.min_progress {
                    self.wd_anchor = now;
                    self.wd_events = 0;
                } else {
                    self.wd_events += 1;
                    assert!(
                        self.wd_events <= wd.max_events,
                        "{WATCHDOG_PANIC_PREFIX}{} events dispatched within {:?} \
                         of simulated time at {:?} — livelocked run",
                        self.wd_events,
                        wd.min_progress,
                        now
                    );
                }
            }
            if let Some(every) = self.check_interval {
                let due = *self
                    .next_check
                    .get_or_insert_with(|| self.world.now() + every);
                if self.world.now() >= due {
                    self.check_invariants();
                    let mut next = due;
                    while next <= self.world.now() {
                        next += every;
                    }
                    self.next_check = Some(next);
                }
            }
            // Periodic checkpoints are taken after the upcall drain, so the
            // serialized state is always at an event boundary. Snapshotting
            // is read-only: emitting (or not emitting) checkpoints never
            // perturbs the event schedule or the RNG stream.
            if let (Some(every), Some(make)) = (self.ckpt_every, self.ckpt_make) {
                let due = *self
                    .next_ckpt
                    .get_or_insert_with(|| self.world.now() + every);
                if self.world.now() >= due {
                    let bytes = make(self, self.ckpt_fingerprint);
                    let at = self.world.now();
                    if let Some(sink) = self.ckpt_sink.as_mut() {
                        sink(at, bytes);
                    }
                    let mut next = due;
                    while next <= self.world.now() {
                        next += every;
                    }
                    self.next_ckpt = Some(next);
                }
            }
            if !more {
                break;
            }
        }
        self.world.advance_clock(t);
        if self.check_interval.is_some() {
            self.check_invariants();
        }
    }

    /// Finish the run and extract the protocol instances and counters.
    pub fn into_parts(self) -> (Vec<P>, Counters) {
        let counters = self.world.counters().clone();
        (self.protocols, counters)
    }
}

impl<P> Simulator<P>
where
    P: Protocol + SnapshotState,
    P::Msg: Snap,
{
    /// Serialize the complete simulation state into a versioned checkpoint
    /// (DESIGN.md §14). `fingerprint` is an opaque hash of the scenario
    /// configuration: [`Simulator::restore`] refuses checkpoints stamped
    /// with a different one, catching restores into a mismatched scenario
    /// before any state is overwritten.
    ///
    /// Read-only — taking a snapshot never perturbs the run.
    pub fn snapshot(&self, fingerprint: u64) -> Vec<u8> {
        let mut w = SnapWriter::with_header(fingerprint);
        w.put_bool(self.started);
        self.wd_anchor.snap(&mut w);
        w.put_u64(self.wd_events);
        self.next_check.snap(&mut w);
        self.world.snapshot_state(&mut w);
        for p in &self.protocols {
            p.snapshot_state(&mut w);
        }
        w.into_bytes()
    }

    /// Overwrite this simulator's state from a checkpoint produced by
    /// [`Simulator::snapshot`] on a simulator built from the **same scenario
    /// configuration** (enforced via `fingerprint`). After a successful
    /// restore, continuing with [`Simulator::run_until`] reproduces the
    /// original run bit-for-bit: same schedule hash, counters and
    /// timeseries.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the checkpoint is malformed, truncated,
    /// from an unsupported format version, or stamped with a different
    /// configuration fingerprint. The simulator may be partially overwritten
    /// on error and must be discarded.
    pub fn restore(&mut self, bytes: &[u8], fingerprint: u64) -> Result<(), SnapError> {
        let mut r = SnapReader::with_header(bytes, fingerprint)?;
        self.started = r.bool()?;
        self.wd_anchor = Snap::unsnap(&mut r)?;
        self.wd_events = r.u64()?;
        self.next_check = Snap::unsnap(&mut r)?;
        self.world.restore_state(&mut r)?;
        for p in &mut self.protocols {
            p.restore_state(&mut r)?;
        }
        r.finish()?;
        // The checkpoint cadence is runner-side configuration, not simulation
        // state: re-anchor it at the restored clock.
        self.next_ckpt = None;
        Ok(())
    }

    /// Emit a checkpoint roughly every `every` of simulated time into
    /// `sink`. Checkpoints are taken at event boundaries (after the upcall
    /// drain), stamped with `fingerprint`, and never perturb the schedule —
    /// a run with checkpointing enabled is bit-identical to one without.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn checkpoint_every(
        &mut self,
        every: SimDuration,
        fingerprint: u64,
        sink: impl FnMut(SimTime, Vec<u8>) + Send + 'static,
    ) {
        assert!(every.as_nanos() > 0, "checkpoint interval must be positive");
        self.ckpt_every = Some(every);
        self.next_ckpt = None;
        self.ckpt_fingerprint = fingerprint;
        self.ckpt_make = Some(|sim, fp| sim.snapshot(fp));
        self.ckpt_sink = Some(Box::new(sink));
    }
}
