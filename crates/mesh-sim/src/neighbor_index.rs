//! Uniform-grid spatial index over node positions.
//!
//! [`NeighborIndex`] buckets nodes into square cells so that range queries
//! ("every node within `r` meters of here") touch only the cells overlapping
//! the query square instead of scanning all N nodes. The medium uses it to
//! rebuild its per-transmitter candidate caches in O(K) per transmitter
//! (K = nodes in range) rather than O(N).
//!
//! The index is a snapshot: it does not observe position changes. Rebuild it
//! (or the caches derived from it) whenever positions move — the simulator
//! signals this via [`crate::medium::Medium::invalidate_positions`].

use crate::geometry::Pos;

/// Upper bound on grid cells per axis; keeps degenerate configurations
/// (tiny radio range in a huge area) from allocating unbounded cell arrays.
/// Cells just get coarser — queries stay correct, only less selective.
const MAX_CELLS_PER_AXIS: usize = 256;

/// A uniform grid over a set of node positions supporting conservative
/// range queries.
///
/// Queries return a **superset** of the nodes within the radius (everything
/// in the cells overlapping the query square); callers apply their exact
/// predicate per node.
#[derive(Debug, Clone)]
pub struct NeighborIndex {
    origin: Pos,
    /// Cell side length in meters.
    cell_m: f64,
    cols: usize,
    rows: usize,
    /// CSR layout: `starts[c]..starts[c + 1]` indexes `nodes` for cell `c`.
    starts: Vec<u32>,
    /// Node indices grouped by cell, ascending within each cell.
    nodes: Vec<u32>,
}

impl NeighborIndex {
    /// Build an index with cells of (at least) `cell_m` meters per side.
    ///
    /// `cell_m` is normally the query radius the caller intends to use, so a
    /// query touches at most 3×3 = 9 cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not positive and finite, or any position is
    /// non-finite.
    pub fn build(positions: &[Pos], cell_m: f64) -> Self {
        assert!(
            cell_m > 0.0 && cell_m.is_finite(),
            "cell size must be positive and finite"
        );
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions {
            assert!(p.x.is_finite() && p.y.is_finite(), "non-finite position");
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if positions.is_empty() {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
        }
        let span_x = (max_x - min_x).max(0.0);
        let span_y = (max_y - min_y).max(0.0);
        let cols = grid_extent(span_x, cell_m);
        let rows = grid_extent(span_y, cell_m);
        // Widen cells if the axis cap kicked in, so coverage stays complete.
        let cell_m = cell_m.max(span_x / cols as f64).max(span_y / rows as f64);

        let origin = Pos::new(min_x, min_y);
        let mut index = NeighborIndex {
            origin,
            cell_m,
            cols,
            rows,
            starts: vec![0; cols * rows + 1],
            nodes: vec![0; positions.len()],
        };
        // Counting sort into CSR: count per cell, prefix-sum, then fill.
        // Filling in ascending node order keeps each cell's list ascending.
        for &p in positions {
            let c = index.cell_of(p);
            index.starts[c + 1] += 1;
        }
        for c in 0..cols * rows {
            index.starts[c + 1] += index.starts[c];
        }
        let mut cursor: Vec<u32> = index.starts[..cols * rows].to_vec();
        for (i, &p) in positions.iter().enumerate() {
            let c = index.cell_of(p);
            index.nodes[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        index
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the index holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Grid dimensions `(cols, rows)`; exposed for diagnostics.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn cell_coords(&self, p: Pos) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell_m) as usize;
        let cy = ((p.y - self.origin.y) / self.cell_m) as usize;
        (cx.min(self.cols - 1), cy.min(self.rows - 1))
    }

    fn cell_of(&self, p: Pos) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    /// Append to `out` every node in a cell overlapping the square of
    /// half-side `radius_m` around `center` — a superset of the nodes within
    /// `radius_m` meters. Within a cell nodes come out ascending, but cells
    /// are visited row-major, so the overall order is not sorted.
    pub fn candidates_within(&self, center: Pos, radius_m: f64, out: &mut Vec<u32>) {
        let lo = Pos::new(center.x - radius_m, center.y - radius_m);
        let hi = Pos::new(center.x + radius_m, center.y + radius_m);
        let (cx0, cy0) = self.cell_coords(clamp_to(lo, self.origin));
        let (cx1, cy1) = self.cell_coords(hi);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.cols + cx;
                let (s, e) = (self.starts[c] as usize, self.starts[c + 1] as usize);
                out.extend_from_slice(&self.nodes[s..e]);
            }
        }
    }
}

/// Cells needed to cover `span` meters with `cell`-sized cells, capped.
fn grid_extent(span: f64, cell: f64) -> usize {
    ((span / cell).floor() as usize + 1).min(MAX_CELLS_PER_AXIS)
}

/// Clamp a query corner to the grid origin so the `f64 as usize` cast in
/// `cell_coords` (which saturates negatives to 0 only for the final min)
/// never sees a coordinate below the origin.
fn clamp_to(p: Pos, origin: Pos) -> Pos {
    Pos::new(p.x.max(origin.x), p.y.max(origin.y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn brute_force(positions: &[Pos], center: Pos, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = positions
            .iter()
            .enumerate()
            .filter(|(_, p)| center.distance_to(**p) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn query_is_superset_of_brute_force() {
        let mut rng = SimRng::seed_from(42);
        for trial in 0..50 {
            let n = 1 + (trial % 40);
            let positions: Vec<Pos> = (0..n)
                .map(|_| {
                    Pos::new(
                        rng.uniform_range(-500.0, 1500.0),
                        rng.uniform_range(0.0, 900.0),
                    )
                })
                .collect();
            let idx = NeighborIndex::build(&positions, 200.0);
            for _ in 0..10 {
                let center = positions[rng.uniform_u32(n as u32) as usize];
                let r = rng.uniform_range(1.0, 400.0);
                let mut got = Vec::new();
                idx.candidates_within(center, r, &mut got);
                got.sort_unstable();
                let expect = brute_force(&positions, center, r);
                for e in expect {
                    assert!(got.contains(&e), "node {e} missing at r={r}");
                }
            }
        }
    }

    #[test]
    fn query_prunes_far_nodes() {
        // A long line of nodes: a small-radius query near one end must not
        // return the whole line.
        let positions: Vec<Pos> = (0..1000).map(|i| Pos::new(i as f64 * 10.0, 0.0)).collect();
        let idx = NeighborIndex::build(&positions, 100.0);
        let mut got = Vec::new();
        idx.candidates_within(positions[0], 100.0, &mut got);
        assert!(got.len() < 100, "pruning failed: {} candidates", got.len());
        got.sort_unstable();
        for e in brute_force(&positions, positions[0], 100.0) {
            assert!(got.contains(&e));
        }
    }

    #[test]
    fn handles_degenerate_inputs() {
        // Empty.
        let idx = NeighborIndex::build(&[], 10.0);
        assert!(idx.is_empty());
        let mut out = Vec::new();
        idx.candidates_within(Pos::new(0.0, 0.0), 50.0, &mut out);
        assert!(out.is_empty());
        // All co-located.
        let positions = vec![Pos::new(5.0, 5.0); 7];
        let idx = NeighborIndex::build(&positions, 1.0);
        out.clear();
        idx.candidates_within(Pos::new(5.0, 5.0), 0.5, &mut out);
        assert_eq!(out, (0..7).collect::<Vec<u32>>());
    }

    #[test]
    fn tiny_cell_size_is_capped_not_exploding() {
        let positions = vec![Pos::new(0.0, 0.0), Pos::new(1.0e6, 1.0e6)];
        let idx = NeighborIndex::build(&positions, 0.001);
        let (cols, rows) = idx.grid_dims();
        assert!(cols <= MAX_CELLS_PER_AXIS && rows <= MAX_CELLS_PER_AXIS);
        let mut out = Vec::new();
        idx.candidates_within(Pos::new(0.0, 0.0), 10.0, &mut out);
        assert!(out.contains(&0));
    }

    #[test]
    fn cells_preserve_ascending_order_within_cell() {
        let positions = vec![
            Pos::new(1.0, 1.0),
            Pos::new(2.0, 2.0),
            Pos::new(3.0, 1.5),
            Pos::new(1.5, 2.5),
        ];
        let idx = NeighborIndex::build(&positions, 100.0);
        let mut out = Vec::new();
        idx.candidates_within(Pos::new(2.0, 2.0), 50.0, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
