//! Uniform-grid spatial index over node positions, with incremental
//! re-bucketing.
//!
//! [`NeighborIndex`] buckets nodes into square cells so that range queries
//! ("every node within `r` meters of here") touch only the cells overlapping
//! the query square instead of scanning all N nodes. The medium uses it to
//! build its per-transmitter candidate caches in O(K) per transmitter
//! (K = nodes in range) rather than O(N).
//!
//! The index observes position changes through [`NeighborIndex::update_position`]:
//! a node that moved is re-bucketed only if its position crossed a grid-cell
//! boundary, in O(bucket) instead of the O(N) of a full rebuild. Intra-cell
//! ordering is stable (node ids ascending), so candidate enumeration order —
//! and everything derived from it, like the RNG draw order of the medium —
//! is identical to a from-scratch build over the same grid frame
//! ([`NeighborIndex::rebuilt`] checks exactly that in tests).
//!
//! The grid *frame* (origin, cell size, dimensions) is fixed at build time
//! from the initial bounding box. Nodes that later wander outside the frame
//! are clamped into the border cells — queries stay conservative (the same
//! clamping applies to query corners), only less selective. A workload whose
//! population migrates far off the original frame should rebuild the index.

use crate::geometry::Pos;
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};

/// Upper bound on grid cells per axis; keeps degenerate configurations
/// (tiny radio range in a huge area) from allocating unbounded cell arrays.
/// Cells just get coarser — queries stay correct, only less selective.
const MAX_CELLS_PER_AXIS: usize = 256;

/// A uniform grid over a set of node positions supporting conservative
/// range queries and incremental position updates.
///
/// Queries return a **superset** of the nodes within the radius (everything
/// in the cells overlapping the query square); callers apply their exact
/// predicate per node.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborIndex {
    origin: Pos,
    /// Cell side length in meters.
    cell_m: f64,
    cols: usize,
    rows: usize,
    /// Node indices per cell, ascending within each cell.
    cells: Vec<Vec<u32>>,
    /// Inverse mapping: the cell each node is currently bucketed in.
    node_cell: Vec<u32>,
}

impl NeighborIndex {
    /// Build an index with cells of (at least) `cell_m` meters per side.
    ///
    /// `cell_m` is normally the query radius the caller intends to use, so a
    /// query touches at most 3×3 = 9 cells — and the 3×3 block around a
    /// node's own cell ([`NeighborIndex::nodes_in_block`]) covers every node
    /// within `cell_m` of it.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not positive and finite, or any position is
    /// non-finite.
    pub fn build(positions: &[Pos], cell_m: f64) -> Self {
        assert!(
            cell_m > 0.0 && cell_m.is_finite(),
            "cell size must be positive and finite"
        );
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions {
            assert!(p.x.is_finite() && p.y.is_finite(), "non-finite position");
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if positions.is_empty() {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
        }
        let span_x = (max_x - min_x).max(0.0);
        let span_y = (max_y - min_y).max(0.0);
        let cols = grid_extent(span_x, cell_m);
        let rows = grid_extent(span_y, cell_m);
        // Widen cells if the axis cap kicked in, so coverage stays complete.
        let cell_m = cell_m.max(span_x / cols as f64).max(span_y / rows as f64);

        let mut index = NeighborIndex {
            origin: Pos::new(min_x, min_y),
            cell_m,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            node_cell: Vec::with_capacity(positions.len()),
        };
        index.fill(positions);
        index
    }

    /// Rebuild this index's contents from `positions` **in the same grid
    /// frame** (origin, cell size, dimensions). This is the reference the
    /// incremental path must match bucket-for-bucket: applying
    /// [`NeighborIndex::update_position`] for every moved node must leave
    /// the index equal to `rebuilt(&new_positions)`.
    pub fn rebuilt(&self, positions: &[Pos]) -> NeighborIndex {
        let mut index = NeighborIndex {
            origin: self.origin,
            cell_m: self.cell_m,
            cols: self.cols,
            rows: self.rows,
            cells: vec![Vec::new(); self.cols * self.rows],
            node_cell: Vec::with_capacity(positions.len()),
        };
        index.fill(positions);
        index
    }

    /// Bucket every position into the (already sized) grid. Pushing in
    /// ascending node order keeps each cell's list ascending.
    fn fill(&mut self, positions: &[Pos]) {
        for (i, &p) in positions.iter().enumerate() {
            assert!(p.x.is_finite() && p.y.is_finite(), "non-finite position");
            let c = self.cell_of(p);
            self.cells[c].push(i as u32);
            self.node_cell.push(c as u32);
        }
    }

    /// Re-bucket `node` after it moved to `new_pos`. Returns
    /// `Some((old_cell, new_cell))` if the position crossed a cell boundary
    /// (the node was moved between buckets, keeping both sorted), `None` if
    /// it stayed in its cell (the index is untouched).
    ///
    /// # Panics
    ///
    /// Panics if `new_pos` is non-finite or `node` is not indexed.
    // mesh-lint: hot(cell-crossing)
    pub fn update_position(&mut self, node: u32, new_pos: Pos) -> Option<(usize, usize)> {
        assert!(
            new_pos.x.is_finite() && new_pos.y.is_finite(),
            "non-finite position"
        );
        let old = self.node_cell[node as usize] as usize;
        let new = self.cell_of(new_pos);
        if old == new {
            return None;
        }
        let bucket = &mut self.cells[old];
        let i = bucket
            .binary_search(&node)
            // mesh-lint: allow(R6, "node_cell and the buckets move in lockstep: node_cell[n] == old implies n is in cells[old]")
            .expect("node present in its bucket");
        bucket.remove(i);
        let bucket = &mut self.cells[new];
        let i = bucket
            .binary_search(&node)
            .expect_err("node cannot already be in the target bucket");
        bucket.insert(i, node);
        self.node_cell[node as usize] = new as u32;
        Some((old, new))
    }
    // mesh-lint: end-hot

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.node_cell.len()
    }

    /// Whether the index holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_cell.is_empty()
    }

    /// Grid dimensions `(cols, rows)`; exposed for diagnostics.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Actual cell side in meters (at least the `cell_m` passed to
    /// [`NeighborIndex::build`]; wider when the per-axis cell cap widened
    /// them). Callers size their block radius from this: a block of `rings`
    /// rings covers `rings × cell_size_m` meters around the center cell.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_m
    }

    /// The cell index `position` falls in (clamped into the grid frame).
    pub fn cell_index(&self, p: Pos) -> usize {
        self.cell_of(p)
    }

    /// The cell `node` is currently bucketed in.
    pub fn node_cell(&self, node: u32) -> usize {
        self.node_cell[node as usize] as usize
    }

    /// The nodes bucketed in `cell`, ascending.
    pub fn nodes_in_cell(&self, cell: usize) -> &[u32] {
        &self.cells[cell]
    }

    fn cell_coords(&self, p: Pos) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell_m) as usize;
        let cy = ((p.y - self.origin.y) / self.cell_m) as usize;
        (cx.min(self.cols - 1), cy.min(self.rows - 1))
    }

    fn cell_of(&self, p: Pos) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    /// Visit every cell of the `(2·rings+1)²` block centered on `cell`
    /// (clamped at the grid border). The clamped cell mapping moves by at
    /// most one cell index per [`NeighborIndex::cell_size_m`] meters of
    /// displacement, so whenever `rings × cell_size_m` is at least the query
    /// radius, this block covers every node within that radius of any point
    /// inside `cell` — including clamped out-of-frame positions. It is the
    /// conservative cell neighborhood the medium's epoch checks and cached
    /// candidate supersets are defined over.
    pub fn for_each_block_cell(&self, cell: usize, rings: usize, mut f: impl FnMut(usize)) {
        let (cx, cy) = (cell % self.cols, cell / self.cols);
        for y in cy.saturating_sub(rings)..=(cy + rings).min(self.rows - 1) {
            for x in cx.saturating_sub(rings)..=(cx + rings).min(self.cols - 1) {
                f(y * self.cols + x);
            }
        }
    }

    /// Append to `out` every node bucketed in the `(2·rings+1)²` block
    /// centered on `cell` (see [`NeighborIndex::for_each_block_cell`]).
    /// Within a cell nodes come out ascending, but cells are visited
    /// row-major, so the overall order is not sorted.
    pub fn nodes_in_block(&self, cell: usize, rings: usize, out: &mut Vec<u32>) {
        self.for_each_block_cell(cell, rings, |c| out.extend_from_slice(&self.cells[c]));
    }

    /// Append to `out` every node in a cell overlapping the square of
    /// half-side `radius_m` around `center` — a superset of the nodes within
    /// `radius_m` meters. Within a cell nodes come out ascending, but cells
    /// are visited row-major, so the overall order is not sorted.
    // mesh-lint: hot(candidate-query)
    pub fn candidates_within(&self, center: Pos, radius_m: f64, out: &mut Vec<u32>) {
        let lo = Pos::new(center.x - radius_m, center.y - radius_m);
        let hi = Pos::new(center.x + radius_m, center.y + radius_m);
        let (cx0, cy0) = self.cell_coords(clamp_to(lo, self.origin));
        let (cx1, cy1) = self.cell_coords(hi);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                // mesh-lint: allow(R6, "cell_coords clamps to cols-1/rows-1, so cy * cols + cx < rows * cols == cells.len()")
                out.extend_from_slice(&self.cells[cy * self.cols + cx]);
            }
        }
    }
    // mesh-lint: end-hot
}

// The index is SERIALIZED rather than rebuilt on restore: the grid frame
// (origin, cell size, dimensions) is fixed at `build()` time from the
// *initial* bounding box, so a restore-time rebuild from the moved positions
// would choose a different frame — and with it different cell traversal
// orders downstream. Incremental updates provably equal a same-frame rebuild
// (`incremental_updates_match_frame_rebuild`), so the serialized contents
// are exactly what the uninterrupted run would hold.
impl Snap for NeighborIndex {
    fn snap(&self, w: &mut SnapWriter) {
        self.origin.snap(w);
        w.put_f64(self.cell_m);
        w.put_usize(self.cols);
        w.put_usize(self.rows);
        self.cells.snap(w);
        self.node_cell.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NeighborIndex {
            origin: Snap::unsnap(r)?,
            cell_m: r.f64()?,
            cols: r.usize()?,
            rows: r.usize()?,
            cells: Snap::unsnap(r)?,
            node_cell: Snap::unsnap(r)?,
        })
    }
}

/// Cells needed to cover `span` meters with `cell`-sized cells, capped.
fn grid_extent(span: f64, cell: f64) -> usize {
    ((span / cell).floor() as usize + 1).min(MAX_CELLS_PER_AXIS)
}

/// Clamp a query corner to the grid origin so the `f64 as usize` cast in
/// `cell_coords` (which saturates negatives to 0 only for the final min)
/// never sees a coordinate below the origin.
fn clamp_to(p: Pos, origin: Pos) -> Pos {
    Pos::new(p.x.max(origin.x), p.y.max(origin.y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn brute_force(positions: &[Pos], center: Pos, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = positions
            .iter()
            .enumerate()
            .filter(|(_, p)| center.distance_to(**p) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn query_is_superset_of_brute_force() {
        let mut rng = SimRng::seed_from(42);
        for trial in 0..50 {
            let n = 1 + (trial % 40);
            let positions: Vec<Pos> = (0..n)
                .map(|_| {
                    Pos::new(
                        rng.uniform_range(-500.0, 1500.0),
                        rng.uniform_range(0.0, 900.0),
                    )
                })
                .collect();
            let idx = NeighborIndex::build(&positions, 200.0);
            for _ in 0..10 {
                let center = positions[rng.uniform_u32(n as u32) as usize];
                let r = rng.uniform_range(1.0, 400.0);
                let mut got = Vec::new();
                idx.candidates_within(center, r, &mut got);
                got.sort_unstable();
                let expect = brute_force(&positions, center, r);
                for e in expect {
                    assert!(got.contains(&e), "node {e} missing at r={r}");
                }
            }
        }
    }

    #[test]
    fn query_prunes_far_nodes() {
        // A long line of nodes: a small-radius query near one end must not
        // return the whole line.
        let positions: Vec<Pos> = (0..1000).map(|i| Pos::new(i as f64 * 10.0, 0.0)).collect();
        let idx = NeighborIndex::build(&positions, 100.0);
        let mut got = Vec::new();
        idx.candidates_within(positions[0], 100.0, &mut got);
        assert!(got.len() < 100, "pruning failed: {} candidates", got.len());
        got.sort_unstable();
        for e in brute_force(&positions, positions[0], 100.0) {
            assert!(got.contains(&e));
        }
    }

    #[test]
    fn handles_degenerate_inputs() {
        // Empty.
        let idx = NeighborIndex::build(&[], 10.0);
        assert!(idx.is_empty());
        let mut out = Vec::new();
        idx.candidates_within(Pos::new(0.0, 0.0), 50.0, &mut out);
        assert!(out.is_empty());
        // All co-located.
        let positions = vec![Pos::new(5.0, 5.0); 7];
        let idx = NeighborIndex::build(&positions, 1.0);
        out.clear();
        idx.candidates_within(Pos::new(5.0, 5.0), 0.5, &mut out);
        assert_eq!(out, (0..7).collect::<Vec<u32>>());
    }

    #[test]
    fn tiny_cell_size_is_capped_not_exploding() {
        let positions = vec![Pos::new(0.0, 0.0), Pos::new(1.0e6, 1.0e6)];
        let idx = NeighborIndex::build(&positions, 0.001);
        let (cols, rows) = idx.grid_dims();
        assert!(cols <= MAX_CELLS_PER_AXIS && rows <= MAX_CELLS_PER_AXIS);
        let mut out = Vec::new();
        idx.candidates_within(Pos::new(0.0, 0.0), 10.0, &mut out);
        assert!(out.contains(&0));
    }

    #[test]
    fn cells_preserve_ascending_order_within_cell() {
        let positions = vec![
            Pos::new(1.0, 1.0),
            Pos::new(2.0, 2.0),
            Pos::new(3.0, 1.5),
            Pos::new(1.5, 2.5),
        ];
        let idx = NeighborIndex::build(&positions, 100.0);
        let mut out = Vec::new();
        idx.candidates_within(Pos::new(2.0, 2.0), 50.0, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn incremental_updates_match_frame_rebuild() {
        let mut rng = SimRng::seed_from(0x1DC);
        let n = 60;
        let mut positions: Vec<Pos> = (0..n)
            .map(|_| {
                Pos::new(
                    rng.uniform_range(0.0, 2000.0),
                    rng.uniform_range(0.0, 2000.0),
                )
            })
            .collect();
        let mut idx = NeighborIndex::build(&positions, 250.0);
        for _ in 0..200 {
            let i = rng.uniform_u32(n as u32) as usize;
            positions[i] = Pos::new(
                positions[i].x + rng.uniform_range(-400.0, 400.0),
                positions[i].y + rng.uniform_range(-400.0, 400.0),
            );
            idx.update_position(i as u32, positions[i]);
            assert_eq!(idx, idx.rebuilt(&positions));
        }
    }

    #[test]
    fn block_covers_radius_around_any_cell_member() {
        let mut rng = SimRng::seed_from(0xB10C);
        let positions: Vec<Pos> = (0..80)
            .map(|_| {
                Pos::new(
                    rng.uniform_range(-300.0, 1700.0),
                    rng.uniform_range(0.0, 1300.0),
                )
            })
            .collect();
        let r = 180.0;
        let idx = NeighborIndex::build(&positions, r);
        for (i, &p) in positions.iter().enumerate() {
            let mut block = Vec::new();
            idx.nodes_in_block(idx.node_cell(i as u32), 1, &mut block);
            for e in brute_force(&positions, p, r) {
                assert!(
                    block.contains(&e),
                    "node {e} within {r} m of node {i} missing"
                );
            }
        }
    }

    #[test]
    fn update_position_reports_crossings_only() {
        let positions = vec![Pos::new(50.0, 50.0), Pos::new(150.0, 50.0)];
        let mut idx = NeighborIndex::build(&positions, 100.0);
        // Intra-cell wiggle: no re-bucket.
        assert_eq!(idx.update_position(0, Pos::new(60.0, 60.0)), None);
        // Boundary crossing: re-bucketed, both cells reported.
        let crossed = idx.update_position(0, Pos::new(150.0, 50.0));
        let (old, new) = crossed.expect("crossed a cell boundary");
        assert_ne!(old, new);
        assert_eq!(idx.node_cell(0), idx.node_cell(1));
        assert_eq!(idx.nodes_in_cell(new), &[0, 1]);
        assert!(idx.nodes_in_cell(old).is_empty());
    }
}
