//! The shared wireless medium.
//!
//! A [`Medium`] decides, for each transmission, which nodes hear it, at what
//! power, and after what propagation delay. Two implementations are provided:
//!
//! * [`PhysicalMedium`] — positions + path loss + fading (the simulation
//!   configuration of the paper), and
//! * trace-driven media (see the `testbed` crate) that replace physics with
//!   measured/synthetic per-link loss processes, used to reproduce the
//!   testbed experiments.

use crate::geometry::Pos;
use crate::ids::NodeId;
use crate::neighbor_index::NeighborIndex;
use crate::propagation::{FadingModel, MeanPowerEval, PhyParams};
use crate::rng::SimRng;
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One node's position change over a mobility tick, as reported by the world
/// to the medium through [`Medium::positions_changed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionDelta {
    /// The node that moved.
    pub node: NodeId,
    /// Its position before the tick.
    pub from: Pos,
    /// Its position after the tick (equals `positions[node]`).
    pub to: Pos,
}

impl PositionDelta {
    /// Straight-line displacement of this move, meters.
    pub fn displacement_m(&self) -> f64 {
        self.from.distance_to(self.to)
    }
}

/// Maintenance statistics of an incrementally-maintained spatial index
/// (see [`PhysicalMedium`]). Purely observational: deliberately kept out of
/// [`crate::counters::Counters`] so indexed and naive runs still compare
/// equal counter-for-counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Nodes moved between grid cells by `update_position`.
    pub rebuckets: u64,
    /// Per-cell epoch slots advanced (membership or motion).
    pub epoch_bumps: u64,
    /// Fan-outs answered by replaying a cached candidate list unchanged.
    pub cache_hits: u64,
    /// Fan-outs that re-filtered a cached superset (nodes moved within
    /// cells near the transmitter, so distances changed but membership of
    /// the cell block did not).
    pub cache_refreshes: u64,
    /// Fan-outs that rebuilt a candidate list from a fresh grid query
    /// (cell membership near the transmitter changed, or first use).
    pub cache_rebuilds: u64,
    /// Wholesale cache invalidations (non-incremental mode, or explicit
    /// [`Medium::invalidate_positions`] calls while indexed).
    pub full_invalidations: u64,
}

impl Snap for IndexStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.rebuckets);
        w.put_u64(self.epoch_bumps);
        w.put_u64(self.cache_hits);
        w.put_u64(self.cache_refreshes);
        w.put_u64(self.cache_rebuilds);
        w.put_u64(self.full_invalidations);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(IndexStats {
            rebuckets: r.u64()?,
            epoch_bumps: r.u64()?,
            cache_hits: r.u64()?,
            cache_refreshes: r.u64()?,
            cache_rebuilds: r.u64()?,
            full_invalidations: r.u64()?,
        })
    }
}

/// A fault-injected override applied to one directed link (see
/// [`crate::fault`]). Effects replace each other: setting a second effect on
/// the same link overwrites the first, and clearing removes any effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkEffect {
    /// Additional Bernoulli loss composed with the link's base loss process:
    /// a frame that would have been received is independently dropped with
    /// this probability.
    ExtraLoss(f64),
    /// Multiply the received power by this factor (`< 1.0` attenuates). On a
    /// [`PhysicalMedium`] this models an obstruction; on threshold-based
    /// media a factor below the decode margin silences the link.
    Attenuate(f64),
    /// The link carries nothing at all (not even channel-busying energy).
    Blackout,
}

impl Snap for LinkEffect {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            LinkEffect::ExtraLoss(p) => {
                w.put_u8(0);
                w.put_f64(p);
            }
            LinkEffect::Attenuate(k) => {
                w.put_u8(1);
                w.put_f64(k);
            }
            LinkEffect::Blackout => w.put_u8(2),
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => LinkEffect::ExtraLoss(r.f64()?),
            1 => LinkEffect::Attenuate(r.f64()?),
            2 => LinkEffect::Blackout,
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

/// One receiver's view of a transmitted frame, as decided by the medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxPlan {
    /// The receiving node.
    pub node: NodeId,
    /// Received power in watts (already includes fading/shadowing).
    pub power_w: f64,
    /// Propagation delay from transmitter to this receiver.
    pub delay: SimDuration,
}

/// Strategy deciding who hears a transmission and how strongly.
///
/// Implementations must be deterministic given the `rng` stream. Receivers
/// whose power would fall below any threshold of interest may simply be
/// omitted from `out`.
pub trait Medium {
    /// Plan the reception of one frame transmitted by `tx` at `now`.
    ///
    /// Appends one [`RxPlan`] per node that hears any energy. Must not include
    /// `tx` itself.
    fn fan_out(
        &mut self,
        tx: NodeId,
        positions: &[Pos],
        now: SimTime,
        rng: &mut SimRng,
        out: &mut Vec<RxPlan>,
    );

    /// The PHY parameters (thresholds, capture ratio) the world should use to
    /// interpret the powers this medium emits.
    fn phy(&self) -> &PhyParams;

    /// Notification that node positions have (or may have) changed since the
    /// last `fan_out`. Media that cache anything derived from geometry must
    /// drop those caches here; the default is a no-op for media that don't
    /// look at positions. Callers that know *which* nodes moved should
    /// prefer [`Medium::positions_changed`].
    fn invalidate_positions(&mut self) {}

    /// Notification that exactly the nodes in `moves` changed position over
    /// one mobility tick; `positions` is the post-move snapshot. Media that
    /// maintain geometry caches incrementally override this; the default
    /// conservatively forwards to [`Medium::invalidate_positions`], so a
    /// medium that only implements wholesale invalidation stays correct.
    fn positions_changed(&mut self, moves: &[PositionDelta], positions: &[Pos]) {
        let _ = (moves, positions);
        self.invalidate_positions();
    }

    /// Spatial-index maintenance statistics since construction, if this
    /// medium keeps an index ([`None`] otherwise, the default).
    fn index_stats(&self) -> Option<IndexStats> {
        None
    }

    /// Apply a fault-injected [`LinkEffect`] to the directed link
    /// `from -> to`, replacing any previous effect on it. Media that do not
    /// model per-link faults may ignore this (the default).
    fn set_link_fault(&mut self, from: NodeId, to: NodeId, effect: LinkEffect) {
        let _ = (from, to, effect);
    }

    /// Remove any fault-injected effect from the directed link `from -> to`
    /// (no-op if none is set).
    fn clear_link_fault(&mut self, from: NodeId, to: NodeId) {
        let _ = (from, to);
    }

    /// Write the medium's mutable state into a checkpoint (DESIGN.md §14).
    /// Stateless media keep the no-op default.
    fn snapshot_state(&self, _w: &mut SnapWriter) {}

    /// Restore the medium's mutable state from a checkpoint. The medium is
    /// assumed to be freshly constructed from the same scenario config.
    fn restore_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// A potential receiver of one transmitter, with its geometry-derived
/// quantities precomputed. Membership is exactly the old full-scan predicate
/// `mean_rx_power_w(d) >= floor_w / 100`, and lists are NodeId-ascending, so
/// replaying a cached list draws the same RNG sequence as the full scan.
///
/// Stores the distance, not the propagation delay: like the naive scan, the
/// delay is only computed for candidates whose sampled power clears the
/// floor — a small fraction of the list — instead of for every candidate on
/// every refresh.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    node: NodeId,
    mean_w: f64,
    dist_m: f64,
}

impl Snap for Candidate {
    fn snap(&self, w: &mut SnapWriter) {
        self.node.snap(w);
        w.put_f64(self.mean_w);
        w.put_f64(self.dist_m);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Candidate {
            node: Snap::unsnap(r)?,
            mean_w: r.f64()?,
            dist_m: r.f64()?,
        })
    }
}

/// The distance-independent inputs of one [`FanOutCache::refilter`] pass,
/// bundled so both call sites in `plan_with` hand over one value.
#[derive(Clone, Copy)]
struct RefilterParams {
    tx: NodeId,
    candidate_range_m: f64,
    floor_w: f64,
    eval: MeanPowerEval,
}

/// One bucket-membership change (a node entering or leaving a grid cell),
/// kept in a short per-cell log so cached supersets can be patched in order
/// instead of rebuilt from a grid query.
#[derive(Debug, Clone, Copy)]
struct MembershipPatch {
    /// Global order stamp, monotone across all cells; a node crossing cells
    /// logs its removal before its insertion.
    seq: u64,
    node: u32,
    /// True if the node entered the cell, false if it left.
    added: bool,
}

impl Snap for MembershipPatch {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.seq);
        w.put_u32(self.node);
        w.put_bool(self.added);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MembershipPatch {
            seq: r.u64()?,
            node: r.u32()?,
            added: r.bool()?,
        })
    }
}

/// Per-cell epoch pair, kept adjacent so the hot block scan in
/// [`FanOutCache::plan_with`] touches one slot per cell instead of two
/// parallel arrays.
#[derive(Debug, Clone, Copy, Default)]
struct CellEpochs {
    /// Epoch of the last bucket-membership change (a node entered or left).
    membership: u64,
    /// Epoch of the last movement of any node bucketed in the cell.
    motion: u64,
}

impl Snap for CellEpochs {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.membership);
        w.put_u64(self.motion);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CellEpochs {
            membership: r.u64()?,
            motion: r.u64()?,
        })
    }
}

/// Bounded log of recent [`MembershipPatch`]es for one grid cell, oldest
/// first. Patching a cached superset is valid only while every patch newer
/// than the superset is still retained; once the log overflows, older
/// transmitter entries fall back to a full rebuild.
#[derive(Debug, Clone)]
struct CellLog {
    patches: Vec<MembershipPatch>,
    /// Every patch with `seq < retained_from` has been dropped.
    retained_from: u64,
}

/// Retained patches per cell. Sized so several mobility ticks' worth of
/// crossings fit between two transmissions of the same node at realistic
/// densities; overflow costs a rebuild, never correctness.
const CELL_LOG_CAP: usize = 16;

impl CellLog {
    fn new() -> Self {
        CellLog {
            patches: Vec::new(),
            retained_from: 1,
        }
    }

    fn push(&mut self, p: MembershipPatch) {
        if self.patches.len() == CELL_LOG_CAP {
            self.retained_from = self.patches[0].seq + 1;
            self.patches.remove(0);
        }
        self.patches.push(p);
    }
}

impl Snap for CellLog {
    fn snap(&self, w: &mut SnapWriter) {
        self.patches.snap(w);
        w.put_u64(self.retained_from);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CellLog {
            patches: Snap::unsnap(r)?,
            retained_from: r.u64()?,
        })
    }
}

/// One transmitter's cached fan-out state (see [`FanOutCache`]).
#[derive(Debug, Clone)]
struct TxEntry {
    /// The grid cell the transmitter occupied when `superset` was captured;
    /// a transmitter that changed cells always rebuilds.
    home_cell: u32,
    /// Value of the cache epoch when `superset` was captured: current while
    /// no cell of the 3×3 block has a newer membership epoch.
    seen_membership: u64,
    /// Value of the cache epoch when `list` was filtered: valid while no
    /// cell of the block has a newer motion epoch.
    seen_motion: u64,
    /// Global patch sequence the superset is synchronized to: applying every
    /// retained block-cell patch with a larger `seq` brings it current.
    seen_seq: u64,
    /// Every node bucketed in the 3×3 cell block around `home_cell`,
    /// NodeId-ascending — a superset of all possible candidates.
    superset: Vec<u32>,
    /// `superset` filtered through the exact floor predicate, with
    /// geometry-derived quantities precomputed.
    list: Vec<Candidate>,
}

impl Snap for TxEntry {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.home_cell);
        w.put_u64(self.seen_membership);
        w.put_u64(self.seen_motion);
        w.put_u64(self.seen_seq);
        self.superset.snap(w);
        self.list.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TxEntry {
            home_cell: r.u32()?,
            seen_membership: r.u64()?,
            seen_motion: r.u64()?,
            seen_seq: r.u64()?,
            superset: Snap::unsnap(r)?,
            list: Snap::unsnap(r)?,
        })
    }
}

/// Geometry caches for [`PhysicalMedium`], maintained incrementally across
/// position changes.
///
/// Invalidation is per-cell, not global: every mobility tick advances
/// `epoch`, and each move stamps that epoch onto the affected cells — onto
/// the **membership** epoch of the cells a node left/entered (the set of
/// nodes bucketed there changed) and onto the **motion** epoch of any cell
/// containing a node that moved at all (distances from nearby transmitters
/// changed, membership did not). A transmitter's cached state is then aged
/// against the 3×3 cell block around it:
///
/// * block membership newer than the entry → rebuild superset and list from
///   the grid (the only path that queries and sorts);
/// * block motion newer → re-filter the cached superset (distance math only,
///   no query, no sort, no allocation);
/// * neither → replay the cached list unchanged.
///
/// The block covers every node within the candidate radius of the
/// transmitter (cells are at least that wide), so correctness never depends
/// on the epochs being precise — only on them never going backwards.
#[derive(Debug, Clone)]
struct FanOutCache {
    /// The positions the grid and entries are maintained against; checked
    /// (debug builds) to catch positions changing without
    /// `positions_changed`/`invalidate_positions`.
    positions: Vec<Pos>,
    /// Search radius covering every node that can pass the floor predicate;
    /// anything farther is rejected on squared distance alone, skipping the
    /// expensive path-loss evaluation for most of a cell block.
    candidate_range_m: f64,
    grid: NeighborIndex,
    /// Block radius in cells: `rings × grid.cell_size_m()` covers
    /// `candidate_range_m`, so the `(2·rings+1)²` block around a
    /// transmitter's cell is a superset of its audible disc.
    rings: usize,
    /// Monotone tick counter; cell epochs are stamped from it.
    epoch: u64,
    /// Per-cell membership/motion epochs (see [`CellEpochs`]).
    cell_epochs: Vec<CellEpochs>,
    /// Per-cell membership patch logs (see [`CellLog`]).
    cell_logs: Vec<CellLog>,
    /// Last [`MembershipPatch::seq`] issued (0 before any crossing).
    last_seq: u64,
    /// Lazily-built per-transmitter entries.
    per_tx: Vec<Option<TxEntry>>,
    /// Scratch for the refilter distance pass: `(node, d_sq)` survivors.
    near_scratch: Vec<(u32, f64)>,
    /// Scratch for collecting block-cell patches in sequence order.
    patch_scratch: Vec<MembershipPatch>,
    /// Precomputed path-loss evaluator, bit-identical to the medium's
    /// [`PhyParams::mean_rx_power_w`] (rebuilt with the cache whenever the
    /// medium's parameters change).
    eval: MeanPowerEval,
}

impl FanOutCache {
    fn new(positions: &[Pos], phy: &PhyParams, floor_w: f64) -> Self {
        // Smallest distance already below the floor predicate, padded so
        // bisection slop can't exclude a passing node; the exact per-node
        // predicate decides membership either way.
        let candidate_range_m = phy.range_for_mean_power(floor_w / 100.0) * 1.001 + 1.0;
        // Full-range cells: finer cells shrink the superset scan but double
        // the crossing rate (and with it patch/epoch traffic), which costs
        // more than the scan saves at realistic densities. `rings` is
        // computed rather than assumed so the invariant
        // `rings × cell ≥ candidate_range` survives the grid widening its
        // cells (per-axis cap or degenerate extents).
        let grid = NeighborIndex::build(positions, candidate_range_m);
        let mut rings = 1usize;
        while (rings as f64) * grid.cell_size_m() < candidate_range_m {
            rings += 1;
        }
        let (cols, rows) = grid.grid_dims();
        FanOutCache {
            positions: positions.to_vec(),
            candidate_range_m,
            grid,
            rings,
            epoch: 0,
            cell_epochs: vec![CellEpochs::default(); cols * rows],
            cell_logs: vec![CellLog::new(); cols * rows],
            last_seq: 0,
            per_tx: vec![None; positions.len()],
            near_scratch: Vec::new(),
            patch_scratch: Vec::new(),
            eval: phy.mean_power_eval(),
        }
    }

    // mesh-lint: hot(index-replay)
    /// Absorb one mobility tick's moves, stamping epochs onto the affected
    /// cells. `stats` is the owning medium's maintenance ledger.
    fn absorb_moves(&mut self, moves: &[PositionDelta], stats: &mut IndexStats) {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut bump = |slot: &mut u64| {
            if *slot != epoch {
                *slot = epoch;
                stats.epoch_bumps += 1;
            }
        };
        for mv in moves {
            let i = mv.node.index();
            self.positions[i] = mv.to;
            match self.grid.update_position(i as u32, mv.to) {
                Some((old, new)) => {
                    stats.rebuckets += 1;
                    bump(&mut self.cell_epochs[old].membership);
                    bump(&mut self.cell_epochs[old].motion);
                    bump(&mut self.cell_epochs[new].membership);
                    bump(&mut self.cell_epochs[new].motion);
                    // Log the crossing, removal first, so cached supersets
                    // can replay membership changes in order.
                    self.last_seq += 1;
                    self.cell_logs[old].push(MembershipPatch {
                        seq: self.last_seq,
                        node: i as u32,
                        added: false,
                    });
                    self.last_seq += 1;
                    self.cell_logs[new].push(MembershipPatch {
                        seq: self.last_seq,
                        node: i as u32,
                        added: true,
                    });
                }
                None => bump(&mut self.cell_epochs[self.grid.node_cell(i as u32)].motion),
            }
        }
    }

    /// Filter `entry.superset` through the exact floor predicate into
    /// `entry.list`, invoking `visit` on each candidate as it is produced
    /// (so a refresh feeds the caller in the same single pass that rebuilds
    /// the list). Membership and order match the full naive scan: the
    /// superset is NodeId-ascending and the predicate is the same, so the
    /// visit sequence draws the same RNG stream as the full scan.
    fn refilter(
        entry: &mut TxEntry,
        scratch: &mut Vec<(u32, f64)>,
        positions: &[Pos],
        p: RefilterParams,
        mut visit: impl FnMut(&Candidate),
    ) {
        let RefilterParams {
            tx,
            candidate_range_m,
            floor_w,
            eval,
        } = p;
        let src = positions[tx.index()];
        // Everything passing the floor predicate lies strictly inside the
        // (padded) candidate range, so nodes beyond it are rejected on
        // squared distance alone — no path-loss math for the bulk of the
        // cell block that merely surrounds the audible disc. The distance
        // pass is branchless (survivors are compacted by a conditional
        // index bump) so the superset scan pipelines regardless of how
        // node order interleaves near and far nodes.
        let range_sq = candidate_range_m * candidate_range_m;
        let floor = floor_w / 100.0;
        // Grow-only: every slot up to `k` is overwritten before it is read,
        // so stale contents beyond `k` never matter and the buffer is not
        // re-zeroed on each refresh.
        if scratch.len() < entry.superset.len() {
            scratch.resize(entry.superset.len(), (0, 0.0));
        }
        let mut k = 0usize;
        // The superset never contains `tx` itself (excluded at rebuild and
        // patch time), so the pass is a pure distance test.
        for &i in &entry.superset {
            let d_sq = src.distance_sq(positions[i as usize]);
            scratch[k] = (i, d_sq);
            k += usize::from(d_sq <= range_sq);
        }
        entry.list.clear();
        for &(i, d_sq) in &scratch[..k] {
            let d = d_sq.sqrt();
            let mean_w = eval.eval(d);
            if mean_w < floor {
                continue;
            }
            let c = Candidate {
                node: NodeId::new(i),
                mean_w,
                dist_m: d,
            };
            entry.list.push(c);
            visit(&c);
        }
    }

    /// Produce `tx`'s candidates in NodeId order, invoking `visit` once per
    /// candidate. Serves from the cached list when nothing nearby moved;
    /// otherwise patches/rebuilds the superset and re-filters, visiting each
    /// candidate in the same pass that rebuilds the list.
    fn plan_with(
        &mut self,
        tx: NodeId,
        floor_w: f64,
        stats: &mut IndexStats,
        mut visit: impl FnMut(&Candidate),
    ) {
        let params = RefilterParams {
            tx,
            candidate_range_m: self.candidate_range_m,
            floor_w,
            eval: self.eval,
        };
        let cell = self.grid.node_cell(tx.index() as u32);
        let (mut mem_max, mut mot_max) = (0u64, 0u64);
        self.grid.for_each_block_cell(cell, self.rings, |c| {
            let e = self.cell_epochs[c];
            mem_max = mem_max.max(e.membership);
            mot_max = mot_max.max(e.motion);
        });
        let slot = &mut self.per_tx[tx.index()];
        let stale_superset = match slot {
            Some(e) => e.home_cell as usize != cell || e.seen_membership < mem_max,
            None => true,
        };
        if stale_superset {
            // A stale superset is usually a few cell crossings old, not
            // wrong everywhere: if every block cell still retains all
            // patches newer than the superset, replaying them (ordered
            // insert/remove) brings it current without a grid query or a
            // sort. Only log overflow or a transmitter that itself changed
            // cells forces the full rebuild.
            let patchable = match slot {
                Some(e) if e.home_cell as usize == cell => {
                    let seen = e.seen_seq;
                    self.patch_scratch.clear();
                    let mut ok = true;
                    let (logs, patches) = (&self.cell_logs, &mut self.patch_scratch);
                    self.grid.for_each_block_cell(cell, self.rings, |c| {
                        let log = &logs[c];
                        ok &= seen + 1 >= log.retained_from;
                        // Logs are seq-ascending, so the patches newer than
                        // the entry are exactly the tail past the partition
                        // point — typically empty or a couple of entries,
                        // never a scan of the whole retained history.
                        let start = log.patches.partition_point(|p| p.seq <= seen);
                        patches.extend_from_slice(&log.patches[start..]);
                    });
                    ok
                }
                _ => false,
            };
            let entry = slot.get_or_insert_with(|| TxEntry {
                home_cell: 0,
                seen_membership: 0,
                seen_motion: 0,
                seen_seq: 0,
                // mesh-lint: allow(R8, "capacity-0 Vec::new() does not allocate; the buffers grow on the entry's first rebuild only")
                superset: Vec::new(),
                // mesh-lint: allow(R8, "capacity-0 Vec::new() does not allocate; the buffers grow on the entry's first rebuild only")
                list: Vec::new(),
            });
            if patchable {
                stats.cache_refreshes += 1;
                self.patch_scratch.sort_unstable_by_key(|p| p.seq);
                for p in &self.patch_scratch {
                    // The transmitter is never a member of its own superset;
                    // its crossings (which kept `home_cell` unchanged, or we
                    // would be rebuilding) replay as no-ops.
                    if p.node as usize == tx.index() {
                        continue;
                    }
                    match (p.added, entry.superset.binary_search(&p.node)) {
                        (true, Err(at)) => entry.superset.insert(at, p.node),
                        (false, Ok(at)) => {
                            entry.superset.remove(at);
                        }
                        // A patch re-adding a present node (or removing an
                        // absent one) cannot happen: patches replay the
                        // grid's own bucket operations in sequence order.
                        (added, _) => debug_assert!(false, "inconsistent patch added={added}"),
                    }
                }
            } else {
                stats.cache_rebuilds += 1;
                entry.home_cell = cell as u32;
                entry.superset.clear();
                self.grid
                    .nodes_in_block(cell, self.rings, &mut entry.superset);
                // NodeId-ascending so the RNG draw order matches the full
                // scan; the transmitter itself (always bucketed in its own
                // block) is excluded so the refilter pass needs no self-test.
                entry.superset.sort_unstable();
                if let Ok(at) = entry.superset.binary_search(&(tx.index() as u32)) {
                    entry.superset.remove(at);
                }
            }
            entry.seen_membership = self.epoch;
            entry.seen_motion = self.epoch;
            entry.seen_seq = self.last_seq;
            Self::refilter(
                entry,
                &mut self.near_scratch,
                &self.positions,
                params,
                visit,
            );
        } else {
            // mesh-lint: allow(R6, "stale_superset above is true whenever the slot is None, so this branch only runs on an occupied slot")
            let entry = slot.as_mut().expect("entry exists when not stale");
            if entry.seen_motion < mot_max {
                stats.cache_refreshes += 1;
                entry.seen_motion = self.epoch;
                entry.seen_seq = self.last_seq;
                Self::refilter(
                    entry,
                    &mut self.near_scratch,
                    &self.positions,
                    params,
                    visit,
                );
            } else {
                stats.cache_hits += 1;
                for c in &entry.list {
                    visit(c);
                }
            }
        }
    }
    // mesh-lint: end-hot

    /// Write the cache's mutable state. The derived fields
    /// (`candidate_range_m`, `rings`, `eval`) are functions of the medium's
    /// PHY configuration and the grid's cell size, so they are recomputed on
    /// restore instead of serialized; the scratch buffers are transient and
    /// restore empty.
    fn snap_state(&self, w: &mut SnapWriter) {
        self.positions.snap(w);
        self.grid.snap(w);
        w.put_u64(self.epoch);
        self.cell_epochs.snap(w);
        self.cell_logs.snap(w);
        w.put_u64(self.last_seq);
        self.per_tx.snap(w);
    }

    /// Rebuild a cache from a checkpoint written by
    /// [`FanOutCache::snap_state`]. The serialized grid keeps the frame it
    /// was built with (fixed at the *initial* positions), so `rings` is
    /// recomputed against its cell size — building a fresh grid from the
    /// current (moved) positions could choose a different frame and diverge.
    fn unsnap_state(
        r: &mut SnapReader<'_>,
        phy: &PhyParams,
        floor_w: f64,
    ) -> Result<Self, SnapError> {
        let positions: Vec<Pos> = Snap::unsnap(r)?;
        let grid: NeighborIndex = Snap::unsnap(r)?;
        let epoch = r.u64()?;
        let cell_epochs: Vec<CellEpochs> = Snap::unsnap(r)?;
        let cell_logs: Vec<CellLog> = Snap::unsnap(r)?;
        let last_seq = r.u64()?;
        let per_tx: Vec<Option<TxEntry>> = Snap::unsnap(r)?;
        let (cols, rows) = grid.grid_dims();
        if cell_epochs.len() != cols * rows
            || cell_logs.len() != cols * rows
            || per_tx.len() != positions.len()
        {
            return Err(SnapError::StateMismatch("fan-out cache geometry"));
        }
        let candidate_range_m = phy.range_for_mean_power(floor_w / 100.0) * 1.001 + 1.0;
        let mut rings = 1usize;
        while (rings as f64) * grid.cell_size_m() < candidate_range_m {
            rings += 1;
        }
        Ok(FanOutCache {
            positions,
            candidate_range_m,
            grid,
            rings,
            epoch,
            cell_epochs,
            cell_logs,
            last_seq,
            per_tx,
            near_scratch: Vec::new(),
            patch_scratch: Vec::new(),
            eval: phy.mean_power_eval(),
        })
    }
}

/// Physics-based medium: path loss + fading from node positions.
///
/// By default the medium runs **indexed**: per-transmitter candidate lists
/// (who can possibly hear me, at what mean power and delay) are computed once
/// per positions snapshot via a [`NeighborIndex`] grid and replayed per
/// frame, so static topologies pay the O(N) geometry math once instead of
/// per transmission. Mobility invalidates the caches through
/// [`Medium::invalidate_positions`].
///
/// Determinism is preserved exactly: candidate membership is the same
/// predicate the full scan applies, lists are NodeId-ascending, and fading is
/// sampled from the cached mean with the same RNG draws — a fixed
/// `(config, seed)` produces bit-identical results with indexing on or off.
#[derive(Debug, Clone)]
pub struct PhysicalMedium {
    phy: PhyParams,
    /// Powers below `cs_threshold * floor_factor` are dropped outright; they
    /// cannot affect carrier sense or capture in the reception model.
    floor_w: f64,
    indexed: bool,
    /// Maintain the index across [`Medium::positions_changed`] instead of
    /// discarding it (on by default; off reproduces the wholesale-rebuild
    /// cost model for benchmarks).
    incremental: bool,
    stats: IndexStats,
    cache: Option<FanOutCache>,
    /// Fault-injected per-link overrides; empty in fault-free runs, and the
    /// fan-out fast-paths on that so clean runs draw the exact same RNG
    /// stream they did before fault injection existed. A `BTreeMap` because
    /// checkpointing serializes it in iteration order (mesh-lint rule R1).
    faults: BTreeMap<(NodeId, NodeId), LinkEffect>,
}

impl PhysicalMedium {
    /// Create a physical medium with the given PHY parameters.
    pub fn new(phy: PhyParams) -> Self {
        let floor_w = phy.cs_threshold_w;
        PhysicalMedium {
            phy,
            floor_w,
            indexed: true,
            incremental: true,
            stats: IndexStats::default(),
            cache: None,
            faults: BTreeMap::new(),
        }
    }

    /// Resolve a fault override into a possibly-adjusted power; `None` means
    /// the receiver hears nothing from this frame.
    fn apply_fault(
        faults: &BTreeMap<(NodeId, NodeId), LinkEffect>,
        tx: NodeId,
        rx: NodeId,
        power: f64,
        rng: &mut SimRng,
    ) -> Option<f64> {
        match faults.get(&(tx, rx)) {
            None => Some(power),
            Some(LinkEffect::Blackout) => None,
            Some(LinkEffect::Attenuate(k)) => Some(power * k),
            Some(LinkEffect::ExtraLoss(p)) => {
                if rng.chance(*p) {
                    None
                } else {
                    Some(power)
                }
            }
        }
    }

    /// Enable or disable the spatial index / candidate caches (on by
    /// default). Disabled, every fan-out is a full O(N) scan — useful as the
    /// reference implementation in equivalence tests and benchmarks.
    pub fn with_indexing(mut self, indexed: bool) -> Self {
        self.indexed = indexed;
        self.cache = None;
        self
    }

    /// Whether the spatial index is enabled.
    pub fn indexing(&self) -> bool {
        self.indexed
    }

    /// Enable or disable incremental index maintenance (on by default).
    /// Disabled, every [`Medium::positions_changed`] discards the whole
    /// cache — the pre-incremental cost model, kept as the rebuild
    /// reference in benchmarks and equivalence tests. No effect unless
    /// indexing is enabled.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self.cache = None;
        self
    }

    /// Whether incremental index maintenance is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    fn fan_out_scan(&self, tx: NodeId, positions: &[Pos], rng: &mut SimRng, out: &mut Vec<RxPlan>) {
        let src = positions[tx.index()];
        for (i, &pos) in positions.iter().enumerate() {
            if i == tx.index() {
                continue;
            }
            let d = src.distance_to(pos);
            // Skip nodes whose *mean* power is hopelessly below the floor
            // (fading is unit-mean; a 100x margin keeps the tail harmless
            // while pruning the fan-out for large networks).
            if self.phy.mean_rx_power_w(d) < self.floor_w / 100.0 {
                continue;
            }
            let mut power = self.phy.sample_rx_power_w(d, rng);
            if !self.faults.is_empty() {
                match Self::apply_fault(&self.faults, tx, NodeId::new(i as u32), power, rng) {
                    Some(p) => power = p,
                    None => continue,
                }
            }
            if power < self.floor_w {
                continue;
            }
            out.push(RxPlan {
                node: NodeId::new(i as u32),
                power_w: power,
                delay: self.phy.propagation_delay(d),
            });
        }
    }
}

impl Default for PhysicalMedium {
    fn default() -> Self {
        PhysicalMedium::new(PhyParams::default())
    }
}

impl Medium for PhysicalMedium {
    // mesh-lint: hot(fan-out)
    fn fan_out(
        &mut self,
        tx: NodeId,
        positions: &[Pos],
        _now: SimTime,
        rng: &mut SimRng,
        out: &mut Vec<RxPlan>,
    ) {
        if !self.indexed {
            self.fan_out_scan(tx, positions, rng, out);
            return;
        }
        let Self {
            cache,
            phy,
            floor_w,
            faults,
            stats,
            ..
        } = self;
        let cache = match cache {
            Some(c) if c.positions.len() == positions.len() => c,
            slot => slot.insert(FanOutCache::new(positions, phy, *floor_w)),
        };
        debug_assert_eq!(
            cache.positions, positions,
            "positions changed without Medium::positions_changed()"
        );
        let floor_w = *floor_w;
        // Common tail of both sampling variants below: fault resolution,
        // floor cut, and plan emission (delay computed lazily, only here).
        let mut emit = |c: &Candidate, mut power: f64, rng: &mut SimRng| {
            if !faults.is_empty() {
                match Self::apply_fault(faults, tx, c.node, power, rng) {
                    Some(p) => power = p,
                    None => return,
                }
            }
            if power < floor_w {
                return;
            }
            out.push(RxPlan {
                node: c.node,
                power_w: power,
                delay: phy.propagation_delay(c.dist_m),
            });
        };
        // `sample_from_mean_w` re-dispatches on the shadowing and fading
        // configuration per candidate; hoist the dispatch out of the loop
        // for the default (Rayleigh, no shadowing), where the sample is
        // exactly `mean * rayleigh_power_gain()` — the same operation on the
        // same RNG draw, so the specialization is bit-identical.
        let plain_rayleigh =
            phy.shadowing_sigma_db <= 0.0 && matches!(phy.fading, FadingModel::Rayleigh);
        if plain_rayleigh {
            cache.plan_with(tx, floor_w, stats, |c| {
                let power = c.mean_w * rng.rayleigh_power_gain();
                emit(c, power, rng);
            });
        } else {
            cache.plan_with(tx, floor_w, stats, |c| {
                let power = phy.sample_from_mean_w(c.mean_w, rng);
                emit(c, power, rng);
            });
        }
    }
    // mesh-lint: end-hot

    fn phy(&self) -> &PhyParams {
        &self.phy
    }

    fn invalidate_positions(&mut self) {
        if self.indexed && self.cache.is_some() {
            self.stats.full_invalidations += 1;
        }
        self.cache = None;
    }

    fn positions_changed(&mut self, moves: &[PositionDelta], positions: &[Pos]) {
        if !self.indexed {
            return; // the scan path reads positions directly, nothing cached
        }
        if !self.incremental {
            self.invalidate_positions();
            return;
        }
        match self.cache.as_mut() {
            // Not built yet (or node count changed — not a supported move
            // set): the next fan_out builds from the current positions.
            Some(c) if c.positions.len() != positions.len() => self.cache = None,
            Some(c) => c.absorb_moves(moves, &mut self.stats),
            None => {}
        }
    }

    fn index_stats(&self) -> Option<IndexStats> {
        self.indexed.then_some(self.stats)
    }

    fn set_link_fault(&mut self, from: NodeId, to: NodeId, effect: LinkEffect) {
        self.faults.insert((from, to), effect);
    }

    fn clear_link_fault(&mut self, from: NodeId, to: NodeId) {
        self.faults.remove(&(from, to));
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.stats.snap(w);
        self.faults.snap(w);
        match &self.cache {
            Some(c) => {
                w.put_bool(true);
                c.snap_state(w);
            }
            None => w.put_bool(false),
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stats = Snap::unsnap(r)?;
        self.faults = Snap::unsnap(r)?;
        self.cache = if r.bool()? {
            Some(FanOutCache::unsnap_state(r, &self.phy, self.floor_w)?)
        } else {
            None
        };
        Ok(())
    }
}

/// Trace/table-driven medium: reception is a Bernoulli trial per directed
/// link, ignoring positions and physics.
///
/// This models environments — like the paper's indoor testbed — where link
/// quality is dominated by obstacles rather than distance. A lost frame is
/// still delivered to the receiver *below the decode threshold*, so it
/// occupies the channel (carrier sense, collisions) exactly like a real
/// corrupted frame would.
///
/// Links absent from the table can never carry or interfere. Loss
/// probabilities may be changed between events ([`LinkTableMedium::set_loss`])
/// to model temporal variation.
#[derive(Debug, Clone)]
pub struct LinkTableMedium {
    phy: PhyParams,
    /// Directed link -> loss probability in `[0, 1]`. A `BTreeMap` because
    /// `rebuild_adjacency` traverses it; hash-order traversal is banned in
    /// this crate (mesh-lint rule R1). The `faults` maps are `BTreeMap`s for
    /// the same reason: checkpointing serializes them in iteration order.
    links: BTreeMap<(NodeId, NodeId), f64>,
    /// Per-transmitter outgoing links `(receiver, loss)` sorted by receiver,
    /// so `fan_out` iterates actual links instead of probing the map per
    /// node. Rebuilt lazily after any mutation.
    adjacency: Vec<Vec<(NodeId, f64)>>,
    adjacency_stale: bool,
    /// Fixed propagation delay applied to every link.
    delay: SimDuration,
    /// Fault-injected per-link overrides. These compose with (rather than
    /// replace) the base loss process set via [`LinkTableMedium::set_loss`]:
    /// an `ExtraLoss(p)` makes the effective loss `1 - (1-base)(1-p)`.
    faults: BTreeMap<(NodeId, NodeId), LinkEffect>,
}

impl LinkTableMedium {
    /// Create an empty table medium (no links).
    pub fn new() -> Self {
        LinkTableMedium {
            // Thresholds are kept from the default PHY; emitted powers are
            // chosen relative to them.
            phy: PhyParams::default(),
            links: BTreeMap::new(),
            adjacency: Vec::new(),
            adjacency_stale: false,
            delay: SimDuration::from_nanos(200),
            faults: BTreeMap::new(),
        }
    }

    /// Add (or update) a **bidirectional** link with the given loss
    /// probability in each direction.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1]`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, loss: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.links.insert((a, b), loss);
        self.links.insert((b, a), loss);
        self.adjacency_stale = true;
        self
    }

    /// Set the loss probability of one **directed** link (must exist).
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist or `loss` is not in `[0, 1]`.
    pub fn set_loss(&mut self, from: NodeId, to: NodeId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        let slot = self
            .links
            .get_mut(&(from, to))
            // mesh-lint: allow(R6, "documented # Panics contract: scenario construction API, misuse is a caller bug caught before any run starts")
            .expect("link must be added before set_loss");
        *slot = loss;
        // Membership and order are unchanged; patch the adjacency in place
        // (media like the testbed walk losses every few sim-seconds, and a
        // full rebuild per walk step would defeat the point of the lists).
        if !self.adjacency_stale {
            if let Some(list) = self.adjacency.get_mut(from.index()) {
                if let Ok(i) = list.binary_search_by_key(&to, |&(n, _)| n) {
                    list[i].1 = loss;
                }
            }
        }
    }

    /// Current loss probability of a directed link, if present.
    pub fn loss(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.links.get(&(from, to)).copied()
    }

    /// Directed links in the table.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    fn rebuild_adjacency(&mut self) {
        let n = self
            .links
            .keys()
            .map(|&(from, _)| from.index() + 1)
            .max()
            .unwrap_or(0);
        self.adjacency.clear();
        self.adjacency.resize(n, Vec::new());
        for (&(from, to), &loss) in &self.links {
            self.adjacency[from.index()].push((to, loss));
        }
        for list in &mut self.adjacency {
            // NodeId-ascending: the RNG draw order must match the old
            // 0..N map-probe loop.
            list.sort_unstable_by_key(|&(node, _)| node);
        }
        self.adjacency_stale = false;
    }
}

impl Default for LinkTableMedium {
    fn default() -> Self {
        LinkTableMedium::new()
    }
}

impl Medium for LinkTableMedium {
    fn fan_out(
        &mut self,
        tx: NodeId,
        positions: &[Pos],
        _now: SimTime,
        rng: &mut SimRng,
        out: &mut Vec<RxPlan>,
    ) {
        if self.adjacency_stale {
            self.rebuild_adjacency();
        }
        let Some(list) = self.adjacency.get(tx.index()) else {
            return;
        };
        for &(node, loss) in list {
            // The old full scan only considered ids below the positions
            // length and never the transmitter; keep both for identical
            // RNG draw order.
            if node == tx || node.index() >= positions.len() {
                continue;
            }
            // Fault overrides fold into the link's loss process so each link
            // still costs exactly one RNG draw; fault-free runs take the
            // empty-map fast path and draw the identical stream.
            let fault = if self.faults.is_empty() {
                None
            } else {
                self.faults.get(&(tx, node))
            };
            if matches!(fault, Some(LinkEffect::Blackout)) {
                continue;
            }
            let eff_loss = match fault {
                Some(LinkEffect::ExtraLoss(p)) => 1.0 - (1.0 - loss) * (1.0 - p),
                _ => loss,
            };
            let decodable = !rng.chance(eff_loss);
            let mut power = if decodable {
                self.phy.rx_threshold_w * 10.0
            } else {
                // Below decode, above carrier sense: busies the channel.
                self.phy.cs_threshold_w * 2.0
            };
            if let Some(LinkEffect::Attenuate(k)) = fault {
                power *= k;
            }
            out.push(RxPlan {
                node,
                power_w: power,
                delay: self.delay,
            });
        }
    }

    fn phy(&self) -> &PhyParams {
        &self.phy
    }

    fn set_link_fault(&mut self, from: NodeId, to: NodeId, effect: LinkEffect) {
        self.faults.insert((from, to), effect);
    }

    fn clear_link_fault(&mut self, from: NodeId, to: NodeId) {
        self.faults.remove(&(from, to));
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        // `links` mutates at runtime (testbed loss walks via `set_loss`);
        // the adjacency lists are derived, so only staleness is implied —
        // restore marks them stale and the next fan_out rebuilds.
        self.links.snap(w);
        self.faults.snap(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.links = Snap::unsnap(r)?;
        self.faults = Snap::unsnap(r)?;
        self.adjacency.clear();
        self.adjacency_stale = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions() -> Vec<Pos> {
        vec![
            Pos::new(0.0, 0.0),
            Pos::new(100.0, 0.0),
            Pos::new(400.0, 0.0),
            Pos::new(5000.0, 0.0),
        ]
    }

    #[test]
    fn fan_out_excludes_sender() {
        let mut m = PhysicalMedium::default();
        let mut rng = SimRng::seed_from(1);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.iter().all(|p| p.node != NodeId::new(0)));
    }

    #[test]
    fn far_node_never_hears() {
        let mut m = PhysicalMedium::default();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..200 {
            let mut out = Vec::new();
            m.fan_out(
                NodeId::new(0),
                &positions(),
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            assert!(out.iter().all(|p| p.node != NodeId::new(3)));
        }
    }

    #[test]
    fn near_node_usually_hears_strongly() {
        let mut m = PhysicalMedium::default();
        let mut rng = SimRng::seed_from(3);
        let mut decodable = 0;
        let trials = 500;
        for _ in 0..trials {
            let mut out = Vec::new();
            m.fan_out(
                NodeId::new(0),
                &positions(),
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            if out
                .iter()
                .any(|p| p.node == NodeId::new(1) && p.power_w >= m.phy().rx_threshold_w)
            {
                decodable += 1;
            }
        }
        assert!(decodable as f64 / trials as f64 > 0.85);
    }

    #[test]
    fn delays_increase_with_distance() {
        let mut m = PhysicalMedium::new(PhyParams {
            fading: crate::propagation::FadingModel::None,
            ..PhyParams::default()
        });
        let mut rng = SimRng::seed_from(4);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        let d1 = out.iter().find(|p| p.node == NodeId::new(1)).unwrap().delay;
        let d2 = out.iter().find(|p| p.node == NodeId::new(2)).unwrap().delay;
        assert!(d2 > d1);
    }

    #[test]
    fn no_fading_fan_out_is_deterministic() {
        let mut m = PhysicalMedium::new(PhyParams {
            fading: crate::propagation::FadingModel::None,
            ..PhyParams::default()
        });
        let mut rng = SimRng::seed_from(5);
        let mut a = Vec::new();
        let mut b = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut a,
        );
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut b,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn link_table_respects_topology() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
        assert_eq!(m.num_links(), 2);
        let mut rng = SimRng::seed_from(6);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].node, NodeId::new(1));
        assert!(out[0].power_w >= m.phy().rx_threshold_w);
        // Node 2 has no link from 0: never appears.
        out.clear();
        m.fan_out(
            NodeId::new(2),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn link_table_loss_rate_matches_probability() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.4);
        let mut rng = SimRng::seed_from(7);
        let trials = 20_000;
        let mut decoded = 0;
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            m.fan_out(
                NodeId::new(0),
                &positions(),
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            // A lost frame is still sensed, just not decodable.
            assert_eq!(out.len(), 1);
            if out[0].power_w >= m.phy().rx_threshold_w {
                decoded += 1;
            }
        }
        let rate = decoded as f64 / trials as f64;
        assert!((rate - 0.6).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn link_table_set_loss_updates_direction() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.1);
        m.set_loss(NodeId::new(0), NodeId::new(1), 0.9);
        assert_eq!(m.loss(NodeId::new(0), NodeId::new(1)), Some(0.9));
        assert_eq!(m.loss(NodeId::new(1), NodeId::new(0)), Some(0.1));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn link_table_rejects_bad_loss() {
        LinkTableMedium::new().add_link(NodeId::new(0), NodeId::new(1), 1.5);
    }

    #[test]
    fn link_table_blackout_silences_one_direction() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::Blackout);
        let mut rng = SimRng::seed_from(8);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.is_empty(), "blacked-out link emitted {out:?}");
        // Reverse direction unaffected.
        m.fan_out(
            NodeId::new(1),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        // Clearing restores the link.
        m.clear_link_fault(NodeId::new(0), NodeId::new(1));
        out.clear();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn link_table_extra_loss_composes_with_base() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.2);
        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::ExtraLoss(0.5));
        let mut rng = SimRng::seed_from(9);
        let trials = 20_000;
        let mut decoded = 0;
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            m.fan_out(
                NodeId::new(0),
                &positions(),
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            if out[0].power_w >= m.phy().rx_threshold_w {
                decoded += 1;
            }
        }
        // Effective delivery = (1-0.2)*(1-0.5) = 0.4.
        let rate = decoded as f64 / trials as f64;
        assert!((rate - 0.4).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn link_table_attenuation_kills_decode_but_keeps_energy() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::Attenuate(0.01));
        let mut rng = SimRng::seed_from(10);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].power_w < m.phy().rx_threshold_w);
    }

    #[test]
    fn physical_blackout_and_attenuation() {
        let phy = PhyParams {
            fading: crate::propagation::FadingModel::None,
            ..PhyParams::default()
        };
        let mut m = PhysicalMedium::new(phy);
        let mut rng = SimRng::seed_from(11);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        let clean_power = out
            .iter()
            .find(|p| p.node == NodeId::new(1))
            .expect("node 1 in range")
            .power_w;

        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::Blackout);
        out.clear();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.iter().all(|p| p.node != NodeId::new(1)));

        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::Attenuate(0.5));
        out.clear();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        let attenuated = out
            .iter()
            .find(|p| p.node == NodeId::new(1))
            .expect("attenuated but audible")
            .power_w;
        assert!((attenuated - clean_power * 0.5).abs() < clean_power * 1e-9);

        m.clear_link_fault(NodeId::new(0), NodeId::new(1));
        out.clear();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.iter().any(|p| p.node == NodeId::new(1)));
    }
}
