//! The shared wireless medium.
//!
//! A [`Medium`] decides, for each transmission, which nodes hear it, at what
//! power, and after what propagation delay. Two implementations are provided:
//!
//! * [`PhysicalMedium`] — positions + path loss + fading (the simulation
//!   configuration of the paper), and
//! * trace-driven media (see the `testbed` crate) that replace physics with
//!   measured/synthetic per-link loss processes, used to reproduce the
//!   testbed experiments.

use crate::geometry::Pos;
use crate::ids::NodeId;
use crate::neighbor_index::NeighborIndex;
use crate::propagation::PhyParams;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A fault-injected override applied to one directed link (see
/// [`crate::fault`]). Effects replace each other: setting a second effect on
/// the same link overwrites the first, and clearing removes any effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkEffect {
    /// Additional Bernoulli loss composed with the link's base loss process:
    /// a frame that would have been received is independently dropped with
    /// this probability.
    ExtraLoss(f64),
    /// Multiply the received power by this factor (`< 1.0` attenuates). On a
    /// [`PhysicalMedium`] this models an obstruction; on threshold-based
    /// media a factor below the decode margin silences the link.
    Attenuate(f64),
    /// The link carries nothing at all (not even channel-busying energy).
    Blackout,
}

/// One receiver's view of a transmitted frame, as decided by the medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxPlan {
    /// The receiving node.
    pub node: NodeId,
    /// Received power in watts (already includes fading/shadowing).
    pub power_w: f64,
    /// Propagation delay from transmitter to this receiver.
    pub delay: SimDuration,
}

/// Strategy deciding who hears a transmission and how strongly.
///
/// Implementations must be deterministic given the `rng` stream. Receivers
/// whose power would fall below any threshold of interest may simply be
/// omitted from `out`.
pub trait Medium {
    /// Plan the reception of one frame transmitted by `tx` at `now`.
    ///
    /// Appends one [`RxPlan`] per node that hears any energy. Must not include
    /// `tx` itself.
    fn fan_out(
        &mut self,
        tx: NodeId,
        positions: &[Pos],
        now: SimTime,
        rng: &mut SimRng,
        out: &mut Vec<RxPlan>,
    );

    /// The PHY parameters (thresholds, capture ratio) the world should use to
    /// interpret the powers this medium emits.
    fn phy(&self) -> &PhyParams;

    /// Notification that node positions have (or may have) changed since the
    /// last `fan_out`. Media that cache anything derived from geometry must
    /// drop those caches here. The world calls this on every mobility step;
    /// the default is a no-op for media that don't look at positions.
    fn invalidate_positions(&mut self) {}

    /// Apply a fault-injected [`LinkEffect`] to the directed link
    /// `from -> to`, replacing any previous effect on it. Media that do not
    /// model per-link faults may ignore this (the default).
    fn set_link_fault(&mut self, from: NodeId, to: NodeId, effect: LinkEffect) {
        let _ = (from, to, effect);
    }

    /// Remove any fault-injected effect from the directed link `from -> to`
    /// (no-op if none is set).
    fn clear_link_fault(&mut self, from: NodeId, to: NodeId) {
        let _ = (from, to);
    }
}

/// A potential receiver of one transmitter, with its geometry-derived
/// quantities precomputed. Membership is exactly the old full-scan predicate
/// `mean_rx_power_w(d) >= floor_w / 100`, and lists are NodeId-ascending, so
/// replaying a cached list draws the same RNG sequence as the full scan.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    node: NodeId,
    mean_w: f64,
    delay: SimDuration,
}

/// Geometry caches for [`PhysicalMedium`], valid for one positions snapshot.
#[derive(Debug, Clone)]
struct FanOutCache {
    /// The snapshot the cache was built against; checked (debug builds) to
    /// catch positions changing without `invalidate_positions`.
    positions: Vec<Pos>,
    /// Search radius covering every node that can pass the floor predicate.
    candidate_range_m: f64,
    grid: NeighborIndex,
    /// Lazily-built candidate list per transmitter.
    per_tx: Vec<Option<Box<[Candidate]>>>,
    /// Scratch buffer for grid queries.
    scratch: Vec<u32>,
}

impl FanOutCache {
    fn new(positions: &[Pos], phy: &PhyParams, floor_w: f64) -> Self {
        // Smallest distance already below the floor predicate, padded so
        // bisection slop can't exclude a passing node; the exact per-node
        // predicate decides membership either way.
        let candidate_range_m = phy.range_for_mean_power(floor_w / 100.0) * 1.001 + 1.0;
        FanOutCache {
            positions: positions.to_vec(),
            candidate_range_m,
            grid: NeighborIndex::build(positions, candidate_range_m),
            per_tx: vec![None; positions.len()],
            scratch: Vec::new(),
        }
    }

    fn candidates_for(&mut self, tx: NodeId, phy: &PhyParams, floor_w: f64) -> &[Candidate] {
        let slot = &mut self.per_tx[tx.index()];
        if slot.is_none() {
            let src = self.positions[tx.index()];
            self.scratch.clear();
            self.grid
                .candidates_within(src, self.candidate_range_m, &mut self.scratch);
            // NodeId-ascending so the RNG draw order matches the full scan.
            self.scratch.sort_unstable();
            let mut list = Vec::with_capacity(self.scratch.len());
            for &i in &self.scratch {
                if i as usize == tx.index() {
                    continue;
                }
                let d = src.distance_to(self.positions[i as usize]);
                if phy.mean_rx_power_w(d) < floor_w / 100.0 {
                    continue;
                }
                list.push(Candidate {
                    node: NodeId::new(i),
                    mean_w: phy.mean_rx_power_w(d),
                    delay: phy.propagation_delay(d),
                });
            }
            *slot = Some(list.into_boxed_slice());
        }
        slot.as_deref().unwrap()
    }
}

/// Physics-based medium: path loss + fading from node positions.
///
/// By default the medium runs **indexed**: per-transmitter candidate lists
/// (who can possibly hear me, at what mean power and delay) are computed once
/// per positions snapshot via a [`NeighborIndex`] grid and replayed per
/// frame, so static topologies pay the O(N) geometry math once instead of
/// per transmission. Mobility invalidates the caches through
/// [`Medium::invalidate_positions`].
///
/// Determinism is preserved exactly: candidate membership is the same
/// predicate the full scan applies, lists are NodeId-ascending, and fading is
/// sampled from the cached mean with the same RNG draws — a fixed
/// `(config, seed)` produces bit-identical results with indexing on or off.
#[derive(Debug, Clone)]
pub struct PhysicalMedium {
    phy: PhyParams,
    /// Powers below `cs_threshold * floor_factor` are dropped outright; they
    /// cannot affect carrier sense or capture in the reception model.
    floor_w: f64,
    indexed: bool,
    cache: Option<FanOutCache>,
    /// Fault-injected per-link overrides; empty in fault-free runs, and the
    /// fan-out fast-paths on that so clean runs draw the exact same RNG
    /// stream they did before fault injection existed.
    faults: std::collections::HashMap<(NodeId, NodeId), LinkEffect>,
}

impl PhysicalMedium {
    /// Create a physical medium with the given PHY parameters.
    pub fn new(phy: PhyParams) -> Self {
        let floor_w = phy.cs_threshold_w;
        PhysicalMedium {
            phy,
            floor_w,
            indexed: true,
            cache: None,
            faults: std::collections::HashMap::new(),
        }
    }

    /// Resolve a fault override into a possibly-adjusted power; `None` means
    /// the receiver hears nothing from this frame.
    fn apply_fault(
        faults: &std::collections::HashMap<(NodeId, NodeId), LinkEffect>,
        tx: NodeId,
        rx: NodeId,
        power: f64,
        rng: &mut SimRng,
    ) -> Option<f64> {
        match faults.get(&(tx, rx)) {
            None => Some(power),
            Some(LinkEffect::Blackout) => None,
            Some(LinkEffect::Attenuate(k)) => Some(power * k),
            Some(LinkEffect::ExtraLoss(p)) => {
                if rng.chance(*p) {
                    None
                } else {
                    Some(power)
                }
            }
        }
    }

    /// Enable or disable the spatial index / candidate caches (on by
    /// default). Disabled, every fan-out is a full O(N) scan — useful as the
    /// reference implementation in equivalence tests and benchmarks.
    pub fn with_indexing(mut self, indexed: bool) -> Self {
        self.indexed = indexed;
        self.cache = None;
        self
    }

    /// Whether the spatial index is enabled.
    pub fn indexing(&self) -> bool {
        self.indexed
    }

    fn fan_out_scan(&self, tx: NodeId, positions: &[Pos], rng: &mut SimRng, out: &mut Vec<RxPlan>) {
        let src = positions[tx.index()];
        for (i, &pos) in positions.iter().enumerate() {
            if i == tx.index() {
                continue;
            }
            let d = src.distance_to(pos);
            // Skip nodes whose *mean* power is hopelessly below the floor
            // (fading is unit-mean; a 100x margin keeps the tail harmless
            // while pruning the fan-out for large networks).
            if self.phy.mean_rx_power_w(d) < self.floor_w / 100.0 {
                continue;
            }
            let mut power = self.phy.sample_rx_power_w(d, rng);
            if !self.faults.is_empty() {
                match Self::apply_fault(&self.faults, tx, NodeId::new(i as u32), power, rng) {
                    Some(p) => power = p,
                    None => continue,
                }
            }
            if power < self.floor_w {
                continue;
            }
            out.push(RxPlan {
                node: NodeId::new(i as u32),
                power_w: power,
                delay: self.phy.propagation_delay(d),
            });
        }
    }
}

impl Default for PhysicalMedium {
    fn default() -> Self {
        PhysicalMedium::new(PhyParams::default())
    }
}

impl Medium for PhysicalMedium {
    fn fan_out(
        &mut self,
        tx: NodeId,
        positions: &[Pos],
        _now: SimTime,
        rng: &mut SimRng,
        out: &mut Vec<RxPlan>,
    ) {
        if !self.indexed {
            self.fan_out_scan(tx, positions, rng, out);
            return;
        }
        if self
            .cache
            .as_ref()
            .is_none_or(|c| c.positions.len() != positions.len())
        {
            self.cache = Some(FanOutCache::new(positions, &self.phy, self.floor_w));
        }
        let cache = self.cache.as_mut().unwrap();
        debug_assert_eq!(
            cache.positions, positions,
            "positions changed without Medium::invalidate_positions()"
        );
        for c in cache.candidates_for(tx, &self.phy, self.floor_w) {
            let mut power = self.phy.sample_from_mean_w(c.mean_w, rng);
            if !self.faults.is_empty() {
                match Self::apply_fault(&self.faults, tx, c.node, power, rng) {
                    Some(p) => power = p,
                    None => continue,
                }
            }
            if power < self.floor_w {
                continue;
            }
            out.push(RxPlan {
                node: c.node,
                power_w: power,
                delay: c.delay,
            });
        }
    }

    fn phy(&self) -> &PhyParams {
        &self.phy
    }

    fn invalidate_positions(&mut self) {
        self.cache = None;
    }

    fn set_link_fault(&mut self, from: NodeId, to: NodeId, effect: LinkEffect) {
        self.faults.insert((from, to), effect);
    }

    fn clear_link_fault(&mut self, from: NodeId, to: NodeId) {
        self.faults.remove(&(from, to));
    }
}

/// Trace/table-driven medium: reception is a Bernoulli trial per directed
/// link, ignoring positions and physics.
///
/// This models environments — like the paper's indoor testbed — where link
/// quality is dominated by obstacles rather than distance. A lost frame is
/// still delivered to the receiver *below the decode threshold*, so it
/// occupies the channel (carrier sense, collisions) exactly like a real
/// corrupted frame would.
///
/// Links absent from the table can never carry or interfere. Loss
/// probabilities may be changed between events ([`LinkTableMedium::set_loss`])
/// to model temporal variation.
#[derive(Debug, Clone)]
pub struct LinkTableMedium {
    phy: PhyParams,
    /// Directed link -> loss probability in `[0, 1]`. A `BTreeMap` because
    /// `rebuild_adjacency` traverses it; hash-order traversal is banned in
    /// this crate (mesh-lint rule R1). The `faults` maps stay `HashMap`s —
    /// they are only ever probed by key.
    links: std::collections::BTreeMap<(NodeId, NodeId), f64>,
    /// Per-transmitter outgoing links `(receiver, loss)` sorted by receiver,
    /// so `fan_out` iterates actual links instead of probing the map per
    /// node. Rebuilt lazily after any mutation.
    adjacency: Vec<Vec<(NodeId, f64)>>,
    adjacency_stale: bool,
    /// Fixed propagation delay applied to every link.
    delay: SimDuration,
    /// Fault-injected per-link overrides. These compose with (rather than
    /// replace) the base loss process set via [`LinkTableMedium::set_loss`]:
    /// an `ExtraLoss(p)` makes the effective loss `1 - (1-base)(1-p)`.
    faults: std::collections::HashMap<(NodeId, NodeId), LinkEffect>,
}

impl LinkTableMedium {
    /// Create an empty table medium (no links).
    pub fn new() -> Self {
        LinkTableMedium {
            // Thresholds are kept from the default PHY; emitted powers are
            // chosen relative to them.
            phy: PhyParams::default(),
            links: std::collections::BTreeMap::new(),
            adjacency: Vec::new(),
            adjacency_stale: false,
            delay: SimDuration::from_nanos(200),
            faults: std::collections::HashMap::new(),
        }
    }

    /// Add (or update) a **bidirectional** link with the given loss
    /// probability in each direction.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1]`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, loss: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.links.insert((a, b), loss);
        self.links.insert((b, a), loss);
        self.adjacency_stale = true;
        self
    }

    /// Set the loss probability of one **directed** link (must exist).
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist or `loss` is not in `[0, 1]`.
    pub fn set_loss(&mut self, from: NodeId, to: NodeId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        let slot = self
            .links
            .get_mut(&(from, to))
            .expect("link must be added before set_loss");
        *slot = loss;
        // Membership and order are unchanged; patch the adjacency in place
        // (media like the testbed walk losses every few sim-seconds, and a
        // full rebuild per walk step would defeat the point of the lists).
        if !self.adjacency_stale {
            if let Some(list) = self.adjacency.get_mut(from.index()) {
                if let Ok(i) = list.binary_search_by_key(&to, |&(n, _)| n) {
                    list[i].1 = loss;
                }
            }
        }
    }

    /// Current loss probability of a directed link, if present.
    pub fn loss(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.links.get(&(from, to)).copied()
    }

    /// Directed links in the table.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    fn rebuild_adjacency(&mut self) {
        let n = self
            .links
            .keys()
            .map(|&(from, _)| from.index() + 1)
            .max()
            .unwrap_or(0);
        self.adjacency.clear();
        self.adjacency.resize(n, Vec::new());
        for (&(from, to), &loss) in &self.links {
            self.adjacency[from.index()].push((to, loss));
        }
        for list in &mut self.adjacency {
            // NodeId-ascending: the RNG draw order must match the old
            // 0..N map-probe loop.
            list.sort_unstable_by_key(|&(node, _)| node);
        }
        self.adjacency_stale = false;
    }
}

impl Default for LinkTableMedium {
    fn default() -> Self {
        LinkTableMedium::new()
    }
}

impl Medium for LinkTableMedium {
    fn fan_out(
        &mut self,
        tx: NodeId,
        positions: &[Pos],
        _now: SimTime,
        rng: &mut SimRng,
        out: &mut Vec<RxPlan>,
    ) {
        if self.adjacency_stale {
            self.rebuild_adjacency();
        }
        let Some(list) = self.adjacency.get(tx.index()) else {
            return;
        };
        for &(node, loss) in list {
            // The old full scan only considered ids below the positions
            // length and never the transmitter; keep both for identical
            // RNG draw order.
            if node == tx || node.index() >= positions.len() {
                continue;
            }
            // Fault overrides fold into the link's loss process so each link
            // still costs exactly one RNG draw; fault-free runs take the
            // empty-map fast path and draw the identical stream.
            let fault = if self.faults.is_empty() {
                None
            } else {
                self.faults.get(&(tx, node))
            };
            if matches!(fault, Some(LinkEffect::Blackout)) {
                continue;
            }
            let eff_loss = match fault {
                Some(LinkEffect::ExtraLoss(p)) => 1.0 - (1.0 - loss) * (1.0 - p),
                _ => loss,
            };
            let decodable = !rng.chance(eff_loss);
            let mut power = if decodable {
                self.phy.rx_threshold_w * 10.0
            } else {
                // Below decode, above carrier sense: busies the channel.
                self.phy.cs_threshold_w * 2.0
            };
            if let Some(LinkEffect::Attenuate(k)) = fault {
                power *= k;
            }
            out.push(RxPlan {
                node,
                power_w: power,
                delay: self.delay,
            });
        }
    }

    fn phy(&self) -> &PhyParams {
        &self.phy
    }

    fn set_link_fault(&mut self, from: NodeId, to: NodeId, effect: LinkEffect) {
        self.faults.insert((from, to), effect);
    }

    fn clear_link_fault(&mut self, from: NodeId, to: NodeId) {
        self.faults.remove(&(from, to));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions() -> Vec<Pos> {
        vec![
            Pos::new(0.0, 0.0),
            Pos::new(100.0, 0.0),
            Pos::new(400.0, 0.0),
            Pos::new(5000.0, 0.0),
        ]
    }

    #[test]
    fn fan_out_excludes_sender() {
        let mut m = PhysicalMedium::default();
        let mut rng = SimRng::seed_from(1);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.iter().all(|p| p.node != NodeId::new(0)));
    }

    #[test]
    fn far_node_never_hears() {
        let mut m = PhysicalMedium::default();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..200 {
            let mut out = Vec::new();
            m.fan_out(
                NodeId::new(0),
                &positions(),
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            assert!(out.iter().all(|p| p.node != NodeId::new(3)));
        }
    }

    #[test]
    fn near_node_usually_hears_strongly() {
        let mut m = PhysicalMedium::default();
        let mut rng = SimRng::seed_from(3);
        let mut decodable = 0;
        let trials = 500;
        for _ in 0..trials {
            let mut out = Vec::new();
            m.fan_out(
                NodeId::new(0),
                &positions(),
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            if out
                .iter()
                .any(|p| p.node == NodeId::new(1) && p.power_w >= m.phy().rx_threshold_w)
            {
                decodable += 1;
            }
        }
        assert!(decodable as f64 / trials as f64 > 0.85);
    }

    #[test]
    fn delays_increase_with_distance() {
        let mut m = PhysicalMedium::new(PhyParams {
            fading: crate::propagation::FadingModel::None,
            ..PhyParams::default()
        });
        let mut rng = SimRng::seed_from(4);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        let d1 = out.iter().find(|p| p.node == NodeId::new(1)).unwrap().delay;
        let d2 = out.iter().find(|p| p.node == NodeId::new(2)).unwrap().delay;
        assert!(d2 > d1);
    }

    #[test]
    fn no_fading_fan_out_is_deterministic() {
        let mut m = PhysicalMedium::new(PhyParams {
            fading: crate::propagation::FadingModel::None,
            ..PhyParams::default()
        });
        let mut rng = SimRng::seed_from(5);
        let mut a = Vec::new();
        let mut b = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut a,
        );
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut b,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn link_table_respects_topology() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
        assert_eq!(m.num_links(), 2);
        let mut rng = SimRng::seed_from(6);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].node, NodeId::new(1));
        assert!(out[0].power_w >= m.phy().rx_threshold_w);
        // Node 2 has no link from 0: never appears.
        out.clear();
        m.fan_out(
            NodeId::new(2),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn link_table_loss_rate_matches_probability() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.4);
        let mut rng = SimRng::seed_from(7);
        let trials = 20_000;
        let mut decoded = 0;
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            m.fan_out(
                NodeId::new(0),
                &positions(),
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            // A lost frame is still sensed, just not decodable.
            assert_eq!(out.len(), 1);
            if out[0].power_w >= m.phy().rx_threshold_w {
                decoded += 1;
            }
        }
        let rate = decoded as f64 / trials as f64;
        assert!((rate - 0.6).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn link_table_set_loss_updates_direction() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.1);
        m.set_loss(NodeId::new(0), NodeId::new(1), 0.9);
        assert_eq!(m.loss(NodeId::new(0), NodeId::new(1)), Some(0.9));
        assert_eq!(m.loss(NodeId::new(1), NodeId::new(0)), Some(0.1));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn link_table_rejects_bad_loss() {
        LinkTableMedium::new().add_link(NodeId::new(0), NodeId::new(1), 1.5);
    }

    #[test]
    fn link_table_blackout_silences_one_direction() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::Blackout);
        let mut rng = SimRng::seed_from(8);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.is_empty(), "blacked-out link emitted {out:?}");
        // Reverse direction unaffected.
        m.fan_out(
            NodeId::new(1),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        // Clearing restores the link.
        m.clear_link_fault(NodeId::new(0), NodeId::new(1));
        out.clear();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn link_table_extra_loss_composes_with_base() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.2);
        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::ExtraLoss(0.5));
        let mut rng = SimRng::seed_from(9);
        let trials = 20_000;
        let mut decoded = 0;
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            m.fan_out(
                NodeId::new(0),
                &positions(),
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            if out[0].power_w >= m.phy().rx_threshold_w {
                decoded += 1;
            }
        }
        // Effective delivery = (1-0.2)*(1-0.5) = 0.4.
        let rate = decoded as f64 / trials as f64;
        assert!((rate - 0.4).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn link_table_attenuation_kills_decode_but_keeps_energy() {
        let mut m = LinkTableMedium::new();
        m.add_link(NodeId::new(0), NodeId::new(1), 0.0);
        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::Attenuate(0.01));
        let mut rng = SimRng::seed_from(10);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].power_w < m.phy().rx_threshold_w);
    }

    #[test]
    fn physical_blackout_and_attenuation() {
        let phy = PhyParams {
            fading: crate::propagation::FadingModel::None,
            ..PhyParams::default()
        };
        let mut m = PhysicalMedium::new(phy);
        let mut rng = SimRng::seed_from(11);
        let mut out = Vec::new();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        let clean_power = out
            .iter()
            .find(|p| p.node == NodeId::new(1))
            .expect("node 1 in range")
            .power_w;

        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::Blackout);
        out.clear();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.iter().all(|p| p.node != NodeId::new(1)));

        m.set_link_fault(NodeId::new(0), NodeId::new(1), LinkEffect::Attenuate(0.5));
        out.clear();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        let attenuated = out
            .iter()
            .find(|p| p.node == NodeId::new(1))
            .expect("attenuated but audible")
            .power_w;
        assert!((attenuated - clean_power * 0.5).abs() < clean_power * 1e-9);

        m.clear_link_fault(NodeId::new(0), NodeId::new(1));
        out.clear();
        m.fan_out(
            NodeId::new(0),
            &positions(),
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(out.iter().any(|p| p.node == NodeId::new(1)));
    }
}
