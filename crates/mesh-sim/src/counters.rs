//! Measurement counters.
//!
//! Byte counts are kept per protocol-defined *traffic class* (an opaque
//! `u8 < 16`), which is how the experiments separate probe overhead from data
//! traffic (Table 1 of the paper).

/// Maximum number of distinct traffic classes.
pub const MAX_CLASSES: usize = 16;

/// Index of the overflow bucket in per-class arrays: classes `>= MAX_CLASSES`
/// are tallied here instead of silently aliasing a real class (which would
/// corrupt e.g. the Table-1 probe/data overhead split).
pub const OVERFLOW_CLASS_SLOT: usize = MAX_CLASSES;

/// Map a traffic class to its per-class array slot: in-range classes map to
/// themselves, anything else to [`OVERFLOW_CLASS_SLOT`].
pub fn class_slot(class: u8) -> usize {
    let c = class as usize;
    if c < MAX_CLASSES {
        c
    } else {
        OVERFLOW_CLASS_SLOT
    }
}

/// Per-class frame/byte tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Frames observed.
    pub frames: u64,
    /// Payload bytes observed (MAC/PHY overhead excluded).
    pub bytes: u64,
}

/// Global medium/MAC statistics for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Data frames transmitted, by class (index [`OVERFLOW_CLASS_SLOT`]
    /// collects out-of-range classes; see [`class_slot`]).
    pub tx_data: [ClassCounts; MAX_CLASSES + 1],
    /// Data frames delivered to a protocol, by class (each broadcast frame
    /// counts once per receiver that decoded it; index
    /// [`OVERFLOW_CLASS_SLOT`] collects out-of-range classes).
    pub rx_data: [ClassCounts; MAX_CLASSES + 1],
    /// Control frames transmitted (RTS/CTS/ACK).
    pub tx_ctrl_frames: u64,
    /// Control bytes transmitted.
    pub tx_ctrl_bytes: u64,
    /// Receptions destroyed by collisions (both frames within capture ratio).
    pub collisions: u64,
    /// Receptions lost because a stronger frame captured the receiver.
    pub capture_losses: u64,
    /// Arrivals sensed above CS but below the receive threshold.
    pub below_rx_threshold: u64,
    /// Arrivals that found the receiver already transmitting.
    pub rx_while_tx: u64,
    /// Frames dropped at the MAC queue (drop-tail overflow).
    pub queue_drops: u64,
    /// Unicast transmissions abandoned after exhausting retries.
    pub unicast_failures: u64,
    /// Total MAC retransmission attempts (RTS or data).
    pub retries: u64,
    /// Unicast data frames suppressed by receive-side duplicate detection.
    pub duplicate_rx_suppressed: u64,
    /// Events processed (a progress/size measure).
    pub events: u64,
    /// Data-frame arrivals planned by the medium (one per `RxStart` of a
    /// data frame). The conservation oracle balances this against every
    /// per-arrival outcome below plus deliveries and in-flight receptions.
    pub planned_rx_data: u64,
    /// Data-frame arrivals lost at `RxStart` (capture, collision, below
    /// threshold, or arriving while the receiver transmitted).
    pub rx_lost_data: u64,
    /// Data-frame receptions that completed corrupted (collision or strong
    /// interference detected mid-reception).
    pub rx_corrupted_data: u64,
    /// Data-frame receptions aborted mid-air: the receiver started its own
    /// transmission (half-duplex) or crashed.
    pub rx_aborted_data: u64,
    /// Unicast data frames decoded by a node that was not the destination.
    pub unicast_overheard: u64,
    /// Data-frame arrivals suppressed by fault injection (crashed receiver
    /// or an active class-loss burst).
    pub fault_rx_dropped: u64,
    /// Queued frames purged from MAC queues by node-crash faults.
    pub fault_tx_purged: u64,
    /// Fault-plan events applied.
    pub fault_events: u64,
}

impl Counters {
    /// Total transmitted payload bytes across all data classes.
    pub fn tx_data_bytes_total(&self) -> u64 {
        self.tx_data.iter().map(|c| c.bytes).sum()
    }

    /// Total delivered payload bytes across all data classes.
    pub fn rx_data_bytes_total(&self) -> u64 {
        self.rx_data.iter().map(|c| c.bytes).sum()
    }

    /// Merge another counter set into this one (used by parallel runners).
    pub fn merge(&mut self, other: &Counters) {
        for i in 0..=MAX_CLASSES {
            self.tx_data[i].frames += other.tx_data[i].frames;
            self.tx_data[i].bytes += other.tx_data[i].bytes;
            self.rx_data[i].frames += other.rx_data[i].frames;
            self.rx_data[i].bytes += other.rx_data[i].bytes;
        }
        self.tx_ctrl_frames += other.tx_ctrl_frames;
        self.tx_ctrl_bytes += other.tx_ctrl_bytes;
        self.collisions += other.collisions;
        self.capture_losses += other.capture_losses;
        self.below_rx_threshold += other.below_rx_threshold;
        self.rx_while_tx += other.rx_while_tx;
        self.queue_drops += other.queue_drops;
        self.unicast_failures += other.unicast_failures;
        self.retries += other.retries;
        self.duplicate_rx_suppressed += other.duplicate_rx_suppressed;
        self.events += other.events;
        self.planned_rx_data += other.planned_rx_data;
        self.rx_lost_data += other.rx_lost_data;
        self.rx_corrupted_data += other.rx_corrupted_data;
        self.rx_aborted_data += other.rx_aborted_data;
        self.unicast_overheard += other.unicast_overheard;
        self.fault_rx_dropped += other.fault_rx_dropped;
        self.fault_tx_purged += other.fault_tx_purged;
        self.fault_events += other.fault_events;
    }

    pub(crate) fn record_tx_data(&mut self, class: u8, bytes: u64) {
        let c = &mut self.tx_data[class_slot(class)];
        c.frames += 1;
        c.bytes += bytes;
    }

    pub(crate) fn record_rx_data(&mut self, class: u8, bytes: u64) {
        let c = &mut self.rx_data[class_slot(class)];
        c.frames += 1;
        c.bytes += bytes;
    }
}

/// Per-node tallies (coarser than [`Counters`]; one per node in the world).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Data frames this node transmitted (any class).
    pub tx_data_frames: u64,
    /// Payload bytes this node transmitted.
    pub tx_data_bytes: u64,
    /// Data frames delivered to this node's protocol.
    pub rx_data_frames: u64,
    /// Control frames (RTS/CTS/ACK) this node transmitted.
    pub tx_ctrl_frames: u64,
    /// Receptions at this node destroyed by collisions.
    pub collisions: u64,
    /// Approximate airtime this node occupied, in nanoseconds.
    pub airtime_ns: u64,
}

use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for ClassCounts {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.frames);
        w.put_u64(self.bytes);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ClassCounts {
            frames: r.u64()?,
            bytes: r.u64()?,
        })
    }
}

impl Snap for Counters {
    fn snap(&self, w: &mut SnapWriter) {
        for c in &self.tx_data {
            c.snap(w);
        }
        for c in &self.rx_data {
            c.snap(w);
        }
        w.put_u64(self.tx_ctrl_frames);
        w.put_u64(self.tx_ctrl_bytes);
        w.put_u64(self.collisions);
        w.put_u64(self.capture_losses);
        w.put_u64(self.below_rx_threshold);
        w.put_u64(self.rx_while_tx);
        w.put_u64(self.queue_drops);
        w.put_u64(self.unicast_failures);
        w.put_u64(self.retries);
        w.put_u64(self.duplicate_rx_suppressed);
        w.put_u64(self.events);
        w.put_u64(self.planned_rx_data);
        w.put_u64(self.rx_lost_data);
        w.put_u64(self.rx_corrupted_data);
        w.put_u64(self.rx_aborted_data);
        w.put_u64(self.unicast_overheard);
        w.put_u64(self.fault_rx_dropped);
        w.put_u64(self.fault_tx_purged);
        w.put_u64(self.fault_events);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut c = Counters::default();
        for slot in &mut c.tx_data {
            *slot = ClassCounts::unsnap(r)?;
        }
        for slot in &mut c.rx_data {
            *slot = ClassCounts::unsnap(r)?;
        }
        c.tx_ctrl_frames = r.u64()?;
        c.tx_ctrl_bytes = r.u64()?;
        c.collisions = r.u64()?;
        c.capture_losses = r.u64()?;
        c.below_rx_threshold = r.u64()?;
        c.rx_while_tx = r.u64()?;
        c.queue_drops = r.u64()?;
        c.unicast_failures = r.u64()?;
        c.retries = r.u64()?;
        c.duplicate_rx_suppressed = r.u64()?;
        c.events = r.u64()?;
        c.planned_rx_data = r.u64()?;
        c.rx_lost_data = r.u64()?;
        c.rx_corrupted_data = r.u64()?;
        c.rx_aborted_data = r.u64()?;
        c.unicast_overheard = r.u64()?;
        c.fault_rx_dropped = r.u64()?;
        c.fault_tx_purged = r.u64()?;
        c.fault_events = r.u64()?;
        Ok(c)
    }
}

impl Snap for NodeCounters {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.tx_data_frames);
        w.put_u64(self.tx_data_bytes);
        w.put_u64(self.rx_data_frames);
        w.put_u64(self.tx_ctrl_frames);
        w.put_u64(self.collisions);
        w.put_u64(self.airtime_ns);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeCounters {
            tx_data_frames: r.u64()?,
            tx_data_bytes: r.u64()?,
            rx_data_frames: r.u64()?,
            tx_ctrl_frames: r.u64()?,
            collisions: r.u64()?,
            airtime_ns: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counters_default_zero() {
        let n = NodeCounters::default();
        assert_eq!(n.tx_data_frames, 0);
        assert_eq!(n.airtime_ns, 0);
    }

    #[test]
    fn totals_sum_classes() {
        let mut c = Counters::default();
        c.record_tx_data(0, 100);
        c.record_tx_data(3, 50);
        c.record_rx_data(3, 50);
        assert_eq!(c.tx_data_bytes_total(), 150);
        assert_eq!(c.rx_data_bytes_total(), 50);
        assert_eq!(c.tx_data[0].frames, 1);
        assert_eq!(c.tx_data[3].frames, 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Counters::default();
        a.record_tx_data(1, 10);
        a.collisions = 2;
        let mut b = Counters::default();
        b.record_tx_data(1, 5);
        b.collisions = 3;
        b.retries = 7;
        a.merge(&b);
        assert_eq!(a.tx_data[1].bytes, 15);
        assert_eq!(a.collisions, 5);
        assert_eq!(a.retries, 7);
    }

    #[test]
    fn out_of_range_class_lands_in_overflow_bucket() {
        // Regression: class 200 used to wrap to slot 200 % 16 == 8,
        // silently corrupting class 8's tally.
        let mut c = Counters::default();
        c.record_tx_data(200, 1);
        c.record_rx_data(16, 7);
        assert_eq!(c.tx_data[OVERFLOW_CLASS_SLOT].frames, 1);
        assert_eq!(c.rx_data[OVERFLOW_CLASS_SLOT].bytes, 7);
        for slot in 0..MAX_CLASSES {
            assert_eq!(c.tx_data[slot].frames, 0, "class {slot} was aliased");
            assert_eq!(c.rx_data[slot].frames, 0, "class {slot} was aliased");
        }
        // Totals still include the overflow bucket.
        assert_eq!(c.tx_data_bytes_total(), 1);
        assert_eq!(c.rx_data_bytes_total(), 7);
    }

    #[test]
    fn class_slot_boundaries() {
        assert_eq!(class_slot(0), 0);
        assert_eq!(class_slot(15), 15);
        assert_eq!(class_slot(16), OVERFLOW_CLASS_SLOT);
        assert_eq!(class_slot(255), OVERFLOW_CLASS_SLOT);
    }
}
