//! Versioned, hand-rolled binary checkpoint format (DESIGN.md §14).
//!
//! The workspace is dependency-free, so there is no serde: snapshots are a
//! flat little-endian byte stream written by [`SnapWriter`] and replayed by
//! [`SnapReader`]. Every snapshot starts with a fixed header — the magic
//! `b"MSNP"`, the [`SNAPSHOT_FORMAT_VERSION`], and a caller-supplied
//! *configuration fingerprint* — so a checkpoint can never be restored into
//! a simulation built from a different scenario without an explicit error.
//!
//! Two traits split the work:
//!
//! * [`Snap`] — value types that serialize themselves field-by-field
//!   (primitives, containers, ids, times, protocol messages).
//! * [`SnapshotState`] — stateful components (protocol nodes, media,
//!   mobility models) that write their *mutable* state into an existing
//!   stream and restore it in place. Configuration that is re-derived from
//!   the scenario constructor is deliberately **not** serialized; the header
//!   fingerprint is what proves both sides were built from the same config.
//!
//! The format is strict: readers must consume every byte ([`SnapReader::
//! finish`] returns [`SnapError::TrailingBytes`] otherwise), unknown enum
//! tags are hard errors, and any version drift requires regenerating the
//! committed golden fixture in the same PR (see
//! `crates/experiments/tests/snapshot_format.rs`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Current snapshot format version. Bump on ANY wire-format change and
/// regenerate the golden fixture in the same PR.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every snapshot ("Mesh SNaPshot").
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MSNP";

/// Everything that can go wrong while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream does not begin with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The stream was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The snapshot was taken from a simulation built with a different
    /// configuration fingerprint than the one restoring it.
    FingerprintMismatch {
        /// Fingerprint the restoring simulation expects.
        expected: u64,
        /// Fingerprint recorded in the snapshot header.
        found: u64,
    },
    /// The stream ended before the value was fully decoded.
    Truncated,
    /// An enum discriminant outside the encodable range.
    BadTag(u32),
    /// Bytes were left over after the top-level value was decoded.
    TrailingBytes,
    /// The snapshot is structurally incompatible with the restoring
    /// simulation (e.g. different node count or mobility model presence).
    StateMismatch(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "snapshot does not start with the MSNP magic"),
            SnapError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapError::FingerprintMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch: snapshot {found:#018x}, expected {expected:#018x}"
            ),
            SnapError::Truncated => write!(f, "snapshot truncated mid-value"),
            SnapError::BadTag(t) => write!(f, "unknown enum tag {t} in snapshot"),
            SnapError::TrailingBytes => write!(f, "trailing bytes after snapshot payload"),
            SnapError::StateMismatch(what) => {
                write!(f, "snapshot incompatible with this simulation: {what}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only binary writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer with no header (for nested payloads and tests).
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// A writer primed with the snapshot header: magic, format version and
    /// the caller's configuration fingerprint.
    pub fn with_header(fingerprint: u64) -> Self {
        let mut w = SnapWriter::new();
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_FORMAT_VERSION);
        w.put_u64(fingerprint);
        w
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a usize, widened to u64 on the wire.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an f64 by its exact bit pattern (NaN payloads survive).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an f32 by its exact bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish writing and take the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader over a snapshot payload.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over a headerless payload (for nested payloads and tests).
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Open a snapshot: verify magic, format version and the configuration
    /// fingerprint, then position the reader at the payload.
    pub fn with_header(buf: &'a [u8], fingerprint: u64) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(buf);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8()?;
        }
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let found = r.u64()?;
        if found != fingerprint {
            return Err(SnapError::FingerprintMismatch {
                expected: fingerprint,
                found,
            });
        }
        Ok(r)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        let b = *self.buf.get(self.pos).ok_or(SnapError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let end = self.pos.checked_add(4).ok_or(SnapError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(SnapError::Truncated)?;
        self.pos = end;
        let arr: [u8; 4] = bytes.try_into().map_err(|_| SnapError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let end = self.pos.checked_add(8).ok_or(SnapError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(SnapError::Truncated)?;
        self.pos = end;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| SnapError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Read a usize (stored as u64 on the wire).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::StateMismatch("usize out of range"))
    }

    /// Read an f64 from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an f32 from its exact bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read a bool; any byte other than 0/1 is a [`SnapError::BadTag`].
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag(t as u32)),
        }
    }

    /// Read a container length written by [`SnapWriter::put_usize`],
    /// sanity-checked against the remaining bytes (each element takes at
    /// least one byte) so corrupt streams cannot force huge allocations.
    ///
    /// Not a container `len`: this *consumes* stream bytes, so there is no
    /// `is_empty` counterpart (use [`SnapReader::remaining`]).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Truncated);
        }
        Ok(n)
    }

    /// Assert the stream is fully consumed.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }
}

/// Field-by-field binary serialization for value types.
///
/// Implementations must be **lossless and canonical**: `unsnap(snap(x)) ==
/// x` bit-for-bit, and equal values produce equal bytes. Floats are encoded
/// by bit pattern, never by text.
pub trait Snap: Sized {
    /// Write this value into `w`.
    fn snap(&self, w: &mut SnapWriter);
    /// Decode one value from `r`.
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// In-place snapshot/restore for stateful simulation components.
///
/// Unlike [`Snap`], implementors are *rebuilt from configuration* first and
/// then have their mutable state overwritten; `restore_state` must leave the
/// component exactly as it was at snapshot time, assuming the surrounding
/// simulation was constructed from the same scenario (enforced via the
/// header fingerprint, not per-component checks).
pub trait SnapshotState {
    /// Write all mutable state into `w`.
    fn snapshot_state(&self, w: &mut SnapWriter);
    /// Overwrite all mutable state from `r`.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

impl Snap for u8 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl Snap for u32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u32()
    }
}

impl Snap for u64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.usize()
    }
}

impl Snap for f64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.f64()
    }
}

impl Snap for f32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f32(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.f32()
    }
}

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bool(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.bool()
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        w.put_bytes(self.as_bytes());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut bytes = Vec::with_capacity(n);
        for _ in 0..n {
            bytes.push(r.u8()?);
        }
        String::from_utf8(bytes).map_err(|_| SnapError::StateMismatch("invalid utf-8 string"))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            t => Err(SnapError::BadTag(t as u32)),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

// Arc serializes by value: pointer sharing is a memory optimisation, not
// observable simulation state, so restore may produce distinct allocations.
impl<T: Snap> Snap for Arc<T> {
    fn snap(&self, w: &mut SnapWriter) {
        T::snap(self, w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Arc::new(T::unsnap(r)?))
    }
}

impl Snap for crate::time::SimTime {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_nanos());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::time::SimTime::from_nanos(r.u64()?))
    }
}

impl Snap for crate::time::SimDuration {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_nanos());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::time::SimDuration::from_nanos(r.u64()?))
    }
}

impl Snap for crate::ids::NodeId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.as_u32());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::ids::NodeId::new(r.u32()?))
    }
}

impl Snap for crate::ids::GroupId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::ids::GroupId(r.u32()?))
    }
}

impl Snap for crate::ids::TxHandle {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::ids::TxHandle(r.u64()?))
    }
}

impl Snap for crate::ids::TimerId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::ids::TimerId(r.u64()?))
    }
}

impl Snap for crate::ids::FrameId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_u64());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::ids::FrameId(r.u64()?))
    }
}

impl Snap for crate::geometry::Pos {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.x);
        w.put_f64(self.y);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let x = r.f64()?;
        let y = r.f64()?;
        Ok(crate::geometry::Pos { x, y })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::unsnap(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip(1.5f32);
        roundtrip("héllo\nworld".to_string());
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut w = SnapWriter::new();
        weird.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = f64::unsnap(&mut r).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip(VecDeque::from([1u8, 2, 3]));
        roundtrip(BTreeMap::from([(1u32, 2u64), (3, 4)]));
        roundtrip(BTreeSet::from([5u32, 9, 1]));
        roundtrip((1u32, 2u64));
        roundtrip((1u8, 2u32, 3u64));
        roundtrip(Arc::new(42u64));
    }

    #[test]
    fn sim_types_roundtrip() {
        use crate::geometry::Pos;
        use crate::ids::{GroupId, NodeId, TxHandle};
        use crate::time::{SimDuration, SimTime};
        roundtrip(SimTime::from_nanos(123_456_789));
        roundtrip(SimDuration::from_millis(250));
        roundtrip(NodeId::new(17));
        roundtrip(GroupId(3));
        roundtrip(TxHandle(99));
        roundtrip(Pos { x: 1.5, y: -2.25 });
    }

    #[test]
    fn header_roundtrip_and_mismatches() {
        let w = SnapWriter::with_header(0xABCD);
        let bytes = w.into_bytes();
        let r = SnapReader::with_header(&bytes, 0xABCD).expect("header ok");
        r.finish().expect("empty payload");

        assert_eq!(
            SnapReader::with_header(&bytes, 0x1234).unwrap_err(),
            SnapError::FingerprintMismatch {
                expected: 0x1234,
                found: 0xABCD
            }
        );

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SnapReader::with_header(&bad_magic, 0xABCD).unwrap_err(),
            SnapError::BadMagic
        );

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            SnapReader::with_header(&bad_version, 0xABCD).unwrap_err(),
            SnapError::UnsupportedVersion(_)
        ));

        assert_eq!(
            SnapReader::with_header(&bytes[..6], 0xABCD).unwrap_err(),
            SnapError::Truncated
        );
    }

    #[test]
    fn truncation_and_trailing_are_detected() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 1]);
        assert_eq!(
            Vec::<u64>::unsnap(&mut r).unwrap_err(),
            SnapError::Truncated
        );

        let mut r = SnapReader::new(&bytes);
        let _ = Vec::<u64>::unsnap(&mut r).unwrap();
        let mut extra = bytes.clone();
        extra.push(0);
        let mut r = SnapReader::new(&extra);
        let _ = Vec::<u64>::unsnap(&mut r).unwrap();
        assert_eq!(r.finish().unwrap_err(), SnapError::TrailingBytes);
    }

    #[test]
    fn corrupt_length_cannot_force_huge_allocation() {
        let mut w = SnapWriter::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<u8>::unsnap(&mut r).unwrap_err(), SnapError::Truncated);
    }

    #[test]
    fn bad_enum_tags_error() {
        let mut r = SnapReader::new(&[7]);
        assert_eq!(
            Option::<u8>::unsnap(&mut r).unwrap_err(),
            SnapError::BadTag(7)
        );
        let mut r = SnapReader::new(&[2]);
        assert_eq!(bool::unsnap(&mut r).unwrap_err(), SnapError::BadTag(2));
    }
}
