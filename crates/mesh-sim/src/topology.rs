//! Topology generation: node placements and connectivity checks.
//!
//! The paper's simulations place 50 static nodes uniformly at random in a
//! 1000 m × 1000 m area and rely on the topology being connected at the
//! nominal 250 m range; [`random_connected`] reproduces that procedure,
//! resampling until the disk graph is connected.

use crate::geometry::{Area, Pos};
use crate::rng::SimRng;

/// Place `n` nodes uniformly at random in `area`.
pub fn random_placement(n: usize, area: Area, rng: &mut SimRng) -> Vec<Pos> {
    (0..n)
        .map(|_| {
            Pos::new(
                rng.uniform_range(0.0, area.width),
                rng.uniform_range(0.0, area.height),
            )
        })
        .collect()
}

/// Place `n` nodes uniformly at random, resampling until the unit-disk graph
/// with the given `range` is connected.
///
/// # Panics
///
/// Panics if no connected placement is found within `max_attempts` tries —
/// a sign the density is far too low for the requested range.
pub fn random_connected(
    n: usize,
    area: Area,
    range: f64,
    rng: &mut SimRng,
    max_attempts: usize,
) -> Vec<Pos> {
    for _ in 0..max_attempts {
        let placement = random_placement(n, area, rng);
        if is_connected(&placement, range) {
            return placement;
        }
    }
    // mesh-lint: allow(R6, "documented # Panics contract: placement runs before the simulation starts, and an impossible density must abort loudly")
    panic!(
        "no connected {n}-node placement in {area} at range {range}m after {max_attempts} attempts"
    );
}

/// Evenly spaced chain along the x axis with the given spacing.
pub fn chain(n: usize, spacing: f64) -> Vec<Pos> {
    (0..n).map(|i| Pos::new(i as f64 * spacing, 0.0)).collect()
}

/// `cols × rows` grid with the given spacing.
pub fn grid(cols: usize, rows: usize, spacing: f64) -> Vec<Pos> {
    let mut out = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            out.push(Pos::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    out
}

/// Whether the unit-disk graph over `positions` with `range` is connected.
pub fn is_connected(positions: &[Pos], range: f64) -> bool {
    let n = positions.len();
    if n <= 1 {
        return true;
    }
    let range_sq = range * range;
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if !seen[j] && positions[i].distance_sq(positions[j]) <= range_sq {
                seen[j] = true;
                count += 1;
                stack.push(j);
            }
        }
    }
    count == n
}

/// Neighbor lists of the unit-disk graph over `positions` with `range`.
pub fn disk_graph(positions: &[Pos], range: f64) -> Vec<Vec<usize>> {
    let n = positions.len();
    let range_sq = range * range;
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if positions[i].distance_sq(positions[j]) <= range_sq {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    adj
}

/// Hop distances from `src` in the unit-disk graph (BFS); `usize::MAX` marks
/// unreachable nodes.
pub fn hop_distances(positions: &[Pos], range: f64, src: usize) -> Vec<usize> {
    let adj = disk_graph(positions, range);
    let mut dist = vec![usize::MAX; positions.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(i) = queue.pop_front() {
        for &j in &adj[i] {
            if dist[j] == usize::MAX {
                dist[j] = dist[i] + 1;
                queue.push_back(j);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_connected_at_spacing() {
        let c = chain(10, 100.0);
        assert!(is_connected(&c, 100.0));
        assert!(!is_connected(&c, 99.0));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 2, 50.0);
        assert_eq!(g.len(), 6);
        assert_eq!(g[5], Pos::new(100.0, 50.0));
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = SimRng::seed_from(21);
        let area = Area::square(1000.0);
        let p = random_connected(50, area, 250.0, &mut rng, 1000);
        assert_eq!(p.len(), 50);
        assert!(is_connected(&p, 250.0));
        assert!(p.iter().all(|&pos| area.contains(pos)));
    }

    #[test]
    fn random_placement_is_deterministic_per_seed() {
        let area = Area::square(500.0);
        let a = random_placement(10, area, &mut SimRng::seed_from(5));
        let b = random_placement(10, area, &mut SimRng::seed_from(5));
        assert_eq!(a, b);
    }

    #[test]
    fn single_and_empty_graphs_connected() {
        assert!(is_connected(&[], 10.0));
        assert!(is_connected(&[Pos::new(0.0, 0.0)], 10.0));
    }

    #[test]
    fn hop_distances_on_chain() {
        let c = chain(5, 100.0);
        let d = hop_distances(&c, 100.0, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = hop_distances(&c, 100.0, 2);
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn hop_distances_unreachable() {
        let p = vec![Pos::new(0.0, 0.0), Pos::new(1000.0, 0.0)];
        let d = hop_distances(&p, 100.0, 0);
        assert_eq!(d[1], usize::MAX);
    }

    #[test]
    fn disk_graph_symmetry() {
        let mut rng = SimRng::seed_from(9);
        let p = random_placement(20, Area::square(400.0), &mut rng);
        let adj = disk_graph(&p, 150.0);
        for (i, ns) in adj.iter().enumerate() {
            for &j in ns {
                assert!(adj[j].contains(&i));
            }
        }
    }
}
