//! Simulation time.
//!
//! Time is kept in integer nanoseconds so that event ordering is exact and
//! runs are bit-for-bit reproducible; `f64` seconds are only used at the API
//! boundary. [`SimTime`] is an absolute instant, [`SimDuration`] a span.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant in simulated time, in nanoseconds since the start of
/// the run.
///
/// ```
/// use mesh_sim::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_secs_f64(), 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use mesh_sim::time::SimDuration;
/// assert_eq!(SimDuration::from_micros(1500), SimDuration::from_nanos(1_500_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from floating-point seconds, rounding to the nearest
    /// nanosecond and saturating on overflow or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        // NaN also lands here (saturates to zero).
        if s <= 0.0 || s.is_nan() {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Integer division of the span.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    // An inherent `div` reads better at call sites than requiring a `Div`
    // import; the operand types differ from `Div<Self>` anyway.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }

    /// Scale by a floating point factor, saturating at zero / `MAX`.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(
            t.saturating_since(SimTime::from_secs(1)),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimTime::from_secs(1).saturating_since(t), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs(1).checked_since(t), None);
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.saturating_mul(3), SimDuration::from_secs(30));
        assert_eq!(d.div(4), SimDuration::from_millis(2500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(20)), "20.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(30)), "30.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000000s");
    }
}
