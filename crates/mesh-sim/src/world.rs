//! The simulation world: event dispatch, PHY reception, and the 802.11 DCF
//! state-machine driver.
//!
//! [`World`] owns everything except the protocol instances; protocol code
//! interacts with it through [`Ctx`], and the world talks back through
//! internal upcalls that the [`crate::simulator::Simulator`] routes to protocols.

use std::collections::BTreeSet;

use crate::counters::{class_slot, Counters, NodeCounters, MAX_CLASSES};
use crate::event::{fold_schedule_hash, EventKind, EventQueue, SCHEDULE_HASH_SEED};
use crate::fault::{FaultKind, FaultPlan};
use crate::frame::{Frame, FrameBody, FrameSlab};
use crate::geometry::Pos;
use crate::ids::{FrameId, NodeId, TimerId, TxHandle};
use crate::mac::{CtrlResponse, Mac, MacParams, MacState, OutFrame};
use crate::medium::{IndexStats, LinkEffect, Medium, PositionDelta, RxPlan};
use crate::metrics::{MetricsRecorder, TimeSeries};
use crate::mobility::Mobility;
use crate::protocol::{RxMeta, TxOutcome};
use crate::radio::{ArrivalOutcome, Radio};
use crate::rng::SimRng;
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};
use crate::trace::{
    fault_label, Decision, DropReason, FrameKind as TraceFrameKind, TraceEvent, TraceEventKind,
    TraceSink,
};

/// Error returned when a transmit queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError;

impl std::fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MAC transmit queue is full")
    }
}

impl std::error::Error for QueueFullError {}

/// Error for invalid send targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The MAC transmit queue is full (drop-tail).
    QueueFull,
    /// Destination equals the sender or does not exist.
    BadDestination,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::QueueFull => write!(f, "MAC transmit queue is full"),
            SendError::BadDestination => write!(f, "invalid destination node"),
        }
    }
}

impl std::error::Error for SendError {}

/// Notifications from the world to a protocol instance.
#[derive(Debug)]
pub(crate) enum Upcall<M> {
    Deliver {
        node: NodeId,
        src: NodeId,
        /// Shared with the frame (and all other receivers of it).
        msg: std::sync::Arc<M>,
        meta: RxMeta,
    },
    TxDone {
        node: NodeId,
        handle: TxHandle,
        outcome: TxOutcome,
    },
    Timer {
        node: NodeId,
        timer: TimerId,
        kind: u64,
    },
    /// A crashed node just recovered; its protocol should re-arm itself.
    Restart { node: NodeId },
}

/// World configuration.
#[derive(Debug, Clone, Default)]
pub struct WorldConfig {
    /// MAC parameters shared by all nodes.
    pub mac: MacParams,
    /// Seed for the world's RNG stream (fading, backoff, jitter).
    pub seed: u64,
}

/// Everything in the simulation except the protocol instances.
pub struct World<M> {
    now: SimTime,
    queue: EventQueue,
    positions: Vec<Pos>,
    pub(crate) radios: Vec<Radio>,
    pub(crate) macs: Vec<Mac<M>>,
    pub(crate) frames: FrameSlab<M>,
    medium: Box<dyn Medium>,
    pub(crate) params: MacParams,
    rng: SimRng,
    counters: Counters,
    node_counters: Vec<NodeCounters>,
    /// Cancelled-but-not-yet-fired protocol timers. A `BTreeSet` because
    /// checkpointing serializes it in iteration order (mesh-lint rule R1).
    cancelled_timers: BTreeSet<u64>,
    timer_seq: u64,
    handle_seq: u64,
    mac_seq: u64,
    fan_buf: Vec<RxPlan>,
    trace: Option<Box<dyn TraceSink>>,
    metrics: Option<MetricsRecorder>,
    mobility: Option<Box<dyn Mobility>>,
    /// Positions snapshot from just before the last mobility step, used to
    /// diff which nodes actually moved (reused across ticks).
    prev_positions: Vec<Pos>,
    /// Per-tick move list handed to [`Medium::positions_changed`].
    moves_buf: Vec<PositionDelta>,
    /// Crashed (fault-injected) nodes; a down node neither sends nor hears.
    pub(crate) down: Vec<bool>,
    /// Nodes whose in-flight transmission outlived a crash: its `TxEnd`
    /// only releases the frame instead of driving the MAC.
    pub(crate) tx_orphaned: Vec<bool>,
    fault_plan: Option<FaultPlan>,
    /// Directed links blacked out by the active partition fault, so
    /// `HealPartition` can restore exactly those.
    partition_links: Vec<(NodeId, NodeId)>,
    /// Per-class receive drop probability from an active class-loss burst
    /// (indexed by [`class_slot`], so out-of-range classes share the
    /// overflow slot instead of aliasing a real class).
    class_drop: [f64; MAX_CLASSES + 1],
    /// Events observed with a timestamp before `now` (always 0 unless the
    /// queue is broken); checked by the monotonicity oracle in release
    /// builds where the `debug_assert` is compiled out.
    pub(crate) time_regressions: u64,
    /// Running FNV-1a fold over every dequeued event's `(time, seq, kind)`;
    /// see [`crate::event::fold_schedule_hash`].
    sched_hash: u64,
}

impl<M> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.positions.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl<M: Clone + std::fmt::Debug> World<M> {
    /// Create a world with one node per entry of `positions`.
    ///
    /// # Panics
    ///
    /// Panics if `config.mac` is internally inconsistent
    /// (see [`MacParams::validate`]).
    pub fn new(positions: Vec<Pos>, medium: Box<dyn Medium>, config: WorldConfig) -> Self {
        config.mac.validate();
        let n = positions.len();
        let mut macs: Vec<Mac<M>> = Vec::with_capacity(n);
        for _ in 0..n {
            macs.push(Mac {
                cw: config.mac.cw_min,
                ..Mac::default()
            });
        }
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            positions,
            radios: vec![Radio::default(); n],
            macs,
            frames: FrameSlab::new(),
            medium,
            params: config.mac,
            rng: SimRng::seed_from(config.seed),
            counters: Counters::default(),
            node_counters: vec![NodeCounters::default(); n],
            cancelled_timers: BTreeSet::new(),
            timer_seq: 0,
            handle_seq: 0,
            mac_seq: 0,
            fan_buf: Vec::new(),
            trace: None,
            metrics: None,
            mobility: None,
            prev_positions: Vec::new(),
            moves_buf: Vec::new(),
            down: vec![false; n],
            tx_orphaned: vec![false; n],
            fault_plan: None,
            partition_links: Vec::new(),
            class_drop: [0.0; MAX_CLASSES + 1],
            time_regressions: 0,
            sched_hash: SCHEDULE_HASH_SEED,
        }
    }

    /// Attach a fault plan; every scheduled fault becomes a simulator event.
    ///
    /// # Panics
    ///
    /// Panics if a plan is already attached or any fault is scheduled before
    /// the current time.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            self.fault_plan.is_none(),
            "a fault plan is already attached"
        );
        for (idx, &(t, _)) in plan.events().iter().enumerate() {
            assert!(t >= self.now, "fault scheduled in the past");
            self.queue.push(t, EventKind::Fault { idx });
        }
        self.fault_plan = Some(plan);
    }

    /// Whether `node` is currently crashed by a fault.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.down[node.index()]
    }

    /// Run the built-in invariant oracles against the current state.
    pub fn check_invariants(&self) -> Vec<crate::invariants::Violation> {
        crate::invariants::check_world(self)
    }

    /// Attach a mobility model; positions update from the next event on.
    pub fn set_mobility(&mut self, mut model: Box<dyn Mobility>) {
        if let Some(next) = model.step(self.now, &mut self.positions, &mut self.rng) {
            self.queue.push(next, EventKind::MobilityTick);
        }
        self.medium.invalidate_positions();
        self.mobility = Some(model);
    }

    /// Attach a trace sink receiving every packet-lifecycle event from now
    /// on. Tracing is observation only: attaching a sink never changes the
    /// event schedule (see [`crate::trace`]).
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detach and return the current trace sink, if any.
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Start recording a metrics timeseries with buckets of `width`
    /// (see [`crate::metrics`]). Replaces any recorder already attached.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn set_metrics(&mut self, width: SimDuration) {
        self.metrics = Some(MetricsRecorder::new(width, self.now));
    }

    /// Stop recording and return the finished timeseries, if one was
    /// attached; the final partial bucket is closed at the current time.
    pub fn take_metrics(&mut self) -> Option<TimeSeries> {
        let index = self.medium.index_stats();
        self.metrics
            .take()
            .map(|rec| rec.finish(self.now, &self.counters, index))
    }

    /// Spatial-index maintenance statistics from the medium, if it keeps an
    /// index (see [`Medium::index_stats`]).
    pub fn index_stats(&self) -> Option<IndexStats> {
        self.medium.index_stats()
    }

    /// Hand `event` to the attached sink. Call sites guard on
    /// `self.trace.is_some()` before building the event, so tracing costs
    /// nothing when off.
    fn emit(&mut self, event: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(event);
        }
    }

    /// `(class, mac_seq, src)` of a frame, if it is a live data frame.
    fn frame_trace_meta(&self, frame: FrameId) -> (Option<u8>, Option<u64>, Option<NodeId>) {
        match self.frames.get(frame) {
            Some(f) => match &f.body {
                FrameBody::Data { class, mac_seq, .. } => {
                    (Some(*class), Some(*mac_seq), Some(f.src))
                }
                _ => (None, None, Some(f.src)),
            },
            None => (None, None, None),
        }
    }

    /// Trace an [`TraceEventKind::RxDrop`] for `frame` at `node`, stamping
    /// the frame's class/seq when it is still alive.
    fn emit_rx_drop(&mut self, node: NodeId, frame: FrameId, reason: DropReason) {
        if self.trace.is_none() {
            return;
        }
        let (class, seq, _) = self.frame_trace_meta(frame);
        self.emit(TraceEvent {
            at: self.now,
            node: Some(node),
            seq,
            class,
            frame: Some(frame),
            kind: TraceEventKind::RxDrop { reason },
        });
    }

    /// Trace a decoded data frame handed to the protocol at `node`.
    fn emit_data_delivered(&mut self, node: NodeId, frame: FrameId, src: NodeId) {
        if self.trace.is_none() {
            return;
        }
        let (class, seq, _) = self.frame_trace_meta(frame);
        self.emit(TraceEvent {
            at: self.now,
            node: Some(node),
            seq,
            class,
            frame: Some(frame),
            kind: TraceEventKind::Delivered {
                src,
                frame_kind: TraceFrameKind::Data,
            },
        });
    }

    /// Trace the upcoming MAC retry of `node`'s head frame; `attempt`
    /// counts short and long retries together, 1-based.
    fn emit_retry(&mut self, node: NodeId) {
        if self.trace.is_none() {
            return;
        }
        let mac = &self.macs[node.index()];
        let attempt = mac.short_retries + mac.long_retries + 1;
        let (class, seq) = match mac.queue.front() {
            Some(f) => (Some(f.class), Some(f.mac_seq)),
            None => (None, None),
        };
        self.emit(TraceEvent {
            at: self.now,
            node: Some(node),
            seq,
            class,
            frame: None,
            kind: TraceEventKind::Retry { attempt },
        });
    }

    fn trace_kind(body: &FrameBody<M>) -> TraceFrameKind {
        match body {
            FrameBody::Rts { .. } => TraceFrameKind::Rts,
            FrameBody::Cts { .. } => TraceFrameKind::Cts,
            FrameBody::Ack { .. } => TraceFrameKind::Ack,
            FrameBody::Data { .. } => TraceFrameKind::Data,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Position of a node.
    pub fn position(&self, node: NodeId) -> Pos {
        self.positions[node.index()]
    }

    /// Run statistics so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Per-node statistics so far (indexed by node id).
    pub fn node_counters(&self) -> &[NodeCounters] {
        &self.node_counters
    }

    /// MAC parameters in effect.
    pub fn mac_params(&self) -> &MacParams {
        &self.params
    }

    /// Number of frames currently on the medium (test/leak hook).
    pub fn frames_in_flight(&self) -> usize {
        self.frames.live()
    }

    /// Hash of the event schedule processed so far: an FNV-1a fold over the
    /// `(time, seq, kind)` of every dequeued event. Two runs of the same
    /// `(scenario, plan, seed)` must agree on this value at every point —
    /// the runtime cross-check for the static determinism rules enforced by
    /// `mesh-lint` (DESIGN.md §10).
    pub fn schedule_hash(&self) -> u64 {
        self.sched_hash
    }

    // ------------------------------------------------------------------
    // Event processing
    // ------------------------------------------------------------------

    /// Pop and process a single event at or before `limit`, appending any
    /// protocol notifications to `upcalls`. Returns `false` when no such
    /// event exists.
    pub(crate) fn step(&mut self, limit: SimTime, upcalls: &mut Vec<Upcall<M>>) -> bool {
        let Some(ev) = self.queue.pop_if_at_or_before(limit) else {
            return false;
        };
        fold_schedule_hash(&mut self.sched_hash, &ev);
        if ev.time < self.now {
            // Tracked instead of only asserted so the monotonicity oracle
            // also catches this in release builds.
            self.time_regressions += 1;
            debug_assert!(false, "time went backwards");
        } else {
            self.now = ev.time;
        }
        // Close metrics buckets the clock has passed *before* dispatching, so
        // every bucket holds exactly the events inside its time span. Reads
        // counters, mutates nothing else: zero-perturbation.
        if let Some(m) = self.metrics.as_mut() {
            m.advance(self.now, &self.counters, self.medium.index_stats());
        }
        self.counters.events += 1;
        match ev.kind {
            EventKind::MacTimer { node, gen } => self.on_mac_timer(node, gen, upcalls),
            EventKind::CtrlTimer { node, gen } => self.on_ctrl_timer(node, gen),
            EventKind::TxEnd { node, frame } => self.on_tx_end(node, frame, upcalls),
            EventKind::RxStart {
                node,
                frame,
                power_w,
            } => self.on_rx_start(node, frame, power_w),
            EventKind::RxEnd {
                node,
                frame,
                power_w,
            } => self.on_rx_end(node, frame, power_w, upcalls),
            EventKind::ProtoTimer { node, timer, kind } => {
                let cancelled = self.cancelled_timers.remove(&timer.0);
                // Timers of a crashed node are swallowed, not deferred; its
                // protocol re-arms what it needs in `handle_restart`.
                if !cancelled && !self.down[node.index()] {
                    upcalls.push(Upcall::Timer { node, timer, kind });
                }
            }
            EventKind::MobilityTick => {
                if let Some(model) = self.mobility.as_mut() {
                    self.prev_positions.clear();
                    self.prev_positions.extend_from_slice(&self.positions);
                    if let Some(next) = model.step(self.now, &mut self.positions, &mut self.rng) {
                        self.queue.push(next, EventKind::MobilityTick);
                    }
                    // Report exactly which nodes moved (the model may move
                    // nodes even on its final tick); media that cache
                    // geometry invalidate just what the moves touched.
                    self.moves_buf.clear();
                    for (i, (&old, &new)) in
                        self.prev_positions.iter().zip(&self.positions).enumerate()
                    {
                        if old != new {
                            self.moves_buf.push(PositionDelta {
                                node: NodeId::new(i as u32),
                                from: old,
                                to: new,
                            });
                        }
                    }
                    self.medium
                        .positions_changed(&self.moves_buf, &self.positions);
                }
            }
            EventKind::Fault { idx } => self.apply_fault(idx, upcalls),
        }
        true
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn apply_fault(&mut self, idx: usize, upcalls: &mut Vec<Upcall<M>>) {
        let Some(kind) = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.events().get(idx))
            .map(|(_, k)| k.clone())
        else {
            debug_assert!(false, "fault event without a matching plan entry");
            return;
        };
        self.counters.fault_events += 1;
        if self.trace.is_some() {
            let (node, peer, class, fault) = match &kind {
                FaultKind::NodeCrash(n) => (Some(*n), None, None, fault_label::NODE_CRASH),
                FaultKind::NodeRecover(n) => (Some(*n), None, None, fault_label::NODE_RECOVER),
                FaultKind::LinkFault { from, to, .. } => {
                    (Some(*from), Some(*to), None, fault_label::LINK_FAULT)
                }
                FaultKind::LinkRestore { from, to } => {
                    (Some(*from), Some(*to), None, fault_label::LINK_RESTORE)
                }
                FaultKind::Partition { .. } => (None, None, None, fault_label::PARTITION),
                FaultKind::HealPartition => (None, None, None, fault_label::HEAL_PARTITION),
                FaultKind::ClassLossBurst { class, .. } => {
                    (None, None, Some(*class), fault_label::CLASS_LOSS_BURST)
                }
                FaultKind::ClassLossClear { class } => {
                    (None, None, Some(*class), fault_label::CLASS_LOSS_CLEAR)
                }
            };
            self.emit(TraceEvent {
                at: self.now,
                node,
                seq: None,
                class,
                frame: None,
                kind: TraceEventKind::FaultApplied { fault, peer },
            });
        }
        match kind {
            FaultKind::NodeCrash(node) => self.crash_node(node),
            FaultKind::NodeRecover(node) => {
                let i = node.index();
                if self.down[i] {
                    self.down[i] = false;
                    upcalls.push(Upcall::Restart { node });
                }
            }
            FaultKind::LinkFault { from, to, effect } => {
                self.medium.set_link_fault(from, to, effect);
            }
            FaultKind::LinkRestore { from, to } => {
                self.medium.clear_link_fault(from, to);
            }
            FaultKind::Partition { boundary_x_m } => {
                // Judged against the positions at this instant; under
                // mobility, nodes that later cross the boundary stay cut
                // until the partition heals.
                for i in 0..self.positions.len() {
                    for j in 0..self.positions.len() {
                        if i == j {
                            continue;
                        }
                        let crosses = (self.positions[i].x < boundary_x_m)
                            != (self.positions[j].x < boundary_x_m);
                        if crosses {
                            let (a, b) = (NodeId::new(i as u32), NodeId::new(j as u32));
                            self.medium.set_link_fault(a, b, LinkEffect::Blackout);
                            self.partition_links.push((a, b));
                        }
                    }
                }
            }
            FaultKind::HealPartition => {
                for (a, b) in std::mem::take(&mut self.partition_links) {
                    self.medium.clear_link_fault(a, b);
                }
            }
            FaultKind::ClassLossBurst { class, drop } => {
                self.class_drop[class_slot(class)] = drop.clamp(0.0, 1.0);
            }
            FaultKind::ClassLossClear { class } => {
                self.class_drop[class_slot(class)] = 0.0;
            }
        }
    }

    /// Power a node off: silence the radio, purge the MAC, freeze the
    /// protocol (its timers are swallowed while down).
    fn crash_node(&mut self, node: NodeId) {
        let i = node.index();
        if self.down[i] {
            return;
        }
        self.down[i] = true;
        // An in-flight reception dies with the radio.
        if let Some(rx) = self.radios[i].rx.take() {
            if self.frame_is_data(rx.frame) {
                self.counters.rx_aborted_data += 1;
                self.emit_rx_drop(node, rx.frame, DropReason::Aborted);
            }
        }
        // An in-flight transmission keeps propagating (the energy already
        // left the antenna) but its MAC bookkeeping is orphaned: the TxEnd
        // releases the frame without driving the state machine.
        if self.radios[i].tx_until.is_some() {
            self.tx_orphaned[i] = true;
        }
        self.radios[i].energy_until = self.now;
        self.radios[i].nav_until = self.now;
        let cw_min = self.params.cw_min;
        self.counters.fault_tx_purged += self.macs[i].queue.len() as u64;
        let mac = &mut self.macs[i];
        mac.queue.clear();
        mac.state = MacState::Idle;
        mac.backoff_slots = 0;
        mac.pending_ctrl = None;
        mac.rx_dedup.clear();
        mac.bump_timer();
        mac.bump_ctrl();
        mac.reset_contention(cw_min);
    }

    fn frame_is_data(&self, frame: FrameId) -> bool {
        self.frames
            .get(frame)
            .is_some_and(|f| matches!(f.body, FrameBody::Data { .. }))
    }

    /// Data frames currently being decoded by some radio (used by the
    /// counter-conservation oracle: planned arrivals that have neither
    /// resolved nor been lost yet).
    pub(crate) fn data_rx_in_progress(&self) -> u64 {
        self.radios
            .iter()
            .filter_map(|r| r.rx)
            .filter(|rx| self.frame_is_data(rx.frame))
            .count() as u64
    }

    /// Advance the clock to `t` without processing events (used at the end of
    /// a bounded run).
    pub(crate) fn advance_clock(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    // ------------------------------------------------------------------
    // Protocol-facing operations (via Ctx)
    // ------------------------------------------------------------------

    pub(crate) fn set_timer(&mut self, node: NodeId, delay: SimDuration, kind: u64) -> TimerId {
        self.timer_seq += 1;
        let id = TimerId(self.timer_seq);
        self.queue.push(
            self.now + delay,
            EventKind::ProtoTimer {
                node,
                timer: id,
                kind,
            },
        );
        id
    }

    pub(crate) fn cancel_timer(&mut self, timer: TimerId) {
        self.cancelled_timers.insert(timer.0);
    }

    pub(crate) fn send_data(
        &mut self,
        node: NodeId,
        dst: Option<NodeId>,
        msg: M,
        bytes: u32,
        class: u8,
    ) -> Result<TxHandle, SendError> {
        debug_assert!(
            !self.down[node.index()],
            "a crashed node cannot send (no upcalls are delivered while down)"
        );
        if let Some(d) = dst {
            if d == node || d.index() >= self.positions.len() {
                return Err(SendError::BadDestination);
            }
        }
        if self.macs[node.index()].queue.len() >= self.params.queue_cap {
            self.counters.queue_drops += 1;
            if self.trace.is_some() {
                // No mac_seq yet: the frame is dropped before one is drawn.
                self.emit(TraceEvent {
                    at: self.now,
                    node: Some(node),
                    seq: None,
                    class: Some(class),
                    frame: None,
                    kind: TraceEventKind::QueueDrop,
                });
            }
            return Err(SendError::QueueFull);
        }
        self.handle_seq += 1;
        self.mac_seq += 1;
        let handle = TxHandle(self.handle_seq);
        let was_empty = self.macs[node.index()].queue.is_empty();
        let mac_seq = self.mac_seq;
        self.macs[node.index()].queue.push_back(OutFrame {
            dst,
            // The payload is boxed once here; every transmission, retry and
            // delivery after this point shares it by refcount.
            msg: std::sync::Arc::new(msg),
            bytes,
            class,
            handle,
            mac_seq,
        });
        if was_empty && self.macs[node.index()].state == MacState::Idle {
            self.new_head(node);
        }
        Ok(handle)
    }

    // ------------------------------------------------------------------
    // MAC driver
    // ------------------------------------------------------------------

    /// A frame has just become head-of-queue: draw its backoff and contend.
    fn new_head(&mut self, node: NodeId) {
        let mac = &mut self.macs[node.index()];
        debug_assert!(!mac.queue.is_empty());
        mac.reset_contention(self.params.cw_min);
        let cw = mac.cw;
        mac.backoff_slots = self.rng.uniform_u32(cw + 1);
        self.contend(node);
    }

    /// Begin (or resume) contention for the head frame.
    fn contend(&mut self, node: NodeId) {
        let i = node.index();
        if self.radios[i].busy_with_nav(self.now) {
            self.macs[i].state = MacState::WaitChannel;
            let gen = self.macs[i].bump_timer();
            if let Some(h) = self.radios[i].busy_horizon(self.now) {
                // Busy only due to lingering energy/NAV: wake when it lapses.
                self.queue.push(h, EventKind::MacTimer { node, gen });
            }
            // Otherwise an RxEnd/TxEnd will call `channel_maybe_idle`.
        } else {
            self.macs[i].state = MacState::Difs;
            let gen = self.macs[i].bump_timer();
            self.queue.push(
                self.now + self.params.difs,
                EventKind::MacTimer { node, gen },
            );
        }
    }

    /// Energy appeared at `node` (or it started transmitting): freeze DCF.
    fn channel_became_busy(&mut self, node: NodeId) {
        let i = node.index();
        match self.macs[i].state {
            MacState::Difs => {
                self.macs[i].bump_timer();
                self.macs[i].state = MacState::WaitChannel;
            }
            MacState::Backoff { slot_start } => {
                let elapsed = self.now.saturating_since(slot_start).as_nanos()
                    / self.params.slot.as_nanos().max(1);
                let mac = &mut self.macs[i];
                mac.backoff_slots = mac.backoff_slots.saturating_sub(elapsed as u32);
                mac.bump_timer();
                mac.state = MacState::WaitChannel;
            }
            _ => {}
        }
    }

    /// The channel at `node` may have gone idle: resume contention if waiting.
    fn channel_maybe_idle(&mut self, node: NodeId) {
        let i = node.index();
        if self.macs[i].state == MacState::WaitChannel {
            if !self.radios[i].busy_with_nav(self.now) {
                self.macs[i].state = MacState::Difs;
                let gen = self.macs[i].bump_timer();
                self.queue.push(
                    self.now + self.params.difs,
                    EventKind::MacTimer { node, gen },
                );
            } else if let Some(h) = self.radios[i].busy_horizon(self.now) {
                let gen = self.macs[i].bump_timer();
                self.queue.push(h, EventKind::MacTimer { node, gen });
            }
        }
    }

    fn on_mac_timer(&mut self, node: NodeId, gen: u64, upcalls: &mut Vec<Upcall<M>>) {
        let i = node.index();
        if gen != self.macs[i].timer_gen {
            return; // stale
        }
        match self.macs[i].state {
            MacState::WaitChannel => self.channel_maybe_idle(node),
            MacState::Difs => {
                debug_assert!(!self.radios[i].busy_with_nav(self.now));
                if self.macs[i].backoff_slots == 0 {
                    self.transmit_head(node);
                } else {
                    let slots = self.macs[i].backoff_slots;
                    self.macs[i].state = MacState::Backoff {
                        slot_start: self.now,
                    };
                    let gen = self.macs[i].bump_timer();
                    self.queue.push(
                        self.now + self.params.slot.saturating_mul(slots as u64),
                        EventKind::MacTimer { node, gen },
                    );
                }
            }
            MacState::Backoff { .. } => {
                self.macs[i].backoff_slots = 0;
                self.transmit_head(node);
            }
            MacState::WaitCts => {
                self.counters.retries += 1;
                self.emit_retry(node);
                self.retry_head(node, true, upcalls);
            }
            MacState::WaitAck => {
                self.counters.retries += 1;
                self.emit_retry(node);
                let long = self.head_uses_rts(node);
                self.retry_head(node, !long, upcalls);
            }
            MacState::SifsBeforeData => self.transmit_data(node),
            MacState::Idle | MacState::TxData | MacState::TxRts => {
                debug_assert!(false, "MAC timer fired in state {:?}", self.macs[i].state);
            }
        }
    }

    fn head_uses_rts(&self, node: NodeId) -> bool {
        let mac = &self.macs[node.index()];
        match mac.queue.front() {
            Some(f) => f.dst.is_some() && f.bytes >= self.params.rts_threshold_bytes,
            None => false,
        }
    }

    // mesh-lint: hot(mac-transmit)
    /// Contention won: send either an RTS or the data frame itself.
    fn transmit_head(&mut self, node: NodeId) {
        // One queue read decides RTS-vs-data and yields the head fields, so
        // the `head_uses_rts` predicate needs no second (panicking) lookup.
        let rts_head = self.macs[node.index()].queue.front().and_then(|f| {
            f.dst
                .filter(|_| f.bytes >= self.params.rts_threshold_bytes)
                .map(|dst| (dst, f.bytes))
        });
        if let Some((dst, bytes)) = rts_head {
            let nav = self.params.rts_nav(bytes);
            self.macs[node.index()].state = MacState::TxRts;
            let rts_bytes = self.params.rts_bytes;
            self.counters.tx_ctrl_frames += 1;
            self.counters.tx_ctrl_bytes += rts_bytes as u64;
            self.node_counters[node.index()].tx_ctrl_frames += 1;
            self.transmit_frame(
                node,
                FrameBody::Rts { dst, nav },
                rts_bytes,
                self.params.ctrl_airtime(rts_bytes),
            );
        } else {
            self.transmit_data(node);
        }
    }

    fn transmit_data(&mut self, node: NodeId) {
        let (body, bytes, class) = {
            // mesh-lint: allow(R6, "TxData/SifsBeforeData are only entered while a head frame is queued; finish_head is what leaves them")
            let f = self.macs[node.index()].queue.front().expect("head exists");
            (
                FrameBody::Data {
                    dst: f.dst,
                    msg: std::sync::Arc::clone(&f.msg),
                    class: f.class,
                    handle: f.handle,
                    mac_seq: f.mac_seq,
                },
                f.bytes,
                f.class,
            )
        };
        self.macs[node.index()].state = MacState::TxData;
        self.counters.record_tx_data(class, bytes as u64);
        let air = self.params.data_airtime(bytes);
        let nc = &mut self.node_counters[node.index()];
        nc.tx_data_frames += 1;
        nc.tx_data_bytes += bytes as u64;
        self.transmit_frame(node, body, bytes, air);
    }

    /// Put a frame on the air: radio TX, fan-out to receivers, TxEnd event.
    fn transmit_frame(&mut self, node: NodeId, body: FrameBody<M>, bytes: u32, air: SimDuration) {
        // Capture trace metadata before `body` moves into the slab; the
        // event itself is emitted after insertion so it carries the FrameId.
        let trace_meta = if self.trace.is_some() {
            Some((Self::trace_kind(&body), body_dst(&body)))
        } else {
            None
        };
        let end = self.now + air;
        self.node_counters[node.index()].airtime_ns += air.as_nanos();
        // Half-duplex: starting our own transmission aborts any reception.
        if let Some(rx) = self.radios[node.index()].rx {
            if self.frame_is_data(rx.frame) {
                self.counters.rx_aborted_data += 1;
                self.emit_rx_drop(node, rx.frame, DropReason::Aborted);
            }
        }
        self.radios[node.index()].start_tx(end);
        self.channel_became_busy(node);

        self.fan_buf.clear();
        self.medium.fan_out(
            node,
            &self.positions,
            self.now,
            &mut self.rng,
            &mut self.fan_buf,
        );
        let refs = self.fan_buf.len() as u32 + 1;
        let id = self.frames.insert(Frame {
            src: node,
            body,
            bytes,
            duration: air,
            refs,
        });
        if let Some((frame_kind, dst)) = trace_meta {
            let (class, seq, _) = self.frame_trace_meta(id);
            self.emit(TraceEvent {
                at: self.now,
                node: Some(node),
                seq,
                class,
                frame: Some(id),
                kind: TraceEventKind::TxStart {
                    frame_kind,
                    dst,
                    bytes,
                },
            });
        }
        for plan in &self.fan_buf {
            self.queue.push(
                self.now + plan.delay,
                EventKind::RxStart {
                    node: plan.node,
                    frame: id,
                    power_w: plan.power_w,
                },
            );
            self.queue.push(
                self.now + plan.delay + air,
                EventKind::RxEnd {
                    node: plan.node,
                    frame: id,
                    power_w: plan.power_w,
                },
            );
        }
        self.queue.push(end, EventKind::TxEnd { node, frame: id });
    }
    // mesh-lint: end-hot

    fn on_tx_end(&mut self, node: NodeId, frame: FrameId, upcalls: &mut Vec<Upcall<M>>) {
        let i = node.index();
        self.radios[i].end_tx();
        if self.tx_orphaned[i] {
            // The sender crashed mid-transmission; the MAC was already reset
            // (and possibly restarted since), so only release the frame.
            self.tx_orphaned[i] = false;
            self.frames.release(frame);
            if !self.down[i] {
                self.channel_maybe_idle(node);
            }
            return;
        }
        debug_assert!(!self.down[i], "down node finished a non-orphaned tx");

        enum After {
            Nothing,
            RtsSent,
            BroadcastDone(TxHandle),
            UnicastSent,
        }
        let after = match self.frames.get(frame).map(|f| &f.body) {
            Some(FrameBody::Rts { .. }) => After::RtsSent,
            Some(FrameBody::Data {
                dst: None, handle, ..
            }) => After::BroadcastDone(*handle),
            Some(FrameBody::Data { dst: Some(_), .. }) => After::UnicastSent,
            Some(FrameBody::Cts { .. }) | Some(FrameBody::Ack { .. }) => After::Nothing,
            None => After::Nothing,
        };
        self.frames.release(frame);

        match after {
            After::RtsSent => {
                debug_assert_eq!(self.macs[i].state, MacState::TxRts);
                self.macs[i].state = MacState::WaitCts;
                let gen = self.macs[i].bump_timer();
                self.queue.push(
                    self.now + self.params.cts_timeout(),
                    EventKind::MacTimer { node, gen },
                );
            }
            After::BroadcastDone(handle) => {
                debug_assert_eq!(self.macs[i].state, MacState::TxData);
                upcalls.push(Upcall::TxDone {
                    node,
                    handle,
                    outcome: TxOutcome::Sent,
                });
                self.finish_head(node);
            }
            After::UnicastSent => {
                debug_assert_eq!(self.macs[i].state, MacState::TxData);
                self.macs[i].state = MacState::WaitAck;
                let gen = self.macs[i].bump_timer();
                self.queue.push(
                    self.now + self.params.ack_timeout(),
                    EventKind::MacTimer { node, gen },
                );
            }
            After::Nothing => {}
        }
        self.channel_maybe_idle(node);
    }

    /// Head frame is done (success or abandoned): move to the next one.
    fn finish_head(&mut self, node: NodeId) {
        let mac = &mut self.macs[node.index()];
        mac.queue.pop_front();
        mac.reset_contention(self.params.cw_min);
        if mac.queue.is_empty() {
            mac.state = MacState::Idle;
            mac.bump_timer();
        } else {
            self.new_head(node);
        }
    }

    /// A unicast attempt failed (no CTS / no ACK): retry or abandon.
    fn retry_head(&mut self, node: NodeId, short: bool, upcalls: &mut Vec<Upcall<M>>) {
        let i = node.index();
        let over = {
            let mac = &mut self.macs[i];
            if short {
                mac.short_retries += 1;
                mac.short_retries > self.params.short_retry_limit
            } else {
                mac.long_retries += 1;
                mac.long_retries > self.params.long_retry_limit
            }
        };
        if over {
            self.counters.unicast_failures += 1;
            let (handle, retries) = {
                let mac = &self.macs[i];
                // mesh-lint: allow(R6, "retry_head only fires from WaitAck/TxRts timeouts, which require the head frame still queued")
                let f = mac.queue.front().expect("head exists");
                (f.handle, mac.short_retries + mac.long_retries)
            };
            upcalls.push(Upcall::TxDone {
                node,
                handle,
                outcome: TxOutcome::Failed { retries },
            });
            self.finish_head(node);
        } else {
            let mac = &mut self.macs[i];
            mac.cw = self.params.next_cw(mac.cw);
            let cw = mac.cw;
            mac.backoff_slots = self.rng.uniform_u32(cw + 1);
            self.contend(node);
        }
    }

    fn on_rx_start(&mut self, node: NodeId, frame: FrameId, power_w: f64) {
        let i = node.index();
        let Some(f) = self.frames.get(frame) else {
            debug_assert!(false, "RxStart for dead frame");
            return;
        };
        let end = self.now + f.duration;
        let is_data = matches!(f.body, FrameBody::Data { .. });
        if is_data {
            self.counters.planned_rx_data += 1;
            // Every planned data arrival opens a traced reception — even at
            // a crashed receiver — so count(RxStart) == planned_rx_data and
            // each one can be paired with exactly one terminal event.
            if self.trace.is_some() {
                let (class, seq, src) = self.frame_trace_meta(frame);
                self.emit(TraceEvent {
                    at: self.now,
                    node: Some(node),
                    seq,
                    class,
                    frame: Some(frame),
                    kind: TraceEventKind::RxStart {
                        // mesh-lint: allow(R6, "frame_trace_meta returns src = Some for every live frame; the slot was checked alive above")
                        src: src.expect("live frame has a source"),
                    },
                });
            }
        }
        if self.down[i] {
            // A crashed radio hears nothing — no carrier sense, no capture.
            if is_data {
                self.counters.fault_rx_dropped += 1;
                self.emit_rx_drop(node, frame, DropReason::FaultRx);
            }
            return;
        }
        // Remember what was being decoded: on capture the *old* frame is
        // the one lost, and it will no longer match at its RxEnd.
        let prev_rx_frame = self.radios[i].rx.map(|rx| rx.frame);
        let phy = self.medium.phy();
        let outcome =
            self.radios[i].arrival(frame, power_w, end, phy.rx_threshold_w, phy.capture_ratio);
        match outcome {
            ArrivalOutcome::StartedRx => {}
            ArrivalOutcome::CapturedOver => {
                self.counters.capture_losses += 1;
                // The *previous* reception is the one lost here; the new
                // frame is now being decoded and resolves at its own RxEnd.
                if let Some(prev) = prev_rx_frame.filter(|&p| self.frame_is_data(p)) {
                    self.counters.rx_lost_data += 1;
                    self.emit_rx_drop(node, prev, DropReason::Captured);
                }
            }
            ArrivalOutcome::LostToStronger => {
                self.counters.capture_losses += 1;
                if is_data {
                    self.counters.rx_lost_data += 1;
                    self.emit_rx_drop(node, frame, DropReason::Captured);
                }
            }
            ArrivalOutcome::Collision => {
                self.counters.collisions += 1;
                self.node_counters[i].collisions += 1;
                // The ongoing frame is corrupted too; it resolves as
                // `rx_corrupted_data` at its own RxEnd.
                if is_data {
                    self.counters.rx_lost_data += 1;
                    self.emit_rx_drop(node, frame, DropReason::Collision);
                }
            }
            ArrivalOutcome::BelowRxThreshold => {
                self.counters.below_rx_threshold += 1;
                if is_data {
                    self.counters.rx_lost_data += 1;
                    self.emit_rx_drop(node, frame, DropReason::BelowThreshold);
                }
            }
            ArrivalOutcome::WhileTx => {
                self.counters.rx_while_tx += 1;
                if is_data {
                    self.counters.rx_lost_data += 1;
                    self.emit_rx_drop(node, frame, DropReason::WhileTx);
                }
            }
        }
        self.channel_became_busy(node);
    }

    fn on_rx_end(
        &mut self,
        node: NodeId,
        frame: FrameId,
        _power_w: f64,
        upcalls: &mut Vec<Upcall<M>>,
    ) {
        let i = node.index();
        if self.down[i] {
            // Any accounting for this arrival happened at RxStart or at the
            // moment of the crash.
            self.frames.release(frame);
            return;
        }
        let done = self.radios[i].arrival_end(frame);
        if let Some(rx) = done {
            if !rx.corrupted {
                self.decode_frame(node, frame, rx.power_w, upcalls);
            } else if self.frame_is_data(frame) {
                self.counters.rx_corrupted_data += 1;
                self.emit_rx_drop(node, frame, DropReason::Corrupted);
            }
        }
        self.frames.release(frame);
        self.channel_maybe_idle(node);
    }

    /// A frame was received intact at `node`: act on its body.
    fn decode_frame(
        &mut self,
        node: NodeId,
        frame: FrameId,
        power_w: f64,
        upcalls: &mut Vec<Upcall<M>>,
    ) {
        let i = node.index();
        let (src, body) = {
            // mesh-lint: allow(R6, "frames are freed only after their last scheduled RxEnd has been delivered, so the slot is alive here")
            let f = self.frames.get(frame).expect("frame alive at RxEnd");
            (f.src, f.body.clone())
        };
        // Control frames have no RxStart/terminal pairing; a bare Delivered
        // marks the successful decode. Data frames are traced per outcome
        // below so each RxStart resolves to exactly one terminal event.
        if self.trace.is_some() && !matches!(body, FrameBody::Data { .. }) {
            self.emit(TraceEvent {
                at: self.now,
                node: Some(node),
                seq: None,
                class: None,
                frame: Some(frame),
                kind: TraceEventKind::Delivered {
                    src,
                    frame_kind: Self::trace_kind(&body),
                },
            });
        }
        match body {
            FrameBody::Rts { dst, nav } => {
                if dst == node {
                    // Respond with CTS after SIFS unless our NAV forbids it.
                    if self.radios[i].nav_until <= self.now {
                        let cts_nav = nav
                            - (self.params.sifs + self.params.ctrl_airtime(self.params.cts_bytes));
                        self.macs[i].pending_ctrl = Some(CtrlResponse::Cts {
                            dst: src,
                            nav: cts_nav,
                        });
                        let gen = self.macs[i].bump_ctrl();
                        self.queue.push(
                            self.now + self.params.sifs,
                            EventKind::CtrlTimer { node, gen },
                        );
                    }
                } else {
                    self.radios[i].nav_until = self.radios[i].nav_until.max(self.now + nav);
                }
            }
            FrameBody::Cts { dst, nav } => {
                if dst == node {
                    if self.macs[i].state == MacState::WaitCts {
                        self.macs[i].state = MacState::SifsBeforeData;
                        let gen = self.macs[i].bump_timer();
                        self.queue.push(
                            self.now + self.params.sifs,
                            EventKind::MacTimer { node, gen },
                        );
                    }
                } else {
                    self.radios[i].nav_until = self.radios[i].nav_until.max(self.now + nav);
                }
            }
            FrameBody::Ack { dst } => {
                if dst == node && self.macs[i].state == MacState::WaitAck {
                    let handle = self.macs[i]
                        .queue
                        .front()
                        .map(|f| f.handle)
                        // mesh-lint: allow(R6, "WaitAck is only entered after transmitting the queued head, and finish_head leaves the state before popping")
                        .expect("head exists in WaitAck");
                    self.macs[i].bump_timer();
                    upcalls.push(Upcall::TxDone {
                        node,
                        handle,
                        outcome: TxOutcome::Sent,
                    });
                    self.finish_head(node);
                }
            }
            FrameBody::Data {
                dst,
                msg,
                class,
                mac_seq,
                ..
            } => {
                let bytes = self.frames.get(frame).map(|f| f.bytes).unwrap_or(0);
                match dst {
                    None => {
                        // An active class-loss burst (fault injection) drops
                        // received broadcasts of the class probabilistically.
                        let burst = self.class_drop[class_slot(class)];
                        if burst > 0.0 && self.rng.chance(burst) {
                            self.counters.fault_rx_dropped += 1;
                            self.emit_rx_drop(node, frame, DropReason::ClassBurst);
                            return;
                        }
                        self.counters.record_rx_data(class, bytes as u64);
                        self.node_counters[i].rx_data_frames += 1;
                        self.emit_data_delivered(node, frame, src);
                        upcalls.push(Upcall::Deliver {
                            node,
                            src,
                            msg,
                            meta: RxMeta {
                                at: self.now,
                                power_w,
                            },
                        });
                    }
                    Some(d) if d == node => {
                        // ACK even duplicates (the sender missed our ACK).
                        self.macs[i].pending_ctrl = Some(CtrlResponse::Ack { dst: src });
                        let gen = self.macs[i].bump_ctrl();
                        self.queue.push(
                            self.now + self.params.sifs,
                            EventKind::CtrlTimer { node, gen },
                        );
                        let dup = self.macs[i].rx_dedup.get(&src) == Some(&mac_seq);
                        if dup {
                            self.counters.duplicate_rx_suppressed += 1;
                            self.emit_rx_drop(node, frame, DropReason::Duplicate);
                        } else {
                            self.macs[i].rx_dedup.insert(src, mac_seq);
                            self.counters.record_rx_data(class, bytes as u64);
                            self.node_counters[i].rx_data_frames += 1;
                            self.emit_data_delivered(node, frame, src);
                            upcalls.push(Upcall::Deliver {
                                node,
                                src,
                                msg,
                                meta: RxMeta {
                                    at: self.now,
                                    power_w,
                                },
                            });
                        }
                    }
                    Some(_) => {
                        // Unicast overheard by a third party; the MAC drops
                        // it, but the conservation oracle still balances it.
                        self.counters.unicast_overheard += 1;
                        self.emit_rx_drop(node, frame, DropReason::NotForUs);
                    }
                }
            }
        }
    }

    fn on_ctrl_timer(&mut self, node: NodeId, gen: u64) {
        let i = node.index();
        if gen != self.macs[i].ctrl_gen {
            return;
        }
        let Some(resp) = self.macs[i].pending_ctrl.take() else {
            return;
        };
        if self.radios[i].tx_until.is_some() {
            // Radio busy transmitting something else; the response is lost.
            return;
        }
        match resp {
            CtrlResponse::Cts { dst, nav } => {
                let bytes = self.params.cts_bytes;
                self.counters.tx_ctrl_frames += 1;
                self.counters.tx_ctrl_bytes += bytes as u64;
                self.node_counters[i].tx_ctrl_frames += 1;
                self.transmit_frame(
                    node,
                    FrameBody::Cts { dst, nav },
                    bytes,
                    self.params.ctrl_airtime(bytes),
                );
            }
            CtrlResponse::Ack { dst } => {
                let bytes = self.params.ack_bytes;
                self.counters.tx_ctrl_frames += 1;
                self.counters.tx_ctrl_bytes += bytes as u64;
                self.node_counters[i].tx_ctrl_frames += 1;
                self.transmit_frame(
                    node,
                    FrameBody::Ack { dst },
                    bytes,
                    self.params.ctrl_airtime(bytes),
                );
            }
        }
    }
}

impl<M: Clone + std::fmt::Debug + Snap> World<M> {
    /// Serialize every piece of mutable world state into a checkpoint
    /// (DESIGN.md §14). Configuration (`params`, the medium/mobility
    /// constructors) is *not* written — a restore target is rebuilt from the
    /// same scenario config and only its mutable state is overwritten. The
    /// trace sink and the scratch buffers (`fan_buf`, `prev_positions`,
    /// `moves_buf`) are transient: each is fully rewritten before its next
    /// read, so they restore empty. Read-only: never perturbs the schedule.
    pub(crate) fn snapshot_state(&self, w: &mut SnapWriter) {
        self.now.snap(w);
        self.queue.snap(w);
        self.positions.snap(w);
        self.radios.snap(w);
        self.macs.snap(w);
        self.frames.snap(w);
        self.medium.snapshot_state(w);
        self.rng.snap(w);
        self.counters.snap(w);
        self.node_counters.snap(w);
        self.cancelled_timers.snap(w);
        w.put_u64(self.timer_seq);
        w.put_u64(self.handle_seq);
        w.put_u64(self.mac_seq);
        self.metrics.snap(w);
        match self.mobility.as_ref() {
            Some(model) => {
                w.put_bool(true);
                model.snapshot_state(w);
            }
            None => w.put_bool(false),
        }
        self.down.snap(w);
        self.tx_orphaned.snap(w);
        self.fault_plan.snap(w);
        self.partition_links.snap(w);
        for &p in &self.class_drop {
            w.put_f64(p);
        }
        w.put_u64(self.time_regressions);
        w.put_u64(self.sched_hash);
    }

    /// Overwrite this world's mutable state from a checkpoint written by
    /// [`World::snapshot_state`]. The world must have been freshly built from
    /// the same scenario config (same node count, medium, mobility and fault
    /// plan); constructor side effects like the initial mobility tick or the
    /// fault plan's scheduled events are wholly superseded because the event
    /// queue, RNG and all per-node state are replaced. `fault_plan` is
    /// assigned directly — *not* via [`World::set_fault_plan`] — because the
    /// restored queue already holds the pending `Fault` events.
    pub(crate) fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.now = Snap::unsnap(r)?;
        self.queue = Snap::unsnap(r)?;
        let positions: Vec<Pos> = Snap::unsnap(r)?;
        if positions.len() != self.positions.len() {
            return Err(SnapError::StateMismatch("node count"));
        }
        self.positions = positions;
        self.radios = Snap::unsnap(r)?;
        self.macs = Snap::unsnap(r)?;
        self.frames = Snap::unsnap(r)?;
        self.medium.restore_state(r)?;
        self.rng = Snap::unsnap(r)?;
        self.counters = Snap::unsnap(r)?;
        self.node_counters = Snap::unsnap(r)?;
        self.cancelled_timers = Snap::unsnap(r)?;
        self.timer_seq = r.u64()?;
        self.handle_seq = r.u64()?;
        self.mac_seq = r.u64()?;
        self.metrics = Snap::unsnap(r)?;
        let has_mobility = r.bool()?;
        match self.mobility.as_mut() {
            Some(model) if has_mobility => model.restore_state(r)?,
            None if !has_mobility => {}
            _ => return Err(SnapError::StateMismatch("mobility model presence")),
        }
        self.down = Snap::unsnap(r)?;
        self.tx_orphaned = Snap::unsnap(r)?;
        self.fault_plan = Snap::unsnap(r)?;
        self.partition_links = Snap::unsnap(r)?;
        for slot in self.class_drop.iter_mut() {
            *slot = r.f64()?;
        }
        self.time_regressions = r.u64()?;
        self.sched_hash = r.u64()?;
        self.fan_buf.clear();
        self.prev_positions.clear();
        self.moves_buf.clear();
        Ok(())
    }
}

fn body_dst<M>(body: &FrameBody<M>) -> Option<NodeId> {
    match body {
        FrameBody::Rts { dst, .. } | FrameBody::Cts { dst, .. } | FrameBody::Ack { dst } => {
            Some(*dst)
        }
        FrameBody::Data { dst, .. } => *dst,
    }
}

/// The API surface a protocol sees while handling an event.
///
/// A `Ctx` borrows the world for the duration of one protocol callback; all
/// actions (sending, timers) are performed through it.
pub struct Ctx<'a, M> {
    pub(crate) world: &'a mut World<M>,
    pub(crate) node: NodeId,
}

impl<M> std::fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("node", &self.node)
            .field("now", &self.world.now)
            .finish()
    }
}

impl<'a, M: Clone + std::fmt::Debug> Ctx<'a, M> {
    /// The node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Total number of nodes in the network.
    pub fn num_nodes(&self) -> usize {
        self.world.num_nodes()
    }

    /// Position of this node.
    pub fn position(&self) -> Pos {
        self.world.position(self.node)
    }

    /// Deterministic RNG (shared world stream).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.world.rng
    }

    /// Queue a link-layer **broadcast** of `msg` with an on-air payload size
    /// of `bytes`, tagged with traffic `class` for accounting.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::QueueFull`] if the MAC queue is full.
    pub fn send_broadcast(&mut self, msg: M, bytes: u32, class: u8) -> Result<TxHandle, SendError> {
        self.world.send_data(self.node, None, msg, bytes, class)
    }

    /// Queue a link-layer **unicast** of `msg` to `dst` (RTS/CTS + ACK +
    /// retransmissions as configured).
    ///
    /// # Errors
    ///
    /// Returns [`SendError::QueueFull`] if the MAC queue is full, or
    /// [`SendError::BadDestination`] if `dst` is this node or out of range of
    /// valid ids.
    pub fn send_unicast(
        &mut self,
        dst: NodeId,
        msg: M,
        bytes: u32,
        class: u8,
    ) -> Result<TxHandle, SendError> {
        self.world
            .send_data(self.node, Some(dst), msg, bytes, class)
    }

    /// Arm a one-shot timer `delay` from now; `kind` is echoed back.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u64) -> TimerId {
        self.world.set_timer(self.node, delay, kind)
    }

    /// Cancel a timer set earlier (no-op if it already fired).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.world.cancel_timer(timer)
    }

    /// Current MAC transmit queue length of this node.
    pub fn mac_queue_len(&self) -> usize {
        self.world.macs[self.node.index()].queue.len()
    }

    /// Capacity of this node's MAC transmit queue (the drop threshold).
    /// Together with [`Ctx::mac_queue_len`] this gives protocols a local
    /// occupancy signal, e.g. for load-aware metrics.
    pub fn mac_queue_cap(&self) -> usize {
        self.world.params.queue_cap
    }

    /// Run counters (read-only).
    pub fn counters(&self) -> &Counters {
        self.world.counters()
    }

    /// Record a protocol-level decision in the attached trace. Observation
    /// only — a no-op when tracing is off, and never schedules events, draws
    /// randomness or touches counters (see [`crate::trace`]).
    pub fn trace_decision(&mut self, decision: Decision) {
        if self.world.trace.is_some() {
            let at = self.world.now;
            self.world.emit(TraceEvent {
                at,
                node: Some(self.node),
                seq: None,
                class: None,
                frame: None,
                kind: TraceEventKind::ProtocolDecision { decision },
            });
        }
    }

    /// Report one application-level delivery with its end-to-end `delay` to
    /// the metrics timeseries (see [`crate::metrics`]). No-op when metrics
    /// recording is off.
    pub fn observe_delivery(&mut self, delay: SimDuration) {
        if let Some(m) = self.world.metrics.as_mut() {
            m.record_delivery(delay);
        }
    }
}
