//! Radio propagation models.
//!
//! The paper's simulations use the TwoRay ground-reflection model with
//! Rayleigh fading (GloMoSim defaults); this module provides Friis free-space,
//! TwoRay, optional log-normal shadowing, and per-frame Rayleigh fading, with
//! the classic constants that yield a 250 m nominal communication range and a
//! 550 m carrier-sense range at 2 Mbps.

use crate::rng::SimRng;

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Deterministic large-scale path-loss models.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PathLossModel {
    /// Friis free-space model (`1/d^2`).
    FreeSpace,
    /// Two-ray ground reflection: Friis below the crossover distance, `1/d^4`
    /// beyond. This is the model the paper names.
    #[default]
    TwoRayGround,
    /// Log-distance: Friis up to a reference distance `d0`, then
    /// `1/d^exponent`. Exponents of 3-5 approximate obstructed indoor
    /// environments like the paper's testbed floor (an alternative to the
    /// table-driven testbed medium when physics-based variation is wanted).
    LogDistance {
        /// Path-loss exponent (free space = 2; indoor obstructed 3-5).
        exponent: f64,
        /// Reference distance in meters where Friis hands over.
        reference_m: f64,
    },
}

/// Stochastic small-scale fading applied per frame per link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FadingModel {
    /// No fading; reception is a pure function of distance.
    None,
    /// Rayleigh fading: received power is multiplied by a unit-mean
    /// exponential gain, drawn independently per frame. Appropriate for
    /// non-line-of-sight environments with many reflectors — the paper's
    /// stated choice.
    #[default]
    Rayleigh,
    /// Ricean fading with K-factor (ratio of line-of-sight to scattered
    /// power). `K = 0` degenerates to Rayleigh.
    Ricean {
        /// Linear (not dB) K-factor.
        k: f64,
    },
}

/// Radio/PHY parameters shared by every node.
///
/// Defaults are the classic ns-2/GloMoSim 914 MHz WaveLAN constants: 281.8 mW
/// transmit power, receive threshold 3.652e-10 W (≈250 m under TwoRay) and
/// carrier-sense threshold 1.559e-11 W (≈550 m).
#[derive(Debug, Clone, PartialEq)]
pub struct PhyParams {
    /// Transmit power in watts.
    pub tx_power_w: f64,
    /// Transmit antenna gain (linear).
    pub tx_gain: f64,
    /// Receive antenna gain (linear).
    pub rx_gain: f64,
    /// Antenna height above ground in meters (both ends).
    pub antenna_height_m: f64,
    /// Carrier frequency in Hz.
    pub frequency_hz: f64,
    /// System loss factor `L >= 1` (linear).
    pub system_loss: f64,
    /// Minimum power for successful decode, in watts.
    pub rx_threshold_w: f64,
    /// Minimum power for the channel to be sensed busy, in watts.
    pub cs_threshold_w: f64,
    /// Capture ratio: a frame is decodable during interference if it is this
    /// factor (linear) stronger than the interferer.
    pub capture_ratio: f64,
    /// Large-scale path loss model.
    pub path_loss: PathLossModel,
    /// Small-scale fading model.
    pub fading: FadingModel,
    /// Log-normal shadowing standard deviation in dB (0 disables).
    pub shadowing_sigma_db: f64,
}

impl Default for PhyParams {
    fn default() -> Self {
        PhyParams {
            tx_power_w: 0.2818,
            tx_gain: 1.0,
            rx_gain: 1.0,
            antenna_height_m: 1.5,
            frequency_hz: 914e6,
            system_loss: 1.0,
            rx_threshold_w: 3.652e-10,
            cs_threshold_w: 1.559e-11,
            capture_ratio: 10.0,
            path_loss: PathLossModel::TwoRayGround,
            fading: FadingModel::Rayleigh,
            shadowing_sigma_db: 0.0,
        }
    }
}

impl PhyParams {
    /// Carrier wavelength in meters.
    pub fn wavelength_m(&self) -> f64 {
        SPEED_OF_LIGHT / self.frequency_hz
    }

    /// Crossover distance of the two-ray model: below it Friis applies,
    /// beyond it the `1/d^4` ground-reflection term dominates.
    pub fn crossover_distance_m(&self) -> f64 {
        4.0 * std::f64::consts::PI * self.antenna_height_m * self.antenna_height_m
            / self.wavelength_m()
    }

    /// Mean (unfaded) received power in watts at distance `d` meters.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative or NaN.
    pub fn mean_rx_power_w(&self, d: f64) -> f64 {
        assert!(d >= 0.0, "distance must be non-negative");
        // Clamp tiny distances: co-located antennas receive at the reference
        // distance of one wavelength rather than infinite power.
        let d = d.max(self.wavelength_m());
        let friis = |d: f64| {
            let lambda = self.wavelength_m();
            self.tx_power_w * self.tx_gain * self.rx_gain * lambda * lambda
                / (16.0 * std::f64::consts::PI * std::f64::consts::PI * d * d * self.system_loss)
        };
        match self.path_loss {
            PathLossModel::FreeSpace => friis(d),
            PathLossModel::TwoRayGround => {
                let dc = self.crossover_distance_m();
                if d <= dc {
                    friis(d)
                } else {
                    let h2 = self.antenna_height_m * self.antenna_height_m;
                    self.tx_power_w * self.tx_gain * self.rx_gain * h2 * h2
                        / (d * d * d * d * self.system_loss)
                }
            }
            PathLossModel::LogDistance {
                exponent,
                reference_m,
            } => {
                let d0 = reference_m.max(self.wavelength_m());
                if d <= d0 {
                    friis(d)
                } else {
                    friis(d0) * (d0 / d).powf(exponent)
                }
            }
        }
    }

    /// Sample the actual received power in watts for one frame at distance
    /// `d`, applying shadowing and fading.
    pub fn sample_rx_power_w(&self, d: f64, rng: &mut SimRng) -> f64 {
        self.sample_from_mean_w(self.mean_rx_power_w(d), rng)
    }

    /// Sample one frame's received power from a precomputed mean power
    /// (as returned by [`PhyParams::mean_rx_power_w`]), applying shadowing
    /// and fading. Draws the exact same RNG sequence as
    /// [`PhyParams::sample_rx_power_w`], so media may cache mean powers per
    /// link without perturbing determinism.
    pub fn sample_from_mean_w(&self, mean_w: f64, rng: &mut SimRng) -> f64 {
        let mut p = mean_w;
        if self.shadowing_sigma_db > 0.0 {
            let db = rng.normal_db(self.shadowing_sigma_db);
            p *= 10f64.powf(db / 10.0);
        }
        match self.fading {
            FadingModel::None => p,
            FadingModel::Rayleigh => p * rng.rayleigh_power_gain(),
            FadingModel::Ricean { k } => {
                // Power gain of a Ricean channel: |sqrt(K/(K+1)) + X/sqrt(K+1)|^2
                // with X complex normal; sampled via two gaussians.
                let k = k.max(0.0);
                let s = (k / (k + 1.0)).sqrt();
                let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
                let re = s + sigma * rng.normal_db(1.0);
                let im = sigma * rng.normal_db(1.0);
                p * (re * re + im * im)
            }
        }
    }

    /// The deterministic (no-fading) communication range implied by the
    /// receive threshold, found by bisection.
    pub fn nominal_range_m(&self) -> f64 {
        self.range_for_threshold(self.rx_threshold_w)
    }

    /// The deterministic carrier-sense range implied by the CS threshold.
    pub fn carrier_sense_range_m(&self) -> f64 {
        self.range_for_threshold(self.cs_threshold_w)
    }

    /// The largest distance at which the *mean* received power still reaches
    /// `thresh` watts, found by bisection (mean power is monotone
    /// non-increasing in distance for every supported path-loss model).
    /// Capped at 100 km. Spatial indexes use this to bound their search
    /// radius for a given power floor.
    pub fn range_for_mean_power(&self, thresh: f64) -> f64 {
        self.range_for_threshold(thresh)
    }

    fn range_for_threshold(&self, thresh: f64) -> f64 {
        let (mut lo, mut hi) = (0.1, 1.0e5);
        if self.mean_rx_power_w(hi) >= thresh {
            return hi;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.mean_rx_power_w(mid) >= thresh {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Propagation delay over `d` meters.
    pub fn propagation_delay(&self, d: f64) -> crate::time::SimDuration {
        crate::time::SimDuration::from_secs_f64(d / SPEED_OF_LIGHT)
    }

    /// Build a [`MeanPowerEval`] for these parameters.
    pub fn mean_power_eval(&self) -> MeanPowerEval {
        MeanPowerEval::new(self)
    }
}

/// Precomputed evaluator for [`PhyParams::mean_rx_power_w`].
///
/// `mean_rx_power_w` recomputes the wavelength and the two-ray crossover
/// distance — a division each — on every call, which dominates its cost when
/// a spatial index filters tens of candidates per frame. This evaluator
/// hoists every distance-independent subexpression at construction while
/// performing the remaining per-call floating-point operations in *exactly*
/// the order `mean_rx_power_w` performs them, so for every non-negative
/// distance `eval(d)` returns the bit-identical `f64` (asserted by unit
/// tests across all path-loss models). Cached evaluators must be rebuilt if
/// the [`PhyParams`] they were derived from change.
#[derive(Debug, Clone, Copy)]
pub struct MeanPowerEval {
    /// Wavelength, the clamp floor for tiny distances.
    lambda: f64,
    model: EvalModel,
}

/// Per-model precomputed constants of [`MeanPowerEval`].
#[derive(Debug, Clone, Copy)]
enum EvalModel {
    /// Friis everywhere: `num / (C16PI2·d·d·L)`.
    FreeSpace { num: f64, loss: f64 },
    /// Friis below `dc`, `num4 / (d⁴·L)` beyond.
    TwoRay {
        num: f64,
        num4: f64,
        dc: f64,
        loss: f64,
    },
    /// Friis below `d0`, `at_d0·(d0/d)^exponent` beyond.
    LogDistance {
        num: f64,
        loss: f64,
        d0: f64,
        at_d0: f64,
        exponent: f64,
    },
}

/// `16π²`, folded with the same operation order `mean_rx_power_w` uses
/// (`16.0 * PI * PI`), so the constant is bit-identical.
const C16PI2: f64 = 16.0 * std::f64::consts::PI * std::f64::consts::PI;

impl MeanPowerEval {
    /// Precompute the evaluator for `phy`.
    pub fn new(phy: &PhyParams) -> Self {
        let lambda = phy.wavelength_m();
        // Same association order as the `friis` closure's numerator:
        // ((((tx·g_tx)·g_rx)·λ)·λ).
        let num = phy.tx_power_w * phy.tx_gain * phy.rx_gain * lambda * lambda;
        let loss = phy.system_loss;
        let model = match phy.path_loss {
            PathLossModel::FreeSpace => EvalModel::FreeSpace { num, loss },
            PathLossModel::TwoRayGround => {
                let h2 = phy.antenna_height_m * phy.antenna_height_m;
                EvalModel::TwoRay {
                    num,
                    // ((((tx·g_tx)·g_rx)·h²)·h²), as in the far-field branch.
                    num4: phy.tx_power_w * phy.tx_gain * phy.rx_gain * h2 * h2,
                    dc: phy.crossover_distance_m(),
                    loss,
                }
            }
            PathLossModel::LogDistance {
                exponent,
                reference_m,
            } => {
                let d0 = reference_m.max(lambda);
                EvalModel::LogDistance {
                    num,
                    loss,
                    d0,
                    at_d0: num / (C16PI2 * d0 * d0 * loss),
                    exponent,
                }
            }
        };
        MeanPowerEval { lambda, model }
    }

    // mesh-lint: hot(mean-power-eval)
    /// Mean received power at distance `d` meters; bit-identical to
    /// [`PhyParams::mean_rx_power_w`] of the source parameters.
    ///
    /// `d` must be non-negative (callers pass `sqrt` outputs); unlike
    /// `mean_rx_power_w` this is only checked in debug builds.
    #[inline]
    pub fn eval(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0, "distance must be non-negative");
        let d = d.max(self.lambda);
        // Denominators keep `mean_rx_power_w`'s association order:
        // Friis `(((C16PI2·d)·d)·L)`, far-field `((((d·d)·d)·d)·L)`.
        match self.model {
            EvalModel::FreeSpace { num, loss } => num / (C16PI2 * d * d * loss),
            EvalModel::TwoRay {
                num,
                num4,
                dc,
                loss,
            } => {
                if d <= dc {
                    num / (C16PI2 * d * d * loss)
                } else {
                    num4 / (d * d * d * d * loss)
                }
            }
            EvalModel::LogDistance {
                num,
                loss,
                d0,
                at_d0,
                exponent,
            } => {
                if d <= d0 {
                    num / (C16PI2 * d * d * loss)
                } else {
                    at_d0 * (d0 / d).powf(exponent)
                }
            }
        }
    }
    // mesh-lint: end-hot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_range_is_250m() {
        let p = PhyParams::default();
        let r = p.nominal_range_m();
        assert!(
            (r - 250.0).abs() < 5.0,
            "expected ~250m nominal range, got {r}"
        );
    }

    #[test]
    fn default_cs_range_is_550m() {
        let p = PhyParams::default();
        let r = p.carrier_sense_range_m();
        assert!((r - 550.0).abs() < 12.0, "expected ~550m CS range, got {r}");
    }

    #[test]
    fn power_monotonically_decreases() {
        let p = PhyParams::default();
        let mut last = f64::INFINITY;
        for d in [1.0, 10.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
            let pw = p.mean_rx_power_w(d);
            assert!(pw < last, "power should decrease with distance");
            last = pw;
        }
    }

    #[test]
    fn two_ray_matches_friis_below_crossover() {
        let mut p = PhyParams::default();
        let dc = p.crossover_distance_m();
        let d = dc * 0.5;
        let two_ray = p.mean_rx_power_w(d);
        p.path_loss = PathLossModel::FreeSpace;
        let friis = p.mean_rx_power_w(d);
        assert!((two_ray - friis).abs() / friis < 1e-12);
    }

    #[test]
    fn two_ray_decays_faster_beyond_crossover() {
        let p = PhyParams::default();
        let dc = p.crossover_distance_m();
        // Doubling the distance divides power by 16 in the d^4 regime.
        let p1 = p.mean_rx_power_w(2.0 * dc);
        let p2 = p.mean_rx_power_w(4.0 * dc);
        assert!((p1 / p2 - 16.0).abs() < 0.01);
    }

    #[test]
    fn log_distance_matches_friis_at_reference() {
        let ld = PhyParams {
            path_loss: PathLossModel::LogDistance {
                exponent: 3.5,
                reference_m: 10.0,
            },
            ..PhyParams::default()
        };
        let fs = PhyParams {
            path_loss: PathLossModel::FreeSpace,
            ..PhyParams::default()
        };
        let at_ref = ld.mean_rx_power_w(10.0);
        assert!((at_ref - fs.mean_rx_power_w(10.0)).abs() / at_ref < 1e-12);
        // Beyond the reference, decay is steeper than free space.
        assert!(ld.mean_rx_power_w(100.0) < fs.mean_rx_power_w(100.0));
        // Exponent check: 10x distance past reference = 35 dB drop.
        let ratio = ld.mean_rx_power_w(10.0) / ld.mean_rx_power_w(100.0);
        assert!((ratio.log10() * 10.0 - 35.0).abs() < 0.1);
    }

    #[test]
    fn log_distance_monotone() {
        let ld = PhyParams {
            path_loss: PathLossModel::LogDistance {
                exponent: 4.0,
                reference_m: 5.0,
            },
            ..PhyParams::default()
        };
        let mut last = f64::INFINITY;
        for d in [1.0, 4.0, 5.0, 6.0, 20.0, 100.0, 400.0] {
            let p = ld.mean_rx_power_w(d);
            assert!(p <= last * (1.0 + 1e-12), "at {d}");
            last = p;
        }
    }

    #[test]
    fn rayleigh_fading_preserves_mean_power() {
        let p = PhyParams::default();
        let mut rng = SimRng::seed_from(11);
        let d = 150.0;
        let mean_model = p.mean_rx_power_w(d);
        let n = 40_000;
        let mean_sampled: f64 = (0..n)
            .map(|_| p.sample_rx_power_w(d, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_sampled / mean_model - 1.0).abs() < 0.05,
            "ratio={}",
            mean_sampled / mean_model
        );
    }

    #[test]
    fn rayleigh_makes_long_links_lossy_but_not_dead() {
        // At 200m (within nominal range) fading should cause some loss;
        // at 300m (beyond range) fading should allow occasional reception.
        let p = PhyParams::default();
        let mut rng = SimRng::seed_from(13);
        let trials = 20_000;
        let recv_at = |d: f64, rng: &mut SimRng| {
            (0..trials)
                .filter(|_| p.sample_rx_power_w(d, rng) >= p.rx_threshold_w)
                .count() as f64
                / trials as f64
        };
        let p200 = recv_at(200.0, &mut rng);
        let p300 = recv_at(300.0, &mut rng);
        assert!(p200 > 0.6 && p200 < 1.0, "p200={p200}");
        assert!(p300 > 0.0 && p300 < 0.5, "p300={p300}");
        assert!(p200 > p300);
    }

    #[test]
    fn ricean_large_k_approaches_no_fading() {
        let p = PhyParams {
            fading: FadingModel::Ricean { k: 1e6 },
            ..PhyParams::default()
        };
        let mut rng = SimRng::seed_from(17);
        let d = 100.0;
        let mean = p.mean_rx_power_w(d);
        for _ in 0..100 {
            let s = p.sample_rx_power_w(d, &mut rng);
            assert!((s / mean - 1.0).abs() < 0.02);
        }
    }

    #[test]
    fn shadowing_varies_power() {
        let p = PhyParams {
            fading: FadingModel::None,
            shadowing_sigma_db: 6.0,
            ..PhyParams::default()
        };
        let mut rng = SimRng::seed_from(19);
        let d = 100.0;
        let a = p.sample_rx_power_w(d, &mut rng);
        let b = p.sample_rx_power_w(d, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn propagation_delay_scale() {
        let p = PhyParams::default();
        let d = p.propagation_delay(300.0);
        // 300 m at light speed ≈ 1 microsecond.
        assert!((d.as_secs_f64() - 1.0e-6).abs() < 2e-8);
    }

    #[test]
    fn mean_power_eval_bit_identical() {
        // The evaluator's whole contract is bitwise equality, so compare
        // `to_bits`, not approximate values, over a dense sweep that crosses
        // every regime boundary (wavelength clamp, crossover, reference).
        let models = [
            PathLossModel::FreeSpace,
            PathLossModel::TwoRayGround,
            PathLossModel::LogDistance {
                exponent: 3.5,
                reference_m: 10.0,
            },
        ];
        for model in models {
            let p = PhyParams {
                path_loss: model,
                system_loss: 1.3,
                ..PhyParams::default()
            };
            let eval = p.mean_power_eval();
            let dc = p.crossover_distance_m();
            let mut sweep: Vec<f64> = (0..2000).map(|i| i as f64 * 1.7).collect();
            sweep.extend([
                0.0,
                1e-9,
                p.wavelength_m(),
                p.wavelength_m() * 1.0000001,
                dc - 1e-9,
                dc,
                dc + 1e-9,
                9.999,
                10.0,
                10.001,
                1739.25,
                99_999.0,
            ]);
            for d in sweep {
                assert_eq!(
                    eval.eval(d).to_bits(),
                    p.mean_rx_power_w(d).to_bits(),
                    "model {model:?}, d={d}"
                );
            }
        }
    }

    #[test]
    fn tiny_distance_clamped() {
        let p = PhyParams::default();
        let at_zero = p.mean_rx_power_w(0.0);
        assert!(at_zero.is_finite());
        assert!(at_zero >= p.mean_rx_power_w(1.0));
    }
}
