//! Node mobility models.
//!
//! The paper's networks are *static* meshes — that stationarity is what
//! makes link-quality routing metrics pay off. ODMRP itself, however, was
//! designed for mobile ad-hoc networks, and the natural robustness question
//! is how the metrics behave when nodes move. This module provides the
//! classic random-waypoint model (and a static no-op) behind the
//! [`Mobility`] trait; attach one with
//! [`Simulator::set_mobility`](crate::simulator::Simulator::set_mobility).

use crate::geometry::{Area, Pos};
use crate::rng::SimRng;
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// A mobility model: updates node positions as simulated time advances.
pub trait Mobility: std::fmt::Debug {
    /// Advance the model to `now`, updating `positions` in place.
    ///
    /// Returns when the model wants to be stepped next, or `None` if the
    /// positions will never change again.
    fn step(&mut self, now: SimTime, positions: &mut [Pos], rng: &mut SimRng) -> Option<SimTime>;

    /// Write the model's mutable state into a checkpoint (DESIGN.md §14).
    /// Stateless models keep the no-op default.
    fn snapshot_state(&self, _w: &mut SnapWriter) {}

    /// Restore the model's mutable state from a checkpoint. The model is
    /// assumed to be freshly constructed from the same scenario config.
    fn restore_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// No movement (the mesh-network assumption).
#[derive(Debug, Clone, Copy, Default)]
pub struct Static;

impl Mobility for Static {
    fn step(
        &mut self,
        _now: SimTime,
        _positions: &mut [Pos],
        _rng: &mut SimRng,
    ) -> Option<SimTime> {
        None
    }
}

#[derive(Debug, Clone, Copy)]
enum WaypointState {
    /// Paused until the given instant.
    Paused { until: SimTime },
    /// Moving toward `target` at `speed` m/s.
    Moving { target: Pos, speed: f64 },
}

/// The random-waypoint model: each node repeatedly picks a uniform target in
/// the area, moves there at a uniform-random speed, pauses, and repeats.
#[derive(Debug)]
pub struct RandomWaypoint {
    area: Area,
    min_speed: f64,
    max_speed: f64,
    pause: SimDuration,
    tick: SimDuration,
    states: Vec<WaypointState>,
    last_update: SimTime,
    started: bool,
}

impl RandomWaypoint {
    /// Create a model over `area` with speeds in `[min_speed, max_speed]`
    /// m/s and the given pause time at each waypoint.
    ///
    /// # Panics
    ///
    /// Panics if speeds are non-positive or `min_speed > max_speed`.
    pub fn new(area: Area, min_speed: f64, max_speed: f64, pause: SimDuration) -> Self {
        assert!(
            min_speed > 0.0 && max_speed >= min_speed,
            "speeds must be positive and ordered"
        );
        RandomWaypoint {
            area,
            min_speed,
            max_speed,
            pause,
            tick: SimDuration::from_millis(100),
            states: Vec::new(),
            last_update: SimTime::ZERO,
            started: false,
        }
    }

    /// Position-update granularity (default 100 ms).
    pub fn with_tick(mut self, tick: SimDuration) -> Self {
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        self.tick = tick;
        self
    }

    fn new_leg(&self, now: SimTime, rng: &mut SimRng) -> WaypointState {
        if self.pause > SimDuration::ZERO && rng.chance(0.5) {
            WaypointState::Paused {
                until: now + self.pause,
            }
        } else {
            WaypointState::Moving {
                target: Pos::new(
                    rng.uniform_range(0.0, self.area.width),
                    rng.uniform_range(0.0, self.area.height),
                ),
                speed: rng.uniform_range(self.min_speed, self.max_speed),
            }
        }
    }
}

impl Mobility for RandomWaypoint {
    fn step(&mut self, now: SimTime, positions: &mut [Pos], rng: &mut SimRng) -> Option<SimTime> {
        if !self.started {
            self.started = true;
            self.states = (0..positions.len())
                .map(|_| self.new_leg(now, rng))
                .collect();
            self.last_update = now;
            return Some(now + self.tick);
        }
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        self.last_update = now;
        for (i, state) in self.states.iter_mut().enumerate() {
            match *state {
                WaypointState::Paused { until } => {
                    if now >= until {
                        *state = WaypointState::Moving {
                            target: Pos::new(
                                rng.uniform_range(0.0, self.area.width),
                                rng.uniform_range(0.0, self.area.height),
                            ),
                            speed: rng.uniform_range(self.min_speed, self.max_speed),
                        };
                    }
                }
                WaypointState::Moving { target, speed } => {
                    let p = positions[i];
                    let dist = p.distance_to(target);
                    let step = speed * dt;
                    if step >= dist {
                        positions[i] = target;
                        *state = if self.pause > SimDuration::ZERO {
                            WaypointState::Paused {
                                until: now + self.pause,
                            }
                        } else {
                            WaypointState::Moving {
                                target: Pos::new(
                                    rng.uniform_range(0.0, self.area.width),
                                    rng.uniform_range(0.0, self.area.height),
                                ),
                                speed: rng.uniform_range(self.min_speed, self.max_speed),
                            }
                        };
                    } else if dist > 0.0 {
                        let f = step / dist;
                        positions[i] =
                            Pos::new(p.x + (target.x - p.x) * f, p.y + (target.y - p.y) * f);
                    }
                }
            }
        }
        Some(now + self.tick)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.states.snap(w);
        self.last_update.snap(w);
        w.put_bool(self.started);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.states = Snap::unsnap(r)?;
        self.last_update = Snap::unsnap(r)?;
        self.started = r.bool()?;
        Ok(())
    }
}

impl Snap for WaypointState {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            WaypointState::Paused { until } => {
                w.put_u8(0);
                until.snap(w);
            }
            WaypointState::Moving { target, speed } => {
                w.put_u8(1);
                target.snap(w);
                w.put_f64(speed);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => WaypointState::Paused {
                until: Snap::unsnap(r)?,
            },
            1 => WaypointState::Moving {
                target: Snap::unsnap(r)?,
                speed: r.f64()?,
            },
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_model_never_reschedules() {
        let mut m = Static;
        let mut ps = vec![Pos::new(1.0, 2.0)];
        let mut rng = SimRng::seed_from(1);
        assert_eq!(m.step(SimTime::ZERO, &mut ps, &mut rng), None);
        assert_eq!(ps[0], Pos::new(1.0, 2.0));
    }

    #[test]
    fn waypoint_moves_nodes_within_area() {
        let area = Area::square(100.0);
        let mut m = RandomWaypoint::new(area, 1.0, 5.0, SimDuration::ZERO);
        let mut ps = vec![Pos::new(50.0, 50.0); 5];
        let mut rng = SimRng::seed_from(2);
        let mut t = SimTime::ZERO;
        let mut moved = false;
        for _ in 0..200 {
            let next = m.step(t, &mut ps, &mut rng).expect("keeps moving");
            assert!(next > t);
            t = next;
            for p in &ps {
                assert!(area.contains(*p), "node escaped: {p}");
            }
            if ps[0] != Pos::new(50.0, 50.0) {
                moved = true;
            }
        }
        assert!(moved, "nobody moved in 20 simulated seconds");
    }

    #[test]
    fn movement_speed_is_bounded() {
        let area = Area::square(1000.0);
        let mut m = RandomWaypoint::new(area, 2.0, 4.0, SimDuration::ZERO);
        let mut ps = vec![Pos::new(500.0, 500.0)];
        let mut rng = SimRng::seed_from(3);
        let mut t = m.step(SimTime::ZERO, &mut ps, &mut rng).unwrap();
        for _ in 0..100 {
            let before = ps[0];
            let next = m.step(t, &mut ps, &mut rng).unwrap();
            let dt = next.saturating_since(t).as_secs_f64();
            let d = before.distance_to(ps[0]);
            // Distance per tick bounded by max speed (allow epsilon).
            assert!(d <= 4.0 * dt.max(0.1) + 1e-9, "d={d} in dt={dt}");
            t = next;
        }
    }

    #[test]
    fn pause_keeps_node_still() {
        let area = Area::square(100.0);
        // All-pause model: chance(0.5) decides, so force by long pause then
        // check at least some nodes hold still between consecutive ticks.
        let mut m = RandomWaypoint::new(area, 1.0, 1.0, SimDuration::from_secs(3600));
        let mut ps = vec![Pos::new(10.0, 10.0); 8];
        let mut rng = SimRng::seed_from(4);
        let mut t = m.step(SimTime::ZERO, &mut ps, &mut rng).unwrap();
        let snapshot = ps.clone();
        for _ in 0..10 {
            t = m.step(t, &mut ps, &mut rng).unwrap();
        }
        let still = ps.iter().zip(&snapshot).filter(|(a, b)| a == b).count();
        assert!(still > 0, "with an hour-long pause someone must be paused");
    }

    #[test]
    #[should_panic(expected = "speeds")]
    fn bad_speeds_rejected() {
        let _ = RandomWaypoint::new(Area::square(10.0), 0.0, 1.0, SimDuration::ZERO);
    }
}
