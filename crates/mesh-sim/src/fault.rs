//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a schedule of [`FaultKind`]s applied to the world as
//! ordinary simulator events: a plan attached before the run is replayed
//! bit-identically on every execution with the same seed, which is what the
//! differential-replay tests rely on.
//!
//! The fault model covers the failure classes the paper's metrics are meant
//! to survive:
//!
//! * **node crash / recover** — the radio goes silent, the MAC queue is
//!   purged and the protocol instance is rebooted on recovery (see
//!   [`crate::protocol::Protocol::handle_restart`]);
//! * **link blackout / degradation** — per-directed-link [`LinkEffect`]
//!   overrides applied by the medium (extra Bernoulli loss, power
//!   attenuation, or total blackout);
//! * **regional partition** — every link crossing a vertical boundary is
//!   blacked out (snapshot of positions at fault time);
//! * **class loss bursts** — broadcast frames of one traffic class (e.g.
//!   probes) are dropped at the receiver with a given probability, modelling
//!   interference that selectively hits small periodic frames.

use crate::ids::NodeId;
use crate::medium::LinkEffect;
use crate::rng::SimRng;
use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Power off a node: radio silent, MAC queue purged, protocol frozen.
    NodeCrash(NodeId),
    /// Power a crashed node back on; its protocol gets a restart callback.
    NodeRecover(NodeId),
    /// Apply a [`LinkEffect`] override to one directed link.
    LinkFault {
        /// Transmitting side of the affected link.
        from: NodeId,
        /// Receiving side of the affected link.
        to: NodeId,
        /// The override to apply.
        effect: LinkEffect,
    },
    /// Remove any override from one directed link.
    LinkRestore {
        /// Transmitting side of the restored link.
        from: NodeId,
        /// Receiving side of the restored link.
        to: NodeId,
    },
    /// Black out every link crossing the vertical line `x = boundary_x_m`,
    /// judged against node positions at the instant the fault fires.
    Partition {
        /// The x coordinate of the partition boundary, in meters.
        boundary_x_m: f64,
    },
    /// Undo a previous [`FaultKind::Partition`] (restores exactly the links
    /// the partition blacked out).
    HealPartition,
    /// Drop received broadcast frames of `class` with probability `drop`.
    ClassLossBurst {
        /// Traffic class affected (e.g. the probe class).
        class: u8,
        /// Per-frame drop probability in `[0, 1]`.
        drop: f64,
    },
    /// End a [`FaultKind::ClassLossBurst`] for `class`.
    ClassLossClear {
        /// Traffic class restored.
        class: u8,
    },
}

/// A deterministic schedule of faults, applied as simulator events.
///
/// Build one with the chained helpers and attach it via
/// [`crate::simulator::Simulator::set_fault_plan`] (or
/// [`crate::world::World::set_fault_plan`]) before the run starts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule one fault at an absolute time.
    pub fn at(mut self, t: SimTime, fault: FaultKind) -> Self {
        self.events.push((t, fault));
        self
    }

    /// Crash `node` at `t1` and recover it at `t2`.
    ///
    /// # Panics
    ///
    /// Panics if `t2 <= t1`.
    pub fn crash_window(self, node: NodeId, t1: SimTime, t2: SimTime) -> Self {
        assert!(t2 > t1, "recovery must follow the crash");
        self.at(t1, FaultKind::NodeCrash(node))
            .at(t2, FaultKind::NodeRecover(node))
    }

    /// Black out the link between `a` and `b` (both directions) during
    /// `[t1, t2)`.
    ///
    /// # Panics
    ///
    /// Panics if `t2 <= t1`.
    pub fn link_blackout_window(self, a: NodeId, b: NodeId, t1: SimTime, t2: SimTime) -> Self {
        assert!(t2 > t1, "restore must follow the blackout");
        self.at(
            t1,
            FaultKind::LinkFault {
                from: a,
                to: b,
                effect: LinkEffect::Blackout,
            },
        )
        .at(
            t1,
            FaultKind::LinkFault {
                from: b,
                to: a,
                effect: LinkEffect::Blackout,
            },
        )
        .at(t2, FaultKind::LinkRestore { from: a, to: b })
        .at(t2, FaultKind::LinkRestore { from: b, to: a })
    }

    /// Degrade the link between `a` and `b` (both directions) with extra
    /// Bernoulli loss `extra` during `[t1, t2)`.
    ///
    /// # Panics
    ///
    /// Panics if `t2 <= t1` or `extra` is not a probability.
    pub fn link_degrade_window(
        self,
        a: NodeId,
        b: NodeId,
        extra: f64,
        t1: SimTime,
        t2: SimTime,
    ) -> Self {
        assert!(t2 > t1, "restore must follow the degradation");
        assert!((0.0..=1.0).contains(&extra), "extra loss is a probability");
        self.at(
            t1,
            FaultKind::LinkFault {
                from: a,
                to: b,
                effect: LinkEffect::ExtraLoss(extra),
            },
        )
        .at(
            t1,
            FaultKind::LinkFault {
                from: b,
                to: a,
                effect: LinkEffect::ExtraLoss(extra),
            },
        )
        .at(t2, FaultKind::LinkRestore { from: a, to: b })
        .at(t2, FaultKind::LinkRestore { from: b, to: a })
    }

    /// Partition the network at `x = boundary_x_m` during `[t1, t2)`.
    ///
    /// # Panics
    ///
    /// Panics if `t2 <= t1`.
    pub fn partition_window(self, boundary_x_m: f64, t1: SimTime, t2: SimTime) -> Self {
        assert!(t2 > t1, "heal must follow the partition");
        self.at(t1, FaultKind::Partition { boundary_x_m })
            .at(t2, FaultKind::HealPartition)
    }

    /// Drop received broadcast frames of `class` with probability `drop`
    /// during `[t1, t2)`.
    ///
    /// # Panics
    ///
    /// Panics if `t2 <= t1` or `drop` is not a probability.
    pub fn class_loss_window(self, class: u8, drop: f64, t1: SimTime, t2: SimTime) -> Self {
        assert!(t2 > t1, "clear must follow the burst");
        assert!((0.0..=1.0).contains(&drop), "drop is a probability");
        self.at(t1, FaultKind::ClassLossBurst { class, drop })
            .at(t2, FaultKind::ClassLossClear { class })
    }

    /// The scheduled `(time, fault)` pairs, in insertion order. Events firing
    /// at the same instant apply in this order.
    pub fn events(&self) -> &[(SimTime, FaultKind)] {
        &self.events
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last scheduled event (recovery/clearance included).
    pub fn last_event_time(&self) -> Option<SimTime> {
        self.events.iter().map(|&(t, _)| t).max()
    }

    /// Generate a random plan from `cfg` using `rng` — same `(cfg, rng
    /// state)` always yields the same plan, so a `(scenario, plan seed,
    /// run seed)` triple fully determines a faulted run.
    ///
    /// Every injected fault is cleared by `cfg.window.1`, so runs extending
    /// past the window observe the post-clearance recovery.
    pub fn random(cfg: &RandomFaultConfig, rng: &mut SimRng) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let (start, end) = cfg.window;
        let span = end.saturating_since(start);
        if cfg.nodes == 0 || span.as_nanos() == 0 || cfg.intensity <= 0.0 {
            return plan;
        }
        let eligible: Vec<NodeId> = (0..cfg.nodes as u32)
            .map(NodeId::new)
            .filter(|n| !cfg.protected.contains(n))
            .collect();
        // A window that starts in the first 60% of the span and lasts
        // 5%..30% of it, clamped so it always clears before `end`.
        let window = |rng: &mut SimRng| {
            let t1 = start + span.mul_f64(rng.uniform() * 0.6);
            let dur = span.mul_f64(0.05 + 0.25 * rng.uniform());
            let t2 = (t1 + dur).min(end);
            (t1, t2.max(t1 + crate::time::SimDuration::from_nanos(1)))
        };
        let crashes = (cfg.intensity * cfg.max_crashes as f64).round() as usize;
        for _ in 0..crashes {
            if eligible.is_empty() {
                break;
            }
            let node = eligible[rng.uniform_u32(eligible.len() as u32) as usize];
            let (t1, t2) = window(rng);
            plan = plan.crash_window(node, t1, t2);
        }
        let link_faults = (cfg.intensity * cfg.max_link_faults as f64).round() as usize;
        for _ in 0..link_faults {
            if cfg.nodes < 2 {
                break;
            }
            let a = NodeId::new(rng.uniform_u32(cfg.nodes as u32));
            let mut b = NodeId::new(rng.uniform_u32(cfg.nodes as u32));
            if b == a {
                b = NodeId::new((a.as_u32() + 1) % cfg.nodes as u32);
            }
            let (t1, t2) = window(rng);
            let pick = rng.uniform();
            if pick < 0.4 {
                plan = plan.link_blackout_window(a, b, t1, t2);
            } else {
                let extra = 0.3 + 0.6 * rng.uniform();
                plan = plan.link_degrade_window(a, b, extra, t1, t2);
            }
        }
        if cfg.probe_bursts && rng.chance(cfg.intensity) {
            let (t1, t2) = window(rng);
            let drop = 0.5 + 0.5 * rng.uniform();
            plan = plan.class_loss_window(cfg.burst_class, drop, t1, t2);
        }
        if let Some(width) = cfg.area_width_m {
            if rng.chance(cfg.intensity * 0.5) {
                let (t1, t2) = window(rng);
                let boundary = width * (0.3 + 0.4 * rng.uniform());
                plan = plan.partition_window(boundary, t1, t2);
            }
        }
        plan
    }
}

impl Snap for FaultKind {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            FaultKind::NodeCrash(n) => {
                w.put_u8(0);
                n.snap(w);
            }
            FaultKind::NodeRecover(n) => {
                w.put_u8(1);
                n.snap(w);
            }
            FaultKind::LinkFault { from, to, effect } => {
                w.put_u8(2);
                from.snap(w);
                to.snap(w);
                effect.snap(w);
            }
            FaultKind::LinkRestore { from, to } => {
                w.put_u8(3);
                from.snap(w);
                to.snap(w);
            }
            FaultKind::Partition { boundary_x_m } => {
                w.put_u8(4);
                w.put_f64(boundary_x_m);
            }
            FaultKind::HealPartition => w.put_u8(5),
            FaultKind::ClassLossBurst { class, drop } => {
                w.put_u8(6);
                w.put_u8(class);
                w.put_f64(drop);
            }
            FaultKind::ClassLossClear { class } => {
                w.put_u8(7);
                w.put_u8(class);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FaultKind::NodeCrash(Snap::unsnap(r)?),
            1 => FaultKind::NodeRecover(Snap::unsnap(r)?),
            2 => FaultKind::LinkFault {
                from: Snap::unsnap(r)?,
                to: Snap::unsnap(r)?,
                effect: Snap::unsnap(r)?,
            },
            3 => FaultKind::LinkRestore {
                from: Snap::unsnap(r)?,
                to: Snap::unsnap(r)?,
            },
            4 => FaultKind::Partition {
                boundary_x_m: r.f64()?,
            },
            5 => FaultKind::HealPartition,
            6 => FaultKind::ClassLossBurst {
                class: r.u8()?,
                drop: r.f64()?,
            },
            7 => FaultKind::ClassLossClear { class: r.u8()? },
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

impl Snap for FaultPlan {
    fn snap(&self, w: &mut SnapWriter) {
        self.events.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultPlan {
            events: Snap::unsnap(r)?,
        })
    }
}

/// Parameters for [`FaultPlan::random`]. `intensity` in `[0, 1]` scales the
/// number and severity of injected faults; `0.0` yields an empty plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomFaultConfig {
    /// Number of nodes in the scenario.
    pub nodes: usize,
    /// Nodes that must never crash (typically the traffic sources).
    pub protected: Vec<NodeId>,
    /// `(start, end)`: faults are injected and fully cleared inside this span.
    pub window: (SimTime, SimTime),
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// Crash/recover windows at intensity 1.
    pub max_crashes: usize,
    /// Link blackout/degradation windows at intensity 1.
    pub max_link_faults: usize,
    /// Whether to consider a probe-loss burst.
    pub probe_bursts: bool,
    /// Traffic class hit by bursts (the protocol's probe class).
    pub burst_class: u8,
    /// Area width for partitions; `None` disables partition faults.
    pub area_width_m: Option<f64>,
}

impl RandomFaultConfig {
    /// A moderate default for an `n`-node run faulted inside `window`.
    pub fn new(nodes: usize, window: (SimTime, SimTime)) -> Self {
        RandomFaultConfig {
            nodes,
            protected: Vec::new(),
            window,
            intensity: 0.5,
            max_crashes: 3,
            max_link_faults: 4,
            probe_bursts: true,
            burst_class: 1,
            area_width_m: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn builders_accumulate_events() {
        let plan = FaultPlan::new()
            .crash_window(NodeId::new(1), s(10), s(20))
            .link_blackout_window(NodeId::new(0), NodeId::new(2), s(5), s(15))
            .class_loss_window(1, 0.8, s(8), s(12));
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.last_event_time(), Some(s(20)));
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let cfg = RandomFaultConfig {
            intensity: 1.0,
            area_width_m: Some(1000.0),
            ..RandomFaultConfig::new(20, (s(10), s(30)))
        };
        let a = FaultPlan::random(&cfg, &mut SimRng::seed_from(7));
        let b = FaultPlan::random(&cfg, &mut SimRng::seed_from(7));
        assert_eq!(a, b, "same seed must yield the same plan");
        assert!(!a.is_empty());
        assert!(
            a.last_event_time().unwrap() <= s(30),
            "faults clear in window"
        );
    }

    #[test]
    fn zero_intensity_is_empty() {
        let cfg = RandomFaultConfig {
            intensity: 0.0,
            ..RandomFaultConfig::new(10, (s(1), s(2)))
        };
        assert!(FaultPlan::random(&cfg, &mut SimRng::seed_from(1)).is_empty());
    }

    #[test]
    fn protected_nodes_never_crash() {
        let protected: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        let cfg = RandomFaultConfig {
            intensity: 1.0,
            protected: protected.clone(),
            ..RandomFaultConfig::new(5, (s(1), s(20)))
        };
        for seed in 0..20 {
            let plan = FaultPlan::random(&cfg, &mut SimRng::seed_from(seed));
            for (_, f) in plan.events() {
                assert!(
                    !matches!(f, FaultKind::NodeCrash(n) if protected.contains(n)),
                    "protected node crashed in {plan:?}"
                );
            }
        }
    }
}
