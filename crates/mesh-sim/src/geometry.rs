//! Planar geometry for node placement.

use std::fmt;

/// A position on the simulation plane, in meters.
///
/// ```
/// use mesh_sim::geometry::Pos;
/// let a = Pos::new(0.0, 0.0);
/// let b = Pos::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pos {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Pos {
    /// Create a position from coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Pos { x, y }
    }

    /// Euclidean distance to another position, in meters.
    pub fn distance_to(self, other: Pos) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance; cheaper for comparisons.
    pub fn distance_sq(self, other: Pos) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Pos {
    fn from((x, y): (f64, f64)) -> Self {
        Pos::new(x, y)
    }
}

/// A rectangular deployment area with its origin at `(0, 0)`, in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Area {
    /// Width (x extent) in meters.
    pub width: f64,
    /// Height (y extent) in meters.
    pub height: f64,
}

impl Area {
    /// Create an area.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "area dimensions must be positive and finite"
        );
        Area { width, height }
    }

    /// A square area of the given side length in meters.
    pub fn square(side: f64) -> Self {
        Area::new(side, side)
    }

    /// Whether a position lies within this area (inclusive of the border).
    pub fn contains(&self, p: Pos) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// The diagonal length of the area.
    pub fn diagonal(&self) -> f64 {
        (self.width * self.width + self.height * self.height).sqrt()
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}m x {:.0}m", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Pos::new(1.0, 2.0);
        let b = Pos::new(-3.0, 7.5);
        assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-12);
    }

    #[test]
    fn distance_sq_consistent() {
        let a = Pos::new(0.0, 0.0);
        let b = Pos::new(3.0, 4.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance_to(b), 5.0);
    }

    #[test]
    fn area_contains() {
        let area = Area::square(100.0);
        assert!(area.contains(Pos::new(0.0, 0.0)));
        assert!(area.contains(Pos::new(100.0, 100.0)));
        assert!(!area.contains(Pos::new(100.1, 50.0)));
        assert!(!area.contains(Pos::new(-0.1, 50.0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_rejected() {
        let _ = Area::new(0.0, 10.0);
    }

    #[test]
    fn diagonal() {
        assert!((Area::new(30.0, 40.0).diagonal() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn pos_from_tuple() {
        let p: Pos = (1.0, 2.0).into();
        assert_eq!(p, Pos::new(1.0, 2.0));
    }
}
