//! Per-run metrics timeseries: fixed-width time buckets of counter deltas.
//!
//! End-of-run [`crate::counters::Counters`] answer *how much*; the
//! timeseries answers *when*. A [`MetricsRecorder`] attached to the world
//! (via [`crate::world::World::set_metrics`]) snapshots the cumulative
//! counters at every bucket boundary and stores the per-bucket deltas, plus
//! delivery delays reported by protocols through
//! [`crate::world::Ctx::observe_delivery`].
//!
//! Like tracing, the recorder obeys the zero-perturbation contract: it
//! schedules no events, draws no randomness and mutates no counter, so
//! `schedule_hash` is identical with and without it.

use crate::counters::Counters;
use crate::medium::IndexStats;
use crate::time::{SimDuration, SimTime};

/// Counter deltas over one `[start, end)` time bucket.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsBucket {
    /// Bucket start (inclusive).
    pub start: SimTime,
    /// Bucket end (exclusive; `start + width` except for the final partial
    /// bucket of a run).
    pub end: SimTime,
    /// Data frames transmitted (all classes).
    pub tx_data_frames: u64,
    /// Data payload bytes transmitted.
    pub tx_data_bytes: u64,
    /// Data frames delivered to protocols (all classes).
    pub rx_data_frames: u64,
    /// Data payload bytes delivered to protocols.
    pub rx_data_bytes: u64,
    /// Control frames (RTS/CTS/ACK) transmitted.
    pub tx_ctrl_frames: u64,
    /// Receptions destroyed by collisions.
    pub collisions: u64,
    /// Frames dropped at MAC queues.
    pub queue_drops: u64,
    /// MAC retransmission attempts.
    pub retries: u64,
    /// Data arrivals lost at RxStart (capture/collision/threshold/while-tx).
    pub rx_lost_data: u64,
    /// Data receptions that completed corrupted.
    pub rx_corrupted_data: u64,
    /// Data arrivals suppressed by fault injection.
    pub fault_rx_dropped: u64,
    /// Fault-plan events applied.
    pub fault_events: u64,
    /// Application-level deliveries reported via `observe_delivery`.
    pub deliveries: u64,
    /// Sum of end-to-end delays of those deliveries, seconds.
    pub delay_sum_s: f64,
    /// Spatial-index maintenance: nodes re-bucketed across grid cells
    /// (0 throughout when the medium keeps no index).
    pub index_rebuckets: u64,
    /// Spatial-index maintenance: per-cell epoch slots advanced.
    pub index_epoch_bumps: u64,
    /// Fan-outs answered from an unchanged cached candidate list.
    pub index_cache_hits: u64,
    /// Fan-outs that re-filtered a cached superset (motion nearby).
    pub index_cache_refreshes: u64,
    /// Fan-outs that rebuilt a candidate list from a grid query.
    pub index_cache_rebuilds: u64,
}

impl MetricsBucket {
    /// Bucket span in seconds (0 for a degenerate empty bucket).
    pub fn width_s(&self) -> f64 {
        self.end.saturating_since(self.start).as_secs_f64()
    }

    /// Received-data throughput over the bucket, bits per second
    /// (0 for a zero-width bucket — never NaN).
    pub fn throughput_bps(&self) -> f64 {
        let w = self.width_s();
        if w > 0.0 {
            (self.rx_data_bytes * 8) as f64 / w
        } else {
            0.0
        }
    }

    /// Mean end-to-end delivery delay in this bucket, seconds
    /// (0 when nothing was delivered — never NaN).
    pub fn mean_delay_s(&self) -> f64 {
        if self.deliveries > 0 {
            self.delay_sum_s / self.deliveries as f64
        } else {
            0.0
        }
    }
}

/// The finished timeseries of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Nominal bucket width.
    pub bucket_width: SimDuration,
    /// Buckets in time order; the last one may be partial.
    pub buckets: Vec<MetricsBucket>,
}

impl TimeSeries {
    /// Total deliveries across all buckets.
    pub fn total_deliveries(&self) -> u64 {
        self.buckets.iter().map(|b| b.deliveries).sum()
    }
}

/// Accumulates [`MetricsBucket`]s as the world steps through time.
#[derive(Debug)]
pub(crate) struct MetricsRecorder {
    width: SimDuration,
    /// Start of the currently open bucket.
    open_start: SimTime,
    /// Cumulative counters at `open_start`.
    base: Counters,
    /// Cumulative index stats at `open_start` (zero when the medium keeps
    /// no index, which also zeroes every bucket's index fields).
    base_index: IndexStats,
    /// Deliveries observed in the open bucket.
    open_deliveries: u64,
    open_delay_sum_s: f64,
    buckets: Vec<MetricsBucket>,
}

impl MetricsRecorder {
    /// Create a recorder with buckets of `width`, starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration, start: SimTime) -> Self {
        assert!(
            width.as_nanos() > 0,
            "metrics bucket width must be positive"
        );
        MetricsRecorder {
            width,
            open_start: start,
            base: Counters::default(),
            base_index: IndexStats::default(),
            open_deliveries: 0,
            open_delay_sum_s: 0.0,
            buckets: Vec::new(),
        }
    }

    /// Close every bucket whose boundary `now` has reached, snapshotting
    /// deltas against `counters` (and the medium's `index` stats, if any).
    /// Called once per world step, *before* the event at `now` is
    /// dispatched, so each bucket contains exactly the events with
    /// `open_start <= time < end`.
    pub fn advance(&mut self, now: SimTime, counters: &Counters, index: Option<IndexStats>) {
        while now >= self.open_start + self.width {
            let end = self.open_start + self.width;
            self.close_bucket(end, counters, index);
        }
    }

    /// Report one application-level delivery in the open bucket.
    pub fn record_delivery(&mut self, delay: SimDuration) {
        self.open_deliveries += 1;
        self.open_delay_sum_s += delay.as_secs_f64();
    }

    /// Close the final (possibly partial) bucket at `now` and return the
    /// finished timeseries.
    pub fn finish(
        mut self,
        now: SimTime,
        counters: &Counters,
        index: Option<IndexStats>,
    ) -> TimeSeries {
        self.advance(now, counters, index);
        // Close the final partial bucket if it spans any time OR holds any
        // activity. The activity checks matter when the run ends exactly on
        // a bucket boundary: events dispatched at that instant (a mobility
        // tick at the stop time, say) land in a zero-width bucket that
        // would otherwise be dropped, losing their deltas from the series.
        let pending = self.open_deliveries > 0
            || *counters != self.base
            || index.unwrap_or_default() != self.base_index;
        if now > self.open_start || pending {
            let end = now.max(self.open_start);
            self.close_bucket(end, counters, index);
        }
        TimeSeries {
            bucket_width: self.width,
            buckets: self.buckets,
        }
    }

    fn close_bucket(&mut self, end: SimTime, c: &Counters, index: Option<IndexStats>) {
        let b = &self.base;
        let ix = index.unwrap_or_default();
        let bx = &self.base_index;
        self.buckets.push(MetricsBucket {
            start: self.open_start,
            end,
            tx_data_frames: frames(&c.tx_data) - frames(&b.tx_data),
            tx_data_bytes: c.tx_data_bytes_total() - b.tx_data_bytes_total(),
            rx_data_frames: frames(&c.rx_data) - frames(&b.rx_data),
            rx_data_bytes: c.rx_data_bytes_total() - b.rx_data_bytes_total(),
            tx_ctrl_frames: c.tx_ctrl_frames - b.tx_ctrl_frames,
            collisions: c.collisions - b.collisions,
            queue_drops: c.queue_drops - b.queue_drops,
            retries: c.retries - b.retries,
            rx_lost_data: c.rx_lost_data - b.rx_lost_data,
            rx_corrupted_data: c.rx_corrupted_data - b.rx_corrupted_data,
            fault_rx_dropped: c.fault_rx_dropped - b.fault_rx_dropped,
            fault_events: c.fault_events - b.fault_events,
            deliveries: self.open_deliveries,
            delay_sum_s: self.open_delay_sum_s,
            index_rebuckets: ix.rebuckets - bx.rebuckets,
            index_epoch_bumps: ix.epoch_bumps - bx.epoch_bumps,
            index_cache_hits: ix.cache_hits - bx.cache_hits,
            index_cache_refreshes: ix.cache_refreshes - bx.cache_refreshes,
            index_cache_rebuilds: ix.cache_rebuilds - bx.cache_rebuilds,
        });
        self.open_start = end;
        self.base = c.clone();
        self.base_index = ix;
        self.open_deliveries = 0;
        self.open_delay_sum_s = 0.0;
    }
}

fn frames(classes: &[crate::counters::ClassCounts]) -> u64 {
    classes.iter().map(|c| c.frames).sum()
}

use crate::snapshot::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for MetricsBucket {
    fn snap(&self, w: &mut SnapWriter) {
        self.start.snap(w);
        self.end.snap(w);
        w.put_u64(self.tx_data_frames);
        w.put_u64(self.tx_data_bytes);
        w.put_u64(self.rx_data_frames);
        w.put_u64(self.rx_data_bytes);
        w.put_u64(self.tx_ctrl_frames);
        w.put_u64(self.collisions);
        w.put_u64(self.queue_drops);
        w.put_u64(self.retries);
        w.put_u64(self.rx_lost_data);
        w.put_u64(self.rx_corrupted_data);
        w.put_u64(self.fault_rx_dropped);
        w.put_u64(self.fault_events);
        w.put_u64(self.deliveries);
        w.put_f64(self.delay_sum_s);
        w.put_u64(self.index_rebuckets);
        w.put_u64(self.index_epoch_bumps);
        w.put_u64(self.index_cache_hits);
        w.put_u64(self.index_cache_refreshes);
        w.put_u64(self.index_cache_rebuilds);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MetricsBucket {
            start: Snap::unsnap(r)?,
            end: Snap::unsnap(r)?,
            tx_data_frames: r.u64()?,
            tx_data_bytes: r.u64()?,
            rx_data_frames: r.u64()?,
            rx_data_bytes: r.u64()?,
            tx_ctrl_frames: r.u64()?,
            collisions: r.u64()?,
            queue_drops: r.u64()?,
            retries: r.u64()?,
            rx_lost_data: r.u64()?,
            rx_corrupted_data: r.u64()?,
            fault_rx_dropped: r.u64()?,
            fault_events: r.u64()?,
            deliveries: r.u64()?,
            delay_sum_s: r.f64()?,
            index_rebuckets: r.u64()?,
            index_epoch_bumps: r.u64()?,
            index_cache_hits: r.u64()?,
            index_cache_refreshes: r.u64()?,
            index_cache_rebuilds: r.u64()?,
        })
    }
}

impl Snap for TimeSeries {
    fn snap(&self, w: &mut SnapWriter) {
        self.bucket_width.snap(w);
        self.buckets.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TimeSeries {
            bucket_width: Snap::unsnap(r)?,
            buckets: Snap::unsnap(r)?,
        })
    }
}

// Mid-bucket state serializes exactly: `advance` runs before event dispatch
// in `World::step`, so at a checkpoint the open bucket's bases and pending
// deliveries are a complete description of the recorder.
impl Snap for MetricsRecorder {
    fn snap(&self, w: &mut SnapWriter) {
        self.width.snap(w);
        self.open_start.snap(w);
        self.base.snap(w);
        self.base_index.snap(w);
        w.put_u64(self.open_deliveries);
        w.put_f64(self.open_delay_sum_s);
        self.buckets.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MetricsRecorder {
            width: Snap::unsnap(r)?,
            open_start: Snap::unsnap(r)?,
            base: Snap::unsnap(r)?,
            base_index: Snap::unsnap(r)?,
            open_deliveries: r.u64()?,
            open_delay_sum_s: r.f64()?,
            buckets: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_counter_deltas() {
        let mut c = Counters::default();
        let mut rec = MetricsRecorder::new(SimDuration::from_secs(10), SimTime::ZERO);

        // Two events in bucket 0.
        c.record_tx_data(0, 100);
        c.record_rx_data(0, 100);
        rec.record_delivery(SimDuration::from_millis(20));
        // First event at t=12s closes bucket [0, 10).
        rec.advance(SimTime::from_secs(12), &c, None);
        assert_eq!(rec.buckets.len(), 1);
        assert_eq!(rec.buckets[0].tx_data_frames, 1);
        assert_eq!(rec.buckets[0].rx_data_bytes, 100);
        assert_eq!(rec.buckets[0].deliveries, 1);

        // One more event in bucket 1.
        c.record_rx_data(1, 50);
        let ts = rec.finish(SimTime::from_secs(15), &c, None);
        assert_eq!(ts.buckets.len(), 2);
        assert_eq!(ts.buckets[1].start, SimTime::from_secs(10));
        assert_eq!(ts.buckets[1].end, SimTime::from_secs(15));
        assert_eq!(ts.buckets[1].rx_data_bytes, 50);
        assert_eq!(ts.buckets[1].deliveries, 0);
        assert_eq!(ts.total_deliveries(), 1);

        // Sum of bucket deltas equals the cumulative counters.
        let total: u64 = ts.buckets.iter().map(|b| b.rx_data_bytes).sum();
        assert_eq!(total, c.rx_data_bytes_total());
    }

    #[test]
    fn idle_gaps_produce_empty_buckets() {
        let c = Counters::default();
        let mut rec = MetricsRecorder::new(SimDuration::from_secs(1), SimTime::ZERO);
        rec.advance(SimTime::from_secs(3), &c, None);
        assert_eq!(rec.buckets.len(), 3);
        assert!(rec.buckets.iter().all(|b| b.tx_data_frames == 0));
    }

    #[test]
    fn rates_never_nan() {
        let b = MetricsBucket::default();
        assert_eq!(b.throughput_bps(), 0.0);
        assert_eq!(b.mean_delay_s(), 0.0);
        let ts = MetricsRecorder::new(SimDuration::from_secs(1), SimTime::ZERO).finish(
            SimTime::ZERO,
            &Counters::default(),
            None,
        );
        assert!(ts.buckets.is_empty());
    }

    #[test]
    fn activity_exactly_at_a_bucket_boundary_is_not_lost() {
        // An event dispatched exactly at the stop time falls into a
        // zero-width final bucket; its deltas must still be reported.
        let mut c = Counters::default();
        let mut rec = MetricsRecorder::new(SimDuration::from_secs(10), SimTime::ZERO);
        rec.advance(SimTime::from_secs(10), &c, None);
        // Counter and index activity at t = 10 s, exactly on the boundary.
        c.record_tx_data(0, 100);
        let ix = IndexStats {
            rebuckets: 9,
            ..IndexStats::default()
        };
        let ts = rec.finish(SimTime::from_secs(10), &c, Some(ix));
        assert_eq!(ts.buckets.len(), 2);
        let last = ts.buckets.last().unwrap();
        assert_eq!(last.start, last.end, "zero-width final bucket");
        assert_eq!(last.tx_data_frames, 1);
        assert_eq!(last.index_rebuckets, 9);
        assert_eq!(last.throughput_bps(), 0.0, "zero width must not NaN");
        // A boundary finish with nothing pending still emits no bucket.
        let rec = MetricsRecorder::new(SimDuration::from_secs(10), SimTime::ZERO);
        let ts = rec.finish(SimTime::ZERO, &Counters::default(), None);
        assert!(ts.buckets.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = MetricsRecorder::new(SimDuration::ZERO, SimTime::ZERO);
    }

    #[test]
    fn delay_mean_is_per_bucket() {
        let c = Counters::default();
        let mut rec = MetricsRecorder::new(SimDuration::from_secs(1), SimTime::ZERO);
        rec.record_delivery(SimDuration::from_millis(10));
        rec.record_delivery(SimDuration::from_millis(30));
        let ts = rec.finish(SimTime::ZERO + SimDuration::from_millis(500), &c, None);
        assert_eq!(ts.buckets.len(), 1);
        assert!((ts.buckets[0].mean_delay_s() - 0.02).abs() < 1e-12);
    }
}
