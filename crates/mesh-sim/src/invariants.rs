//! Runtime invariant oracles over the simulator state.
//!
//! [`check_world`] inspects a [`World`] *between* events and reports every
//! violated invariant. The checks are cheap enough to run at periodic
//! checkpoints during long simulations (see
//! [`crate::simulator::Simulator::set_invariant_interval`]), and they are the
//! safety net the fault-injection tests lean on: any bookkeeping broken by a
//! crash, blackout or partition shows up here rather than as a silently
//! skewed measurement.
//!
//! The oracles:
//!
//! * **event-time monotonicity** — the event queue never handed out an event
//!   timestamped before the current clock;
//! * **MAC state legality** — per node: `Idle` exactly when the transmit
//!   queue is empty, transmitting states require an active radio TX, the
//!   contention window stays within `[cw_min, cw_max]`, crashed nodes are
//!   fully quiesced;
//! * **counter conservation** — every planned data-frame arrival resolves to
//!   exactly one of: delivered, duplicate-suppressed, overheard unicast,
//!   lost at arrival, corrupted, aborted, fault-dropped, or still in flight.

use crate::mac::MacState;
use crate::world::World;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short stable identifier of the broken rule.
    pub rule: &'static str,
    /// Human-readable specifics (node, counts, states).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Run every world-level oracle; empty result means all invariants hold.
pub fn check_world<M: Clone + std::fmt::Debug>(world: &World<M>) -> Vec<Violation> {
    let mut out = Vec::new();
    check_monotonicity(world, &mut out);
    check_mac_legality(world, &mut out);
    check_conservation(world, &mut out);
    out
}

fn check_monotonicity<M: Clone + std::fmt::Debug>(world: &World<M>, out: &mut Vec<Violation>) {
    if world.time_regressions != 0 {
        out.push(Violation {
            rule: "event-time-monotonicity",
            detail: format!(
                "{} event(s) observed with a timestamp before the clock",
                world.time_regressions
            ),
        });
    }
}

fn check_mac_legality<M: Clone + std::fmt::Debug>(world: &World<M>, out: &mut Vec<Violation>) {
    let params = &world.params;
    for i in 0..world.macs.len() {
        let mac = &world.macs[i];
        let radio = &world.radios[i];
        if world.down[i] {
            if mac.state != MacState::Idle || !mac.queue.is_empty() || mac.pending_ctrl.is_some() {
                out.push(Violation {
                    rule: "mac-crashed-quiesced",
                    detail: format!(
                        "down node {i} is not quiesced: state {:?}, queue {}, pending ctrl {:?}",
                        mac.state,
                        mac.queue.len(),
                        mac.pending_ctrl
                    ),
                });
            }
            continue;
        }
        let idle = mac.state == MacState::Idle;
        if idle != mac.queue.is_empty() {
            out.push(Violation {
                rule: "mac-idle-iff-queue-empty",
                detail: format!(
                    "node {i}: state {:?} with {} queued frame(s)",
                    mac.state,
                    mac.queue.len()
                ),
            });
        }
        if matches!(mac.state, MacState::TxData | MacState::TxRts) && radio.tx_until.is_none() {
            out.push(Violation {
                rule: "mac-tx-implies-radio-tx",
                detail: format!(
                    "node {i} in {:?} but its radio is not transmitting",
                    mac.state
                ),
            });
        }
        if mac.cw < params.cw_min || mac.cw > params.cw_max {
            out.push(Violation {
                rule: "mac-cw-in-range",
                detail: format!(
                    "node {i}: cw {} outside [{}, {}]",
                    mac.cw, params.cw_min, params.cw_max
                ),
            });
        }
        if mac.backoff_slots > mac.cw {
            out.push(Violation {
                rule: "mac-backoff-within-cw",
                detail: format!("node {i}: backoff {} > cw {}", mac.backoff_slots, mac.cw),
            });
        }
    }
}

fn check_conservation<M: Clone + std::fmt::Debug>(world: &World<M>, out: &mut Vec<Violation>) {
    let c = world.counters();
    let delivered: u64 = c.rx_data.iter().map(|cc| cc.frames).sum();
    let in_flight = world.data_rx_in_progress();
    let resolved = delivered
        + c.duplicate_rx_suppressed
        + c.unicast_overheard
        + c.rx_lost_data
        + c.rx_corrupted_data
        + c.rx_aborted_data
        + c.fault_rx_dropped
        + in_flight;
    if c.planned_rx_data != resolved {
        out.push(Violation {
            rule: "counter-conservation",
            detail: format!(
                "planned data arrivals {} != resolved {} (delivered {} + dup {} + overheard {} \
                 + lost {} + corrupted {} + aborted {} + fault-dropped {} + in-flight {})",
                c.planned_rx_data,
                resolved,
                delivered,
                c.duplicate_rx_suppressed,
                c.unicast_overheard,
                c.rx_lost_data,
                c.rx_corrupted_data,
                c.rx_aborted_data,
                c.fault_rx_dropped,
                in_flight
            ),
        });
    }
}
