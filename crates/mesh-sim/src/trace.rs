//! Structured event tracing.
//!
//! A [`TraceSink`] attached to the world receives one [`TraceRecord`] per
//! PHY/MAC event — transmissions, decodes, losses — independent of the
//! protocol message type. Tests use it to assert exact MAC sequences
//! (RTS → CTS → DATA → ACK); debugging uses the bounded [`RingTrace`].

use crate::ids::NodeId;
use crate::time::SimTime;

/// What kind of frame an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
    /// Link-layer acknowledgment.
    Ack,
    /// Data frame (broadcast or unicast).
    Data,
}

/// Why a reception failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// Destroyed by a collision (neither frame survived).
    Collision,
    /// A stronger frame captured the receiver.
    Captured,
    /// Power below the decode threshold.
    BelowThreshold,
    /// The radio was transmitting.
    WhileTx,
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceRecord {
    /// `node` put a frame on the air.
    TxStart {
        /// Transmitting node.
        node: NodeId,
        /// Frame kind.
        kind: FrameKind,
        /// Unicast destination, `None` for broadcast.
        dst: Option<NodeId>,
        /// On-air size in bytes.
        bytes: u32,
        /// When the transmission began.
        at: SimTime,
    },
    /// `node` decoded a frame intact.
    RxOk {
        /// Receiving node.
        node: NodeId,
        /// Originating node.
        src: NodeId,
        /// Frame kind.
        kind: FrameKind,
        /// When decoding finished.
        at: SimTime,
    },
    /// An arrival at `node` was not decodable.
    RxLost {
        /// Receiving node.
        node: NodeId,
        /// Why it was lost.
        reason: LossReason,
        /// When the loss was determined (arrival start).
        at: SimTime,
    },
}

impl TraceRecord {
    /// The simulated time of the event.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceRecord::TxStart { at, .. }
            | TraceRecord::RxOk { at, .. }
            | TraceRecord::RxLost { at, .. } => at,
        }
    }
}

/// Receives trace records as the simulation runs.
pub trait TraceSink: std::fmt::Debug {
    /// Called once per traced event, in simulation order.
    fn record(&mut self, record: TraceRecord);

    /// Downcasting support so callers can recover the concrete sink after
    /// [`take_trace`](crate::world::World::take_trace).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A bounded in-memory trace, dropping the oldest records when full.
#[derive(Debug)]
pub struct RingTrace {
    cap: usize,
    records: std::collections::VecDeque<TraceRecord>,
}

impl RingTrace {
    /// Create a ring holding up to `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace capacity must be positive");
        RingTrace {
            cap,
            records: std::collections::VecDeque::with_capacity(cap.min(4096)),
        }
    }

    /// The records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, record: TraceRecord) {
        if self.records.len() == self.cap {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(node: u32, at_ns: u64) -> TraceRecord {
        TraceRecord::TxStart {
            node: NodeId::new(node),
            kind: FrameKind::Data,
            dst: None,
            bytes: 100,
            at: SimTime::from_nanos(at_ns),
        }
    }

    #[test]
    fn ring_keeps_newest() {
        let mut r = RingTrace::new(3);
        for i in 0..5 {
            r.record(tx(i, i as u64));
        }
        assert_eq!(r.len(), 3);
        let ats: Vec<u64> = r.records().map(|x| x.at().as_nanos()).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn record_time_accessor() {
        let rec = TraceRecord::RxLost {
            node: NodeId::new(1),
            reason: LossReason::Collision,
            at: SimTime::from_nanos(7),
        };
        assert_eq!(rec.at().as_nanos(), 7);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = RingTrace::new(0);
    }
}
