//! Zero-perturbation structured tracing.
//!
//! A [`TraceSink`] attached to the world receives one typed [`TraceEvent`]
//! per packet-lifecycle step — transmissions, arrivals, losses, deliveries,
//! queue drops, retries, fault applications and protocol decisions — each
//! stamped with `(time, node, seq, class, frame)` where known.
//!
//! **The zero-perturbation contract**: tracing is observation only. A sink
//! never touches the event queue, the RNG, or any counter, so
//! [`crate::world::World::schedule_hash`] is bit-identical whether tracing
//! is off, buffered in a [`RingTrace`], or streamed to a [`JsonlTrace`]
//! file. Every emission site in the world is guarded by `trace.is_some()`,
//! making the whole subsystem zero-cost when no sink is attached. The
//! observer-effect suite in `experiments/tests/observability.rs` enforces
//! this contract.
//!
//! Two sinks are provided: [`RingTrace`] (bounded in-memory ring, oldest
//! events evicted first) and [`JsonlTrace`] (streams one JSON object per
//! line to a file; [`TraceEvent::parse_jsonl`] reads them back).

use crate::ids::{FrameId, NodeId};
use crate::time::SimTime;

/// What kind of frame an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
    /// Link-layer acknowledgment.
    Ack,
    /// Data frame (broadcast or unicast).
    Data,
}

impl FrameKind {
    /// Stable wire label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            FrameKind::Rts => "rts",
            FrameKind::Cts => "cts",
            FrameKind::Ack => "ack",
            FrameKind::Data => "data",
        }
    }

    fn from_label(s: &str) -> Option<FrameKind> {
        Some(match s {
            "rts" => FrameKind::Rts,
            "cts" => FrameKind::Cts,
            "ack" => FrameKind::Ack,
            "data" => FrameKind::Data,
            _ => return None,
        })
    }
}

/// Why an arrival never became a delivery.
///
/// Together with [`TraceEventKind::Delivered`] these are the *terminal
/// outcomes* of a reception: every data-frame `RxStart` is followed by
/// exactly one of them for the same `(node, frame)` (the trace-completeness
/// test mirrors the counter-conservation oracle in [`crate::invariants`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Destroyed by a collision at arrival (neither frame survived).
    Collision,
    /// Lost to capture: a stronger frame owned (or took over) the receiver.
    Captured,
    /// Power below the decode threshold.
    BelowThreshold,
    /// The radio was transmitting when the frame arrived.
    WhileTx,
    /// Reception completed but the frame was corrupted mid-air.
    Corrupted,
    /// Reception aborted: the receiver started transmitting (half-duplex)
    /// or crashed mid-reception.
    Aborted,
    /// The receiver was crashed (fault-injected) for the whole arrival.
    FaultRx,
    /// Dropped by an active class-loss burst (fault injection).
    ClassBurst,
    /// Decoded intact but suppressed by MAC duplicate detection.
    Duplicate,
    /// Unicast decoded by a node that was not the destination.
    NotForUs,
}

impl DropReason {
    /// Stable wire label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Collision => "collision",
            DropReason::Captured => "captured",
            DropReason::BelowThreshold => "below_threshold",
            DropReason::WhileTx => "while_tx",
            DropReason::Corrupted => "corrupted",
            DropReason::Aborted => "aborted",
            DropReason::FaultRx => "fault_rx",
            DropReason::ClassBurst => "class_burst",
            DropReason::Duplicate => "duplicate",
            DropReason::NotForUs => "not_for_us",
        }
    }

    /// All reasons, in a stable order (drop-histogram rows).
    pub const ALL: [DropReason; 10] = [
        DropReason::Collision,
        DropReason::Captured,
        DropReason::BelowThreshold,
        DropReason::WhileTx,
        DropReason::Corrupted,
        DropReason::Aborted,
        DropReason::FaultRx,
        DropReason::ClassBurst,
        DropReason::Duplicate,
        DropReason::NotForUs,
    ];

    fn from_label(s: &str) -> Option<DropReason> {
        DropReason::ALL.into_iter().find(|r| r.label() == s)
    }
}

/// Stable labels for [`TraceEventKind::FaultApplied`], one per
/// [`crate::fault::FaultKind`] variant.
pub mod fault_label {
    /// A node was powered off.
    pub const NODE_CRASH: &str = "node_crash";
    /// A crashed node was powered back on.
    pub const NODE_RECOVER: &str = "node_recover";
    /// A directed-link override was applied.
    pub const LINK_FAULT: &str = "link_fault";
    /// A directed-link override was removed.
    pub const LINK_RESTORE: &str = "link_restore";
    /// A regional partition was applied.
    pub const PARTITION: &str = "partition";
    /// A partition was healed.
    pub const HEAL_PARTITION: &str = "heal_partition";
    /// A class-loss burst began.
    pub const CLASS_LOSS_BURST: &str = "class_loss_burst";
    /// A class-loss burst ended.
    pub const CLASS_LOSS_CLEAR: &str = "class_loss_clear";

    /// All labels (for parsing back from JSONL).
    pub const ALL: [&str; 8] = [
        NODE_CRASH,
        NODE_RECOVER,
        LINK_FAULT,
        LINK_RESTORE,
        PARTITION,
        HEAL_PARTITION,
        CLASS_LOSS_BURST,
        CLASS_LOSS_CLEAR,
    ];
}

/// A routing-layer decision worth a trace line, reported by protocol code
/// through [`crate::world::Ctx::trace_decision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// This node joined (or refreshed) the forwarding group of `group`.
    FgJoin {
        /// Raw multicast group id.
        group: u32,
    },
    /// `child` was grafted as a tree child for `group` (tree protocols).
    TreeJoin {
        /// Raw multicast group id.
        group: u32,
        /// The grafting neighbor.
        child: NodeId,
    },
    /// This node re-broadcast data packet `(source, pkt_seq)`.
    ForwardData {
        /// Raw multicast group id.
        group: u32,
        /// Originating application source.
        source: NodeId,
        /// Application-level packet sequence number.
        pkt_seq: u32,
    },
    /// Data packet `(source, pkt_seq)` was a network-layer duplicate.
    SuppressDuplicate {
        /// Raw multicast group id.
        group: u32,
        /// Originating application source.
        source: NodeId,
        /// Application-level packet sequence number.
        pkt_seq: u32,
    },
    /// This node re-flooded the join query of round `(source, pkt_seq)`.
    ForwardQuery {
        /// The source whose query round this is.
        source: NodeId,
        /// Query round sequence number.
        pkt_seq: u32,
    },
    /// This node answered round `(source, pkt_seq)` with a join reply.
    SendReply {
        /// The source whose query round this is.
        source: NodeId,
        /// Query round sequence number.
        pkt_seq: u32,
    },
    /// The staleness state machine quarantined the link estimate for `peer`
    /// (degraded mode excludes it from metric path costs).
    MetricQuarantine {
        /// The neighbor whose estimate was quarantined.
        peer: NodeId,
    },
    /// This node has no usable (non-quarantined) estimate left and fell
    /// back to minimum-hop path selection.
    FallbackActivated,
    /// A refresh round elected no forwarding state; the next refresh is
    /// delayed by `factor` × the nominal refresh interval.
    RefreshBackoff {
        /// Current backoff multiplier (power of two, bounded).
        factor: u32,
    },
}

impl Decision {
    /// Stable wire label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            Decision::FgJoin { .. } => "fg_join",
            Decision::TreeJoin { .. } => "tree_join",
            Decision::ForwardData { .. } => "forward_data",
            Decision::SuppressDuplicate { .. } => "suppress_duplicate",
            Decision::ForwardQuery { .. } => "forward_query",
            Decision::SendReply { .. } => "send_reply",
            Decision::MetricQuarantine { .. } => "metric_quarantine",
            Decision::FallbackActivated => "fallback_activated",
            Decision::RefreshBackoff { .. } => "refresh_backoff",
        }
    }
}

/// What happened (the typed part of a [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// A frame went on the air.
    TxStart {
        /// MAC-level frame kind.
        frame_kind: FrameKind,
        /// Unicast destination, `None` for broadcast.
        dst: Option<NodeId>,
        /// On-air size in bytes.
        bytes: u32,
    },
    /// A data-frame arrival began at this node (one per `planned_rx_data`,
    /// including arrivals at crashed receivers).
    RxStart {
        /// Transmitting node.
        src: NodeId,
    },
    /// An arrival (or in-progress reception) was lost.
    RxDrop {
        /// Why it was lost.
        reason: DropReason,
    },
    /// A frame was decoded intact and consumed (data frames: handed to the
    /// protocol; control frames: acted on by the MAC).
    Delivered {
        /// Transmitting node.
        src: NodeId,
        /// MAC-level frame kind.
        frame_kind: FrameKind,
    },
    /// A send was refused because the MAC queue was full (drop-tail).
    QueueDrop,
    /// A unicast attempt timed out and is being retried.
    Retry {
        /// Attempt number about to run (1 = first retransmission).
        attempt: u32,
    },
    /// A fault-plan event was applied (see [`fault_label`]).
    FaultApplied {
        /// Which fault (one of the [`fault_label`] constants).
        fault: &'static str,
        /// The other endpoint, for link faults.
        peer: Option<NodeId>,
    },
    /// A routing-layer decision (see [`Decision`]).
    ProtocolDecision {
        /// The decision taken.
        decision: Decision,
    },
}

/// One traced packet-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// The node concerned; `None` for world-scoped events (partitions,
    /// class-loss bursts).
    pub node: Option<NodeId>,
    /// MAC-level sequence number of the data frame concerned, if any
    /// (stable across retransmissions of the same frame).
    pub seq: Option<u64>,
    /// Traffic class of the data frame concerned, if any.
    pub class: Option<u8>,
    /// The in-flight frame concerned, if any. Frame ids are unique while a
    /// frame is on the air (slots are generation-tagged on reuse).
    pub frame: Option<FrameId>,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// The simulated time of the event.
    pub fn at(&self) -> SimTime {
        self.at
    }

    /// Stable wire name of the event kind (the `"ev"` JSONL field).
    pub fn ev_name(&self) -> &'static str {
        match self.kind {
            TraceEventKind::TxStart { .. } => "tx_start",
            TraceEventKind::RxStart { .. } => "rx_start",
            TraceEventKind::RxDrop { .. } => "rx_drop",
            TraceEventKind::Delivered { .. } => "delivered",
            TraceEventKind::QueueDrop => "queue_drop",
            TraceEventKind::Retry { .. } => "retry",
            TraceEventKind::FaultApplied { .. } => "fault",
            TraceEventKind::ProtocolDecision { .. } => "decision",
        }
    }

    /// Append the flat single-line JSON encoding of this event to `out`
    /// (no trailing newline). All values are unsigned integers or labels
    /// from a fixed vocabulary, so no escaping is ever required.
    pub fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"t\":{},\"ev\":\"{}\"",
            self.at.as_nanos(),
            self.ev_name()
        );
        if let Some(n) = self.node {
            let _ = write!(out, ",\"node\":{}", n.as_u32());
        }
        if let Some(s) = self.seq {
            let _ = write!(out, ",\"seq\":{s}");
        }
        if let Some(c) = self.class {
            let _ = write!(out, ",\"class\":{c}");
        }
        if let Some(f) = self.frame {
            let _ = write!(out, ",\"frame\":{}", f.as_u64());
        }
        match self.kind {
            TraceEventKind::TxStart {
                frame_kind,
                dst,
                bytes,
            } => {
                let _ = write!(out, ",\"kind\":\"{}\"", frame_kind.label());
                if let Some(d) = dst {
                    let _ = write!(out, ",\"dst\":{}", d.as_u32());
                }
                let _ = write!(out, ",\"bytes\":{bytes}");
            }
            TraceEventKind::RxStart { src } => {
                let _ = write!(out, ",\"src\":{}", src.as_u32());
            }
            TraceEventKind::RxDrop { reason } => {
                let _ = write!(out, ",\"reason\":\"{}\"", reason.label());
            }
            TraceEventKind::Delivered { src, frame_kind } => {
                let _ = write!(
                    out,
                    ",\"src\":{},\"kind\":\"{}\"",
                    src.as_u32(),
                    frame_kind.label()
                );
            }
            TraceEventKind::QueueDrop => {}
            TraceEventKind::Retry { attempt } => {
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            TraceEventKind::FaultApplied { fault, peer } => {
                let _ = write!(out, ",\"fault\":\"{fault}\"");
                if let Some(p) = peer {
                    let _ = write!(out, ",\"peer\":{}", p.as_u32());
                }
            }
            TraceEventKind::ProtocolDecision { decision } => {
                let _ = write!(out, ",\"decision\":\"{}\"", decision.label());
                match decision {
                    Decision::FgJoin { group } => {
                        let _ = write!(out, ",\"group\":{group}");
                    }
                    Decision::TreeJoin { group, child } => {
                        let _ = write!(out, ",\"group\":{group},\"child\":{}", child.as_u32());
                    }
                    Decision::ForwardData {
                        group,
                        source,
                        pkt_seq,
                    }
                    | Decision::SuppressDuplicate {
                        group,
                        source,
                        pkt_seq,
                    } => {
                        let _ = write!(
                            out,
                            ",\"group\":{group},\"src\":{},\"pseq\":{pkt_seq}",
                            source.as_u32()
                        );
                    }
                    Decision::ForwardQuery { source, pkt_seq }
                    | Decision::SendReply { source, pkt_seq } => {
                        let _ = write!(out, ",\"src\":{},\"pseq\":{pkt_seq}", source.as_u32());
                    }
                    Decision::MetricQuarantine { peer } => {
                        let _ = write!(out, ",\"peer\":{}", peer.as_u32());
                    }
                    Decision::FallbackActivated => {}
                    Decision::RefreshBackoff { factor } => {
                        let _ = write!(out, ",\"factor\":{factor}");
                    }
                }
            }
        }
        out.push('}');
    }

    /// The JSONL encoding as an owned line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_jsonl(&mut s);
        s
    }

    /// Parse one line produced by [`TraceEvent::write_jsonl`].
    ///
    /// Accepts exactly the flat subset this module emits: one JSON object of
    /// unsigned-integer and unescaped-string fields.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntactic or
    /// semantic problem found.
    pub fn parse_jsonl(line: &str) -> Result<TraceEvent, String> {
        let fields = Fields::parse(line)?;
        let at = SimTime::from_nanos(fields.num("t").ok_or("missing \"t\"")?);
        let node = fields.node_field("node")?;
        let seq = fields.num("seq");
        let class = fields
            .num("class")
            .map(|v| int::<u8>(v, "class"))
            .transpose()?;
        let frame = fields.num("frame").map(FrameId);
        let ev = fields.str("ev").ok_or("missing \"ev\"")?;
        let kind = match ev {
            "tx_start" => TraceEventKind::TxStart {
                frame_kind: fields.frame_kind()?,
                dst: fields.node_field("dst")?,
                bytes: int(fields.num("bytes").ok_or("missing \"bytes\"")?, "bytes")?,
            },
            "rx_start" => TraceEventKind::RxStart {
                src: fields.node_field("src")?.ok_or("missing \"src\"")?,
            },
            "rx_drop" => {
                let label = fields.str("reason").ok_or("missing \"reason\"")?;
                TraceEventKind::RxDrop {
                    reason: DropReason::from_label(label)
                        .ok_or_else(|| format!("unknown drop reason {label:?}"))?,
                }
            }
            "delivered" => TraceEventKind::Delivered {
                src: fields.node_field("src")?.ok_or("missing \"src\"")?,
                frame_kind: fields.frame_kind()?,
            },
            "queue_drop" => TraceEventKind::QueueDrop,
            "retry" => TraceEventKind::Retry {
                attempt: int(
                    fields.num("attempt").ok_or("missing \"attempt\"")?,
                    "attempt",
                )?,
            },
            "fault" => {
                let label = fields.str("fault").ok_or("missing \"fault\"")?;
                let fault = fault_label::ALL
                    .into_iter()
                    .find(|&l| l == label)
                    .ok_or_else(|| format!("unknown fault label {label:?}"))?;
                TraceEventKind::FaultApplied {
                    fault,
                    peer: fields.node_field("peer")?,
                }
            }
            "decision" => {
                let label = fields.str("decision").ok_or("missing \"decision\"")?;
                let group = || -> Result<u32, String> {
                    int(fields.num("group").ok_or("missing \"group\"")?, "group")
                };
                let source = || -> Result<NodeId, String> {
                    fields
                        .node_field("src")?
                        .ok_or_else(|| "missing \"src\"".to_string())
                };
                let pseq = || -> Result<u32, String> {
                    int(fields.num("pseq").ok_or("missing \"pseq\"")?, "pseq")
                };
                let decision = match label {
                    "fg_join" => Decision::FgJoin { group: group()? },
                    "tree_join" => Decision::TreeJoin {
                        group: group()?,
                        child: fields.node_field("child")?.ok_or("missing \"child\"")?,
                    },
                    "forward_data" => Decision::ForwardData {
                        group: group()?,
                        source: source()?,
                        pkt_seq: pseq()?,
                    },
                    "suppress_duplicate" => Decision::SuppressDuplicate {
                        group: group()?,
                        source: source()?,
                        pkt_seq: pseq()?,
                    },
                    "forward_query" => Decision::ForwardQuery {
                        source: source()?,
                        pkt_seq: pseq()?,
                    },
                    "send_reply" => Decision::SendReply {
                        source: source()?,
                        pkt_seq: pseq()?,
                    },
                    "metric_quarantine" => Decision::MetricQuarantine {
                        peer: fields.node_field("peer")?.ok_or("missing \"peer\"")?,
                    },
                    "fallback_activated" => Decision::FallbackActivated,
                    "refresh_backoff" => Decision::RefreshBackoff {
                        factor: int(fields.num("factor").ok_or("missing \"factor\"")?, "factor")?,
                    },
                    other => return Err(format!("unknown decision {other:?}")),
                };
                TraceEventKind::ProtocolDecision { decision }
            }
            other => return Err(format!("unknown event {other:?}")),
        };
        Ok(TraceEvent {
            at,
            node,
            seq,
            class,
            frame,
            kind,
        })
    }
}

fn int<T: TryFrom<u64>>(v: u64, field: &str) -> Result<T, String> {
    T::try_from(v).map_err(|_| format!("field \"{field}\" out of range: {v}"))
}

/// Parsed flat-JSON fields of one line (key → unsigned int or string).
#[derive(Debug)]
struct Fields<'a> {
    // A handful of fields per line: linear scan beats any map, and a Vec
    // keeps iteration order deterministic (mesh-lint rule R1).
    pairs: Vec<(&'a str, Value<'a>)>,
}

#[derive(Debug, Clone, Copy)]
enum Value<'a> {
    Num(u64),
    Str(&'a str),
}

impl<'a> Fields<'a> {
    fn parse(line: &'a str) -> Result<Fields<'a>, String> {
        let body = line
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or("not a JSON object")?;
        let mut pairs = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let key_body = rest.strip_prefix('"').ok_or("expected a quoted key")?;
            let kq = key_body.find('"').ok_or("unterminated key")?;
            let key = &key_body[..kq];
            // mesh-lint: allow(R6, "kq comes from find on this very slice, so kq + 1 <= len and lands after a one-byte ASCII quote")
            rest = key_body[kq + 1..]
                .trim_start()
                .strip_prefix(':')
                .ok_or("expected ':' after key")?
                .trim_start();
            let value;
            if let Some(s) = rest.strip_prefix('"') {
                let vq = s.find('"').ok_or("unterminated string value")?;
                let v = &s[..vq];
                if v.contains('\\') {
                    return Err("escaped strings are not supported".into());
                }
                value = Value::Str(v);
                // mesh-lint: allow(R6, "vq comes from find on this very slice, so vq + 1 <= len and lands after a one-byte ASCII quote")
                rest = &s[vq + 1..];
            } else {
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                if end == 0 {
                    return Err(format!("expected a value near {rest:?}"));
                }
                let n: u64 = rest[..end]
                    .parse()
                    .map_err(|_| format!("bad integer {:?}", &rest[..end]))?;
                value = Value::Num(n);
                rest = &rest[end..];
            }
            pairs.push((key, value));
            rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
                if rest.is_empty() {
                    return Err("trailing comma".into());
                }
            } else if !rest.is_empty() {
                return Err(format!("expected ',' near {rest:?}"));
            }
        }
        Ok(Fields { pairs })
    }

    fn num(&self, key: &str) -> Option<u64> {
        self.pairs.iter().find_map(|&(k, v)| match v {
            Value::Num(n) if k == key => Some(n),
            _ => None,
        })
    }

    fn str(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find_map(|&(k, v)| match v {
            Value::Str(s) if k == key => Some(s),
            _ => None,
        })
    }

    fn node_field(&self, key: &str) -> Result<Option<NodeId>, String> {
        self.num(key)
            .map(|v| int(v, key).map(NodeId::new))
            .transpose()
    }

    fn frame_kind(&self) -> Result<FrameKind, String> {
        let label = self.str("kind").ok_or("missing \"kind\"")?;
        FrameKind::from_label(label).ok_or_else(|| format!("unknown frame kind {label:?}"))
    }
}

/// Receives trace events as the simulation runs.
///
/// Sink contract: `record` must not panic and must not interact with the
/// simulation in any way (sinks only see copies of events). Expensive sinks
/// defer failures — [`JsonlTrace`] stashes I/O errors and surfaces them from
/// [`JsonlTrace::finish`].
pub trait TraceSink: std::fmt::Debug {
    /// Called once per traced event, in simulation order.
    fn record(&mut self, event: TraceEvent);

    /// Downcasting support so callers can recover the concrete sink after
    /// [`take_trace`](crate::world::World::take_trace).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcasting (e.g. to call [`JsonlTrace::finish`]).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A bounded in-memory trace, dropping the oldest events when full.
#[derive(Debug)]
pub struct RingTrace {
    cap: usize,
    events: std::collections::VecDeque<TraceEvent>,
}

impl RingTrace {
    /// Create a ring holding up to `cap` events.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace capacity must be positive");
        RingTrace {
            cap,
            events: std::collections::VecDeque::with_capacity(cap.min(4096)),
        }
    }

    /// The events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Streams events to a file as JSON Lines, one object per event.
///
/// I/O errors during the run are stashed, not raised (a sink must never
/// perturb the simulation); [`JsonlTrace::finish`] flushes and reports the
/// first deferred error.
#[derive(Debug)]
pub struct JsonlTrace {
    out: std::io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
    lines: u64,
    line_buf: String,
    deferred_err: Option<std::io::Error>,
}

impl JsonlTrace {
    /// Create (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlTrace {
            out: std::io::BufWriter::new(file),
            path,
            lines: 0,
            line_buf: String::with_capacity(128),
            deferred_err: None,
        })
    }

    /// The file being written.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Lines successfully handed to the writer so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Flush the file and surface any I/O error deferred during the run.
    /// Returns the number of lines written.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, or the flush error.
    pub fn finish(&mut self) -> std::io::Result<u64> {
        use std::io::Write;
        if let Some(e) = self.deferred_err.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.lines)
    }
}

impl TraceSink for JsonlTrace {
    fn record(&mut self, event: TraceEvent) {
        use std::io::Write;
        if self.deferred_err.is_some() {
            return;
        }
        self.line_buf.clear();
        event.write_jsonl(&mut self.line_buf);
        self.line_buf.push('\n');
        match self.out.write_all(self.line_buf.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.deferred_err = Some(e),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(node: u32, at_ns: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(at_ns),
            node: Some(NodeId::new(node)),
            seq: Some(9),
            class: Some(0),
            frame: Some(FrameId(42)),
            kind: TraceEventKind::TxStart {
                frame_kind: FrameKind::Data,
                dst: None,
                bytes: 100,
            },
        }
    }

    #[test]
    fn ring_keeps_newest() {
        let mut r = RingTrace::new(3);
        for i in 0..5 {
            r.record(tx(i, i as u64));
        }
        assert_eq!(r.len(), 3);
        let ats: Vec<u64> = r.events().map(|x| x.at().as_nanos()).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = RingTrace::new(0);
    }

    fn all_event_shapes() -> Vec<TraceEvent> {
        let base = TraceEvent {
            at: SimTime::from_nanos(1_234_567),
            node: Some(NodeId::new(7)),
            seq: Some(3),
            class: Some(1),
            frame: Some(FrameId(99)),
            kind: TraceEventKind::QueueDrop,
        };
        let k = |kind| TraceEvent { kind, ..base };
        vec![
            k(TraceEventKind::TxStart {
                frame_kind: FrameKind::Rts,
                dst: Some(NodeId::new(2)),
                bytes: 52,
            }),
            k(TraceEventKind::TxStart {
                frame_kind: FrameKind::Data,
                dst: None,
                bytes: 512,
            }),
            k(TraceEventKind::RxStart {
                src: NodeId::new(4),
            }),
            k(TraceEventKind::RxDrop {
                reason: DropReason::Captured,
            }),
            k(TraceEventKind::Delivered {
                src: NodeId::new(4),
                frame_kind: FrameKind::Data,
            }),
            TraceEvent {
                seq: None,
                class: Some(0),
                frame: None,
                ..base
            },
            k(TraceEventKind::Retry { attempt: 2 }),
            TraceEvent {
                node: None,
                seq: None,
                class: Some(1),
                frame: None,
                kind: TraceEventKind::FaultApplied {
                    fault: fault_label::CLASS_LOSS_BURST,
                    peer: None,
                },
                ..base
            },
            k(TraceEventKind::FaultApplied {
                fault: fault_label::LINK_FAULT,
                peer: Some(NodeId::new(5)),
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::FgJoin { group: 3 },
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::TreeJoin {
                    group: 3,
                    child: NodeId::new(8),
                },
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::ForwardData {
                    group: 3,
                    source: NodeId::new(1),
                    pkt_seq: 1317,
                },
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::SuppressDuplicate {
                    group: 3,
                    source: NodeId::new(1),
                    pkt_seq: 1317,
                },
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::ForwardQuery {
                    source: NodeId::new(1),
                    pkt_seq: 12,
                },
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::SendReply {
                    source: NodeId::new(1),
                    pkt_seq: 12,
                },
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::MetricQuarantine {
                    peer: NodeId::new(4),
                },
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::FallbackActivated,
            }),
            k(TraceEventKind::ProtocolDecision {
                decision: Decision::RefreshBackoff { factor: 8 },
            }),
        ]
    }

    #[test]
    fn jsonl_roundtrips_every_event_shape() {
        for ev in all_event_shapes() {
            let line = ev.to_jsonl();
            let back = TraceEvent::parse_jsonl(&line)
                .unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
            assert_eq!(back, ev, "roundtrip mismatch for {line}");
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "{\"t\":1}",
            "{\"t\":1,\"ev\":\"no_such_event\"}",
            "{\"t\":1,\"ev\":\"rx_drop\",\"reason\":\"made_up\"}",
            "{\"t\":1,\"ev\":\"tx_start\"",
            "{\"t\":,\"ev\":\"queue_drop\"}",
            "{\"t\":1,\"ev\":\"queue_drop\",}",
            "{\"t\":1,\"ev\":\"rx_start\"}",
            "{\"t\":1,\"ev\":\"rx_start\",\"src\":99999999999}",
        ] {
            assert!(
                TraceEvent::parse_jsonl(bad).is_err(),
                "parser accepted malformed line {bad:?}"
            );
        }
    }

    #[test]
    fn jsonl_file_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("mesh-sim-trace-test-{}.jsonl", std::process::id()));
        let mut sink = JsonlTrace::create(&path).expect("create trace file");
        let evs = all_event_shapes();
        for ev in &evs {
            sink.record(*ev);
        }
        let lines = sink.finish().expect("finish");
        assert_eq!(lines, evs.len() as u64);
        let text = std::fs::read_to_string(&path).expect("read back");
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::parse_jsonl(l).expect("valid line"))
            .collect();
        assert_eq!(parsed, evs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_downcast_recovers_ring() {
        let mut sink: Box<dyn TraceSink> = Box::new(RingTrace::new(4));
        sink.record(tx(0, 5));
        let ring = sink.as_any().downcast_ref::<RingTrace>().expect("ring");
        assert_eq!(ring.len(), 1);
    }
}
