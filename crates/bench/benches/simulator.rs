//! Simulator substrate benchmarks: raw event throughput of the DES, the
//! 802.11 MAC, and the propagation models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mesh_sim::prelude::*;

/// A protocol that floods: every received message is rebroadcast once per
/// node (classic broadcast storm), bounded by the message hop budget.
#[derive(Debug, Default)]
struct Storm {
    seen: std::collections::HashSet<u64>,
}

impl Protocol for Storm {
    type Msg = (u64, u8);
    fn start(&mut self, ctx: &mut Ctx<'_, (u64, u8)>) {
        if ctx.node().index() == 0 {
            for i in 0..20 {
                let _ = ctx.send_broadcast((i, 6), 256, 0);
            }
        }
    }
    fn handle_message(
        &mut self,
        ctx: &mut Ctx<'_, (u64, u8)>,
        _src: NodeId,
        msg: &(u64, u8),
        _meta: RxMeta,
    ) {
        if msg.1 > 0 && self.seen.insert(msg.0) {
            let _ = ctx.send_broadcast((msg.0, msg.1 - 1), 256, 0);
        }
    }
    fn handle_timer(&mut self, _: &mut Ctx<'_, (u64, u8)>, _: TimerId, _: u64) {}
}

fn bench_broadcast_storm(c: &mut Criterion) {
    c.bench_function("storm_25_nodes_20_floods", |b| {
        b.iter(|| {
            let positions = mesh_sim::topology::grid(5, 5, 120.0);
            let medium = Box::new(PhysicalMedium::new(PhyParams {
                fading: FadingModel::None,
                ..PhyParams::default()
            }));
            let protos = (0..25).map(|_| Storm::default()).collect();
            let mut sim = Simulator::new(positions, medium, WorldConfig::default(), protos);
            sim.run_until(SimTime::from_secs(2));
            black_box(sim.counters().events)
        })
    });
}

#[derive(Debug, Default)]
struct PingPong {
    count: u32,
}

impl Protocol for PingPong {
    type Msg = u32;
    fn start(&mut self, ctx: &mut Ctx<'_, u32>) {
        if ctx.node().index() == 0 {
            let _ = ctx.send_unicast(NodeId::new(1), 0, 512, 0);
        }
    }
    fn handle_message(&mut self, ctx: &mut Ctx<'_, u32>, src: NodeId, msg: &u32, _meta: RxMeta) {
        self.count += 1;
        if *msg < 200 {
            let _ = ctx.send_unicast(src, msg + 1, 512, 0);
        }
    }
    fn handle_timer(&mut self, _: &mut Ctx<'_, u32>, _: TimerId, _: u64) {}
}

fn bench_unicast_exchange(c: &mut Criterion) {
    // Full RTS/CTS/DATA/ACK exchanges back and forth.
    c.bench_function("unicast_200_rtscts_exchanges", |b| {
        b.iter(|| {
            let positions = vec![Pos::new(0.0, 0.0), Pos::new(150.0, 0.0)];
            let medium = Box::new(PhysicalMedium::new(PhyParams {
                fading: FadingModel::None,
                ..PhyParams::default()
            }));
            let mut sim = Simulator::new(
                positions,
                medium,
                WorldConfig::default(),
                vec![PingPong::default(), PingPong::default()],
            );
            sim.run_until(SimTime::from_secs(10));
            black_box(sim.protocols()[0].count)
        })
    });
}

fn bench_propagation(c: &mut Criterion) {
    let phy = PhyParams::default();
    let mut rng = SimRng::seed_from(1);
    c.bench_function("two_ray_rayleigh_sample", |b| {
        b.iter(|| phy.sample_rx_power_w(black_box(187.3), &mut rng))
    });
}

fn bench_fan_out(c: &mut Criterion) {
    let mut medium = PhysicalMedium::default();
    let mut rng = SimRng::seed_from(2);
    let positions =
        mesh_sim::topology::random_placement(50, Area::square(1000.0), &mut SimRng::seed_from(3));
    let mut out = Vec::new();
    c.bench_function("fan_out_50_nodes", |b| {
        b.iter(|| {
            out.clear();
            medium.fan_out(
                NodeId::new(0),
                &positions,
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            black_box(out.len())
        })
    });
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets =
    bench_broadcast_storm,
    bench_unicast_exchange,
    bench_propagation,
    bench_fan_out
}
criterion_main!(benches);
