//! One benchmark group per table/figure of the paper, each running a
//! scaled-down (but structurally identical) version of the experiment that
//! regenerates it. The full-scale harnesses are the `experiments` binaries
//! (`fig2_throughput_sim`, `table1_overhead`, …); these benches track the
//! cost of the underlying scenario machinery and keep every experiment
//! exercised by `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::runner::{run_mesh_once, run_testbed_once};
use experiments::scenario::{MeshScenario, TestbedScenario};
use mcast_metrics::{choose_path, figure1_candidates, figure3_candidates, MetricKind};
use mesh_sim::time::SimTime;
use odmrp::Variant;

/// A miniature of the §4.1 mesh: 16 nodes, 20 s of data.
fn tiny_mesh() -> MeshScenario {
    let mut s = MeshScenario::quick();
    s.nodes = 16;
    s.area_side = 500.0;
    s.groups = 1;
    s.members_per_group = 4;
    s.data_start = SimTime::from_secs(10);
    s.data_stop = SimTime::from_secs(30);
    s
}

fn tiny_testbed() -> TestbedScenario {
    let mut s = TestbedScenario::quick();
    s.data_start = SimTime::from_secs(10);
    s.data_stop = SimTime::from_secs(40);
    s
}

/// Figures 1 and 3: the analytic worked examples.
fn bench_fig1_fig3(c: &mut Criterion) {
    c.bench_function("fig1_metx_vs_spp_analytic", |b| {
        let cands = figure1_candidates();
        let metx = MetricKind::Metx.build();
        let spp = MetricKind::Spp.build();
        b.iter(|| {
            (
                choose_path(&metx, black_box(&cands)).winner,
                choose_path(&spp, black_box(&cands)).winner,
            )
        })
    });
    c.bench_function("fig3_etx_vs_spp_analytic", |b| {
        let cands = figure3_candidates();
        let etx = MetricKind::Etx.build();
        let spp = MetricKind::Spp.build();
        b.iter(|| {
            (
                choose_path(&etx, black_box(&cands)).winner,
                choose_path(&spp, black_box(&cands)).winner,
            )
        })
    });
}

/// Figure 2, simulation columns (throughput / high-overhead / delay) and
/// Table 1 all run the same matrix; bench one baseline and one metric run,
/// plus the high-overhead configuration.
fn bench_fig2_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_sim_tiny");
    g.sample_size(10);
    for variant in [
        Variant::Original,
        Variant::Metric(MetricKind::Spp),
        Variant::Metric(MetricKind::Pp),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &v| {
                let s = tiny_mesh();
                b.iter(|| black_box(run_mesh_once(&s, v, 1).pdr()))
            },
        );
    }
    g.bench_function("ETX_high_overhead_x5", |b| {
        let mut s = tiny_mesh();
        s.probe_rate = 5.0; // Fig. 2 "Throughput-high overhead" / §4.2.2
        b.iter(|| black_box(run_mesh_once(&s, Variant::Metric(MetricKind::Etx), 1).pdr()))
    });
    g.finish();
}

/// Table 1: probing overhead extraction (the measurement side).
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_overhead_tiny");
    g.sample_size(10);
    g.bench_function("ETT_overhead_measurement", |b| {
        let s = tiny_mesh();
        b.iter(|| {
            black_box(run_mesh_once(&s, Variant::Metric(MetricKind::Ett), 1).probe_overhead_pct)
        })
    });
    g.finish();
}

/// §4.3: the multi-source configuration.
fn bench_multi_source(c: &mut Criterion) {
    let mut g = c.benchmark_group("multi_source_tiny");
    g.sample_size(10);
    g.bench_function("two_sources_per_group", |b| {
        let mut s = tiny_mesh();
        s.members_per_group = 3;
        s.sources_per_group = 2;
        b.iter(|| black_box(run_mesh_once(&s, Variant::Metric(MetricKind::Spp), 1).pdr()))
    });
    g.finish();
}

/// Figure 2 "Throughput-testbed" and Figure 5: the testbed model.
fn bench_testbed(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_testbed_tiny");
    g.sample_size(10);
    for variant in [Variant::Original, Variant::Metric(MetricKind::Pp)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &v| {
                let s = tiny_testbed();
                b.iter(|| black_box(run_testbed_once(&s, v, 1).pdr()))
            },
        );
    }
    g.finish();
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets =
    bench_fig1_fig3,
    bench_fig2_sim,
    bench_table1,
    bench_multi_source,
    bench_testbed
}
criterion_main!(benches);
