//! Micro-benchmarks of the metric algebra and link estimators: the code on
//! the hot path of every JOIN QUERY hop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mcast_metrics::{
    choose_path, CandidatePath, EstimatorConfig, LinkEstimate, LinkObservation, Metric, MetricKind,
    NeighborTable, ProbeMsg,
};
use mesh_sim::ids::NodeId;
use mesh_sim::time::{SimDuration, SimTime};

fn obs(df: f64) -> LinkObservation {
    LinkObservation {
        df,
        delay_s: Some(0.005 / df),
        bandwidth_bps: Some(2.0e6 * df),
        reverse_df: Some(df),
        congestion: Some(1.0 - df),
    }
}

fn bench_link_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("link_cost");
    for kind in MetricKind::PAPER_SET {
        let m = kind.build();
        let o = obs(0.73);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &o, |b, o| {
            b.iter(|| m.link_cost(black_box(o)))
        });
    }
    g.finish();
}

fn bench_path_accumulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_accumulate_8_hops");
    let dfs: Vec<f64> = (0..8).map(|i| 0.5 + 0.05 * i as f64).collect();
    for kind in MetricKind::PAPER_SET {
        let m = kind.build();
        let links: Vec<_> = dfs.iter().map(|&d| m.link_cost(&obs(d))).collect();
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &links, |b, l| {
            b.iter(|| {
                let mut p = m.identity();
                for &c in l.iter() {
                    p = m.accumulate(p, black_box(c));
                }
                p
            })
        });
    }
    g.finish();
}

fn bench_choose_path(c: &mut Criterion) {
    let cands: Vec<CandidatePath> = (0..16)
        .map(|i| {
            CandidatePath::new(
                format!("p{i}"),
                (0..6).map(|j| 0.4 + 0.03 * ((i + j) % 17) as f64).collect(),
            )
        })
        .collect();
    c.bench_function("choose_path_16x6", |b| {
        let m = MetricKind::Spp.build();
        b.iter(|| choose_path(&m, black_box(&cands)))
    });
}

fn bench_estimator_updates(c: &mut Criterion) {
    let cfg = EstimatorConfig::default();
    c.bench_function("estimator_single_probe_update", |b| {
        let mut e = LinkEstimate::new(&cfg);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            e.on_single(seq, SimDuration::from_secs(5), SimTime::from_secs(seq * 5));
            e.forward_ratio(SimTime::from_secs(seq * 5), &cfg)
        })
    });
    c.bench_function("estimator_pair_update", |b| {
        let mut e = LinkEstimate::new(&cfg);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let t = SimTime::from_secs(seq * 10);
            e.on_pair_small(seq, SimDuration::from_secs(10), t, &cfg);
            e.on_pair_large(seq, 1137, t + SimDuration::from_millis(5), &cfg);
            e.pp_delay_s(t + SimDuration::from_millis(5), &cfg)
        })
    });
}

fn bench_neighbor_table(c: &mut Criterion) {
    c.bench_function("neighbor_table_probe_and_cost_20_neighbors", |b| {
        let mut t = NeighborTable::new(EstimatorConfig::default());
        let me = NodeId::new(0);
        let metric = MetricKind::Etx.build();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let now = SimTime::from_secs(seq * 5);
            for n in 1..=20u32 {
                t.handle_probe(
                    NodeId::new(n),
                    &ProbeMsg::Single {
                        seq,
                        interval_ns: SimDuration::from_secs(5).as_nanos(),
                        reverse_df: Vec::new(),
                    },
                    me,
                    now,
                );
            }
            t.link_cost(&metric, NodeId::new(7), now)
        })
    });
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets =
    bench_link_cost,
    bench_path_accumulate,
    bench_choose_path,
    bench_estimator_updates,
    bench_neighbor_table
}
criterion_main!(benches);
