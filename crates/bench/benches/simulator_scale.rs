//! Scalability benchmarks: how the simulator behaves as the network grows,
//! with the spatially-indexed medium fan-out on vs off.
//!
//! Two families:
//!
//! * `fanout_scale/*` — raw `PhysicalMedium::fan_out` throughput over a
//!   round-robin of transmitters (what `bench_fanout` measures in detail and
//!   records in `results/BENCH_fanout.json`);
//! * `sim_scale/*` — a short slice of a full ODMRP run on the large-N
//!   `MeshScenario::scale` configurations, so MAC/event-queue costs are
//!   included and the medium speedup is seen in context.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::runner::run_mesh_once;
use experiments::scenario::MeshScenario;
use mesh_sim::prelude::*;
use odmrp::Variant;

/// Drive `frames` fan-out calls round-robin over all transmitters.
fn drive_fanout(indexed: bool, positions: &[Pos], frames: usize) -> usize {
    let mut medium = PhysicalMedium::new(PhyParams::default()).with_indexing(indexed);
    let mut rng = SimRng::seed_from(0xFA0);
    let mut out = Vec::new();
    let mut heard = 0;
    for f in 0..frames {
        let tx = NodeId::new((f % positions.len()) as u32);
        out.clear();
        medium.fan_out(tx, positions, SimTime::ZERO, &mut rng, &mut out);
        heard += out.len();
    }
    heard
}

fn bench_fanout_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout_scale");
    for &(nodes, side) in &[(50usize, 1000.0), (500, 3162.3), (500, 10_000.0)] {
        let positions = mesh_sim::topology::random_placement(
            nodes,
            Area::square(side),
            &mut SimRng::seed_from(0x5EED ^ nodes as u64 ^ side as u64),
        );
        let frames = nodes * 40;
        for indexed in [false, true] {
            let id = BenchmarkId::new(
                format!("n{nodes}_side{}m", side as u64),
                if indexed { "indexed" } else { "naive" },
            );
            group.bench_with_input(id, &positions, |b, positions| {
                b.iter(|| black_box(drive_fanout(indexed, positions, frames)))
            });
        }
    }
    group.finish();
}

fn bench_sim_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scale");
    group.sample_size(2);
    for &nodes in &[50usize, 200] {
        let mut scenario = MeshScenario::scale(nodes);
        // A thin slice: probing is active from t=0, so five sim-seconds
        // already exercise the medium heavily without CBR data.
        scenario.data_start = SimTime::from_secs(4);
        scenario.data_stop = SimTime::from_secs(5);
        for indexed in [false, true] {
            scenario.indexed_medium = indexed;
            let id = BenchmarkId::new(
                format!("n{nodes}"),
                if indexed { "indexed" } else { "naive" },
            );
            let s = scenario.clone();
            group.bench_function(id, move |b| {
                b.iter(|| black_box(run_mesh_once(&s, Variant::Original, 1).delivered))
            });
        }
    }
    group.finish();
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets =
    bench_fanout_scale,
    bench_sim_scale
}
criterion_main!(benches);
