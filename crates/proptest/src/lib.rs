//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds in environments with no network access and no crate
//! registry, so the real `proptest` cannot be fetched. This shim implements
//! the (small) API surface the workspace's property tests actually use, with
//! the same names and shapes, so the test files compile unchanged:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, multiple
//!   `#[test] fn name(pat in strategy, ...)` items, and doc comments;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for integer
//!   and float ranges and tuples;
//! * `prop::collection::vec`, `prop::option::weighted`, and [`any`].
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a deterministic per-test RNG (seeded from the test name, so
//! failures are reproducible by rerunning the test) and there is **no
//! shrinking** — a failure reports the case number and the assertion message
//! only.
//!
//! Two pieces of real-proptest workflow **are** supported:
//!
//! * the `PROPTEST_CASES` environment variable overrides the configured case
//!   count, so CI can pin a budget without touching test sources;
//! * a sibling `<test-file>.proptest-regressions` file is read before novel
//!   cases are generated and every `cc <seed>` line is replayed first. A
//!   16-hex-digit seed restores the exact shim RNG state; longer seeds
//!   (saved by the real proptest) are hashed to a stable starting state so
//!   the case still exercises a deterministic input. When a novel case
//!   fails, the panic message includes the `cc` line to commit.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each test `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while still
        // exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by [`prop_assert!`]; carried as a `Result::Err` out of the
/// test body so assertion macros can early-return.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from an assertion message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic input generator (SplitMix64). Each test gets its own stream
/// seeded from the test's name, so runs are reproducible without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed starting state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Restore a stream from a saved state (a `cc` regression seed).
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// The current state; saved before each case so failures can be
    /// replayed exactly via [`TestRng::from_state`].
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // 128-bit multiply-shift; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Accepted sizes for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` of `size.len()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`weighted`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        some_probability: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.some_probability {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` with probability `some_probability`, else `None`.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
        assert!((0.0..=1.0).contains(&some_probability));
        OptionStrategy {
            some_probability,
            inner,
        }
    }
}

/// Namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// The case budget for a test: `PROPTEST_CASES` (if set and parseable)
/// overrides the configured count.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.trim().parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// Seeds saved in the `.proptest-regressions` file next to `source_file`
/// (the `file!()` of the test), replayed before novel cases.
///
/// `source_file` is relative to the workspace root while tests run from the
/// crate directory, so the file is searched relative to the current
/// directory and each of its ancestors. `cc` lines carrying a 16-hex-digit
/// seed map directly to a shim RNG state; anything else (real-proptest
/// 256-bit seeds) is hashed to a stable state.
pub fn regression_seeds(source_file: &str) -> Vec<u64> {
    let sibling = format!("{source_file}.proptest-regressions");
    let mut candidates: Vec<std::path::PathBuf> = vec![std::path::PathBuf::from(&sibling)];
    if let Ok(cwd) = std::env::current_dir() {
        candidates.extend(cwd.ancestors().map(|a| a.join(&sibling)));
    }
    let Some(text) = candidates
        .iter()
        .find_map(|p| std::fs::read_to_string(p).ok())
    else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let token = rest.split_whitespace().next().unwrap_or("");
        if token.len() == 16 && token.bytes().all(|b| b.is_ascii_hexdigit()) {
            if let Ok(s) = u64::from_str_radix(token, 16) {
                seeds.push(s);
                continue;
            }
        }
        // Foreign seed format: hash to a stable, deterministic state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in token.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        seeds.push(h);
    }
    seeds
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert a condition inside a [`proptest!`] body; on failure the current
/// case aborts with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { .. }` becomes
/// an ordinary `#[test]` that samples its inputs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let __proptest_cases = $crate::resolve_cases(config.cases);
            // Replay committed regressions before generating novel cases.
            for __proptest_seed in $crate::regression_seeds(file!()) {
                let mut __proptest_rng = $crate::TestRng::from_state(__proptest_seed);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                let __proptest_result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __proptest_result {
                    panic!(
                        "[proptest shim] {} failed replaying regression seed \
                         cc {:016x}: {}",
                        stringify!($name),
                        __proptest_seed,
                        e
                    );
                }
            }
            let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
            for __proptest_case in 0..__proptest_cases {
                let __proptest_state = __proptest_rng.state();
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                let __proptest_result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __proptest_result {
                    panic!(
                        "[proptest shim] {} failed at case {}/{}: {}\n\
                         To pin this case, add the line below to the \
                         .proptest-regressions file next to the test:\n\
                         cc {:016x}",
                        stringify!($name),
                        __proptest_case + 1,
                        __proptest_cases,
                        e,
                        __proptest_state
                    );
                }
            }
        }
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::from_name("vec_strategy_respects_size");
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u32..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn weighted_option_hits_both_arms() {
        let mut rng = crate::TestRng::from_name("weighted_option_hits_both_arms");
        let strat = prop::option::weighted(0.5, 0u32..10);
        let somes = (0..1000)
            .filter(|_| Strategy::sample(&strat, &mut rng).is_some())
            .count();
        assert!(somes > 300 && somes < 700, "somes={somes}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, tuples, flat_map and assertions.
        #[test]
        fn macro_plumbing_works(
            xs in prop::collection::vec(0u64..100, 1..8),
            (a, b) in (0u32..10, 0u32..10),
            n in (1usize..4).prop_flat_map(|n| (0usize..n, 10usize..20)),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(a < 10 && b < 10);
            prop_assert!(n.0 < 3);
            prop_assert_eq!(n.1 / 10, 1);
        }
    }
}
