//! The token-tree pass: a second, structural look at the lexed token stream
//! that the newer rule families (R6–R8) consume.
//!
//! [`crate::lexer`] guarantees token *boundaries*; this pass adds just enough
//! *structure* on top — brace nesting, attribute attachment, `#[cfg(test)]`
//! / `#[test]` awareness, in-file `fn` signatures, and `// mesh-lint: hot`
//! region markers — while staying dependency-free (no `syn`; the workspace
//! builds offline). It is deliberately a scope map, not an AST: rules still
//! match token patterns, they just ask the map "is this token test-only
//! code?" or "is this line inside a hot region?" first.

use crate::lexer::{Lexed, Token};
use crate::rules::Finding;

/// A unit suffix class recognised by R7. `unit` is the concrete suffix
/// (`ms`), `class` the dimension it measures (`time`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit {
    pub unit: &'static str,
    pub class: &'static str,
}

/// The workspace suffix convention: power in `_dbm`/`_mw`/`_w`, time in
/// `_s`/`_ms`/`_slots`, distance in `_m`/`_km`. (`_us` is deliberately
/// absent: the workspace never uses microseconds and `_us` collides with
/// English plurals/pronouns.)
const UNITS: &[(&str, &str)] = &[
    ("dbm", "power"),
    ("mw", "power"),
    ("w", "power"),
    ("ms", "time"),
    ("s", "time"),
    ("slots", "time"),
    ("km", "distance"),
    ("m", "distance"),
];

/// The unit suffix of an identifier, if any: a trailing `_<unit>` with a
/// non-empty stem (`power_w` → watts; a bare `_s` closure binder does not
/// count).
pub fn unit_suffix(ident: &str) -> Option<Unit> {
    for &(unit, class) in UNITS {
        if let Some(stem) = ident.strip_suffix(unit) {
            if let Some(stem) = stem.strip_suffix('_') {
                if !stem.is_empty() && stem.chars().any(|c| c.is_alphanumeric()) {
                    return Some(Unit { unit, class });
                }
            }
        }
    }
    None
}

/// One in-file `fn` signature, for R7's call-site parameter check.
#[derive(Debug, Clone)]
pub struct FnSig {
    pub name: String,
    /// Unit suffix of each declared parameter, in order. The `self`
    /// receiver (if any) is dropped so the list lines up with call-site
    /// argument positions for both free and method calls.
    pub params: Vec<Option<Unit>>,
}

/// A `// mesh-lint: hot(<label>)` … `// mesh-lint: end-hot` region.
#[derive(Debug, Clone)]
pub struct HotRegion {
    pub label: String,
    /// 1-based inclusive line span (marker lines themselves included —
    /// markers are comments, so no code token is misattributed).
    pub start_line: u32,
    pub end_line: u32,
}

/// Structural facts about one file's token stream.
#[derive(Debug, Default)]
pub struct ScopeMap {
    /// Per-token: inside test-only code (`#[cfg(test)]` mod / `#[test]` fn)?
    test: Vec<bool>,
    /// In-file `fn` signatures. Names declared more than once with
    /// *different* unit shapes are dropped as ambiguous.
    pub fns: Vec<FnSig>,
    /// Hot regions in file order.
    pub hot: Vec<HotRegion>,
    /// Malformed hot markers (unterminated / unopened / nested), reported
    /// as R8 findings so a half-annotated region cannot silently disable
    /// the allocation check.
    pub marker_errors: Vec<Finding>,
}

impl ScopeMap {
    /// Whether token `i` sits in test-only code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test.get(i).copied().unwrap_or(false)
    }

    /// Hot region covering `line`, if any.
    pub fn hot_region_at(&self, line: u32) -> Option<&HotRegion> {
        self.hot
            .iter()
            .find(|r| r.start_line <= line && line <= r.end_line)
    }

    /// Signature for `name`, if unambiguously declared in this file.
    pub fn fn_sig(&self, name: &str) -> Option<&FnSig> {
        self.fns.iter().find(|f| f.name == name)
    }
}

/// Build the scope map for a lexed file.
pub fn build(lexed: &Lexed) -> ScopeMap {
    let tokens = &lexed.tokens;
    let mut map = ScopeMap {
        test: vec![false; tokens.len()],
        ..ScopeMap::default()
    };
    mark_test_scopes(tokens, &mut map.test);
    collect_fn_sigs(tokens, &mut map);
    collect_hot_regions(&lexed.comments, &mut map);
    map
}

/// Does the attribute token span `#[ … ]` mark test-only code? True for
/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`, `#[bench]`,
/// `#[should_panic]` — any attribute whose tokens mention `test`, `bench`
/// or `should_panic` as an identifier (string literals lex as `""`, so
/// `#[doc = "test"]` cannot confuse this).
fn attr_is_test(tokens: &[Token], start: usize, end: usize) -> bool {
    tokens[start..end]
        .iter()
        .any(|t| matches!(t.text.as_str(), "test" | "bench" | "should_panic"))
}

/// Mark every token inside a `#[cfg(test)] mod` / `#[test] fn` body (and
/// anything nested in one) as test code.
fn mark_test_scopes(tokens: &[Token], test: &mut [bool]) {
    // Brace stack: `true` entries are test scopes. A pending test attribute
    // attaches to the next `{` at the depth it was seen, and is cancelled by
    // a `;` (attribute on a braceless item) at that depth.
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_test = false;
    let mut pending_depth = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let in_test = stack.iter().any(|&t| t);
        if in_test {
            test[i] = true;
        }
        match tokens[i].text.as_str() {
            "#" if tokens.get(i + 1).is_some_and(|t| t.text == "[") => {
                // Consume the whole attribute so its own brackets/braces
                // (e.g. `#[cfg(test)]`) do not disturb the stack.
                let mut depth = 0usize;
                let mut j = i + 1;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if attr_is_test(tokens, i, j + 1) {
                    pending_test = true;
                    pending_depth = stack.len();
                }
                if in_test {
                    for t in test.iter_mut().take((j + 1).min(tokens.len())).skip(i) {
                        *t = true;
                    }
                }
                i = j + 1;
                continue;
            }
            "{" => {
                let attaches = pending_test && stack.len() == pending_depth;
                stack.push(attaches);
                if attaches {
                    pending_test = false;
                }
            }
            "}" => {
                stack.pop();
            }
            ";" if stack.len() == pending_depth => {
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Rust keywords an identifier-shaped token can be; excluded from
/// call-site / index-base matching.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Collect `fn name(params…)` signatures. Parameter names are matched as
/// `ident :` entries at paren depth 1; patterns that are not plain
/// identifiers keep their position with `None` so arity still lines up.
fn collect_fn_sigs(tokens: &[Token], map: &mut ScopeMap) {
    let mut ambiguous: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let name = name_tok.text.clone();
        // Skip generics to the opening paren: `fn f<T: Ord>(…)`.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" if angle <= 0 => break,
                "{" | ";" => break, // not a declaration we can read
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() || tokens[j].text != "(" {
            i += 1;
            continue;
        }
        let (params, end) = parse_params(tokens, j);
        match map.fns.iter().position(|f| f.name == name) {
            Some(at) if map.fns[at].params != params => {
                // Same name, different unit shape: drop as ambiguous.
                map.fns.remove(at);
                ambiguous.push(name);
            }
            Some(_) => {}
            None if !ambiguous.contains(&name) => map.fns.push(FnSig { name, params }),
            None => {}
        }
        i = end;
    }
}

/// Parse a parameter list starting at the `(` token; returns the per-slot
/// unit suffixes (receiver dropped) and the index past the closing `)`.
fn parse_params(tokens: &[Token], open: usize) -> (Vec<Option<Unit>>, usize) {
    let mut params: Vec<Option<Unit>> = Vec::new();
    let mut depth = 0i32;
    let mut entry_start = open + 1;
    let mut i = open;
    let mut end = tokens.len();
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    push_param(tokens, entry_start, i, &mut params);
                    end = i + 1;
                    break;
                }
            }
            "," if depth == 1 => {
                push_param(tokens, entry_start, i, &mut params);
                entry_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    (params, end)
}

/// Append one parameter entry spanning `tokens[start..stop]`, dropping a
/// `self` receiver and reducing everything else to its unit suffix.
fn push_param(tokens: &[Token], start: usize, stop: usize, params: &mut Vec<Option<Unit>>) {
    let mut idx = start;
    while idx < stop && matches!(tokens[idx].text.as_str(), "&" | "mut" | "ref" | "'") {
        idx += 1;
    }
    // Skip lifetime idents after `&'a`.
    if idx < stop && idx > start && tokens[idx - 1].text == "'" {
        idx += 1;
    }
    if idx >= stop {
        return; // empty entry (trailing comma / `()`)
    }
    if tokens[idx].text == "self" {
        return; // receiver: call sites pass it before the dot
    }
    let is_named = tokens.get(idx + 1).is_some_and(|t| t.text == ":");
    if is_named && !is_keyword(&tokens[idx].text) {
        params.push(unit_suffix(&tokens[idx].text));
    } else {
        params.push(None); // pattern or unreadable entry: keep the slot
    }
}

/// Parse `// mesh-lint: hot(<label>)` / `// mesh-lint: end-hot` markers
/// into regions; structural misuse becomes an R8 finding.
/// The marker body if `text` is a marker comment. The directive must
/// *begin* the comment (right after the opener) — prose that merely
/// mentions the syntax, like this crate's own documentation, never opens a
/// region. This is stricter than suppression parsing on purpose: a stray
/// region marker has file-wide blast radius.
fn marker_body(text: &str) -> Option<&str> {
    let body = text
        .strip_prefix("//!")
        .or_else(|| text.strip_prefix("///"))
        .or_else(|| text.strip_prefix("//"))
        .or_else(|| text.strip_prefix("/*"))
        .unwrap_or(text);
    body.trim_start().strip_prefix("mesh-lint:")
}

fn collect_hot_regions(comments: &[(u32, String)], map: &mut ScopeMap) {
    let mut open: Option<(u32, String)> = None;
    for &(line, ref text) in comments {
        let Some(rest) = marker_body(text) else {
            continue;
        };
        let rest = rest.trim_start();
        if let Some(body) = rest.strip_prefix("end-hot") {
            if !body.starts_with(|c: char| c.is_alphanumeric() || c == '-' || c == '_') {
                match open.take() {
                    Some((start, label)) => map.hot.push(HotRegion {
                        label,
                        start_line: start,
                        end_line: line,
                    }),
                    None => map.marker_errors.push(Finding {
                        rule: "R8".into(),
                        line,
                        message: "`mesh-lint: end-hot` without a matching `mesh-lint: hot(…)`"
                            .into(),
                    }),
                }
            }
            continue;
        }
        if let Some(body) = rest.strip_prefix("hot") {
            let body = body.trim_start();
            let label = body
                .strip_prefix('(')
                .and_then(|s| s.split(')').next())
                .map(|s| s.trim().trim_matches('"').to_string());
            let Some(label) = label else {
                // `hot` without a label/parens: prose, or a typo — only the
                // explicit `hot(<label>)` form opens a region.
                continue;
            };
            if let Some((start, prev)) = open.replace((line, label)) {
                map.marker_errors.push(Finding {
                    rule: "R8".into(),
                    line,
                    message: format!(
                        "`mesh-lint: hot(…)` opened inside hot region `{prev}` \
                         (started line {start}); close it with `mesh-lint: end-hot` first"
                    ),
                });
                // Keep the outer region open so its span is still enforced.
                open = Some((start, prev));
            }
        }
    }
    if let Some((start, label)) = open {
        map.marker_errors.push(Finding {
            rule: "R8".into(),
            line: start,
            message: format!("hot region `{label}` is never closed; add `// mesh-lint: end-hot`"),
        });
        // Enforce to end-of-file rather than silently dropping the region.
        map.hot.push(HotRegion {
            label,
            start_line: start,
            end_line: u32::MAX,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map(src: &str) -> (ScopeMap, crate::lexer::Lexed) {
        let lexed = lex(src);
        let m = build(&lexed);
        (m, lexed)
    }

    /// Indices of tokens with the given text.
    fn find(lexed: &crate::lexer::Lexed, text: &str) -> Vec<usize> {
        lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == text)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn cfg_test_mod_bodies_are_test_code() {
        let src = "fn real() { live(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { inner(); }\n\
                   }\n\
                   fn also_real() { tail(); }\n";
        let (m, lexed) = map(src);
        assert!(!m.is_test(find(&lexed, "live")[0]));
        assert!(m.is_test(find(&lexed, "inner")[0]));
        assert!(!m.is_test(find(&lexed, "tail")[0]));
    }

    #[test]
    fn test_fn_outside_mod_is_test_code() {
        let src = "#[test]\nfn t() { probe(); }\nfn real() { live(); }\n";
        let (m, lexed) = map(src);
        assert!(m.is_test(find(&lexed, "probe")[0]));
        assert!(!m.is_test(find(&lexed, "live")[0]));
    }

    #[test]
    fn attr_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn real() { live(); }\n";
        let (m, lexed) = map(src);
        assert!(!m.is_test(find(&lexed, "live")[0]));
    }

    #[test]
    fn non_test_cfg_does_not_mark() {
        let src = "#[cfg(feature = \"fast\")]\nfn real() { live(); }\n";
        let (m, lexed) = map(src);
        assert!(!m.is_test(find(&lexed, "live")[0]));
    }

    #[test]
    fn unit_suffixes() {
        assert_eq!(unit_suffix("power_w").unwrap().class, "power");
        assert_eq!(unit_suffix("delta_ms").unwrap().unit, "ms");
        assert_eq!(unit_suffix("backoff_slots").unwrap().class, "time");
        assert_eq!(unit_suffix("cell_m").unwrap().class, "distance");
        assert!(unit_suffix("rhs").is_none());
        assert!(unit_suffix("_s").is_none(), "bare underscore binder");
        assert!(unit_suffix("not_for_us").is_none(), "`_us` not a unit");
        assert!(unit_suffix("delays").is_none());
    }

    #[test]
    fn fn_signatures_collect_units_and_drop_self() {
        let src = "impl S {\n\
                   fn tune(&mut self, gain_dbm: f64, window_s: f64) {}\n\
                   }\n\
                   fn free(count: usize, span_ms: f64) {}\n";
        let (m, _) = map(src);
        let tune = m.fn_sig("tune").unwrap();
        assert_eq!(tune.params.len(), 2);
        assert_eq!(tune.params[0].unwrap().unit, "dbm");
        assert_eq!(tune.params[1].unwrap().unit, "s");
        let free = m.fn_sig("free").unwrap();
        assert_eq!(free.params, vec![None, unit_suffix("span_ms")]);
    }

    #[test]
    fn conflicting_signatures_are_dropped() {
        let src = "fn f(x_s: f64) {}\nmod a { fn f(x_ms: f64) {} }\n";
        let (m, _) = map(src);
        assert!(m.fn_sig("f").is_none());
    }

    #[test]
    fn hot_regions_parse() {
        let src = "fn a() {}\n\
                   // mesh-lint: hot(fan-out)\n\
                   fn b() {}\n\
                   // mesh-lint: end-hot\n\
                   fn c() {}\n";
        let (m, _) = map(src);
        assert_eq!(m.hot.len(), 1);
        assert_eq!(m.hot[0].label, "fan-out");
        assert!(m.hot_region_at(3).is_some());
        assert!(m.hot_region_at(5).is_none());
        assert!(m.marker_errors.is_empty());
    }

    #[test]
    fn prose_mentions_of_markers_do_not_open_regions() {
        let src = "//! The `// mesh-lint: hot(<label>)` marker opens a region\n\
                   //! closed by `// mesh-lint: end-hot`.\n\
                   // docs may show:  // mesh-lint: hot(example)\n\
                   fn a() {}\n";
        let (m, _) = map(src);
        assert!(m.hot.is_empty());
        assert!(m.marker_errors.is_empty());
    }

    #[test]
    fn unterminated_hot_region_is_reported_and_enforced() {
        let (m, _) = map("// mesh-lint: hot(x)\nfn b() {}\n");
        assert_eq!(m.marker_errors.len(), 1);
        assert!(m.hot_region_at(2).is_some(), "still enforced to EOF");
    }

    #[test]
    fn stray_end_hot_is_reported() {
        let (m, _) = map("fn a() {}\n// mesh-lint: end-hot\n");
        assert_eq!(m.marker_errors.len(), 1);
        assert!(m.hot.is_empty());
    }
}
