//! `mesh-lint.toml`: per-rule scoping without a TOML dependency.
//!
//! The parser accepts the subset the config actually needs — `#` comments,
//! `[rules.RN]` section headers, and `key = ["a", "b"]` string arrays — and
//! rejects everything else loudly (exit code 2 from the CLI) rather than
//! guessing.

use std::collections::BTreeMap;

/// Scope of one rule.
#[derive(Debug, Default, Clone)]
pub struct RuleScope {
    /// Crate directory names (`crates/<name>`) the rule is confined to.
    /// Empty means the rule applies workspace-wide.
    pub crates: Vec<String>,
    /// Workspace-relative path substrings exempt from the rule. Every entry
    /// should be justified by a comment in the config file.
    pub allow_paths: Vec<String>,
}

/// Parsed configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Path substrings excluded from workspace discovery (still scanned when
    /// named explicitly on the command line, e.g. the bad-fixture set).
    pub skip_paths: Vec<String>,
    /// Per-rule scopes, keyed by rule id (`R1`..`R9`).
    pub rules: BTreeMap<String, RuleScope>,
}

impl Config {
    /// The scope for `rule` (default scope if the config has no section).
    pub fn scope(&self, rule: &str) -> RuleScope {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Whether `rule` applies to the file at workspace-relative `path`,
    /// given the crate directory name it belongs to.
    ///
    /// `unscoped` (the CLI's `--unscoped`) ignores crate confinement and
    /// allowlists — used to exercise every rule on the fixture set. Note
    /// this is distinct from `--all-rules`, which enables the extended
    /// families R6–R9 but still honours this scoping.
    pub fn applies(&self, rule: &str, path: &str, crate_dir: &str, unscoped: bool) -> bool {
        if unscoped {
            return true;
        }
        let scope = self.scope(rule);
        if !scope.crates.is_empty() && !scope.crates.iter().any(|c| c == crate_dir) {
            return false;
        }
        !scope.allow_paths.iter().any(|p| path.contains(p.as_str()))
    }
}

/// Parse a config file. Returns `Err(message)` on any line the subset
/// grammar does not cover.
pub fn parse(src: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section: Option<String> = None;
    for (no, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(format!("line {}: unterminated section header", no + 1));
            };
            let name = name.trim();
            if let Some(rule) = name.strip_prefix("rules.") {
                cfg.rules.entry(rule.to_string()).or_default();
                section = Some(rule.to_string());
            } else {
                return Err(format!("line {}: unknown section [{name}]", no + 1));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", no + 1));
        };
        let key = key.trim();
        let values =
            parse_string_array(value.trim()).map_err(|e| format!("line {}: {e}", no + 1))?;
        match (&section, key) {
            (None, "skip_paths") => cfg.skip_paths = values,
            (None, k) => return Err(format!("line {}: unknown top-level key `{k}`", no + 1)),
            (Some(rule), "crates") => {
                cfg.rules.entry(rule.clone()).or_default().crates = values;
            }
            (Some(rule), "allow_paths") => {
                cfg.rules.entry(rule.clone()).or_default().allow_paths = values;
            }
            (Some(rule), k) => {
                return Err(format!(
                    "line {}: unknown key `{k}` in [rules.{rule}]",
                    no + 1
                ));
            }
        }
    }
    Ok(cfg)
}

/// Drop a trailing `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parse `["a", "b"]` (trailing comma tolerated).
fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a string array, got `{v}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let cfg = parse(
            r#"
            # discovery excludes
            skip_paths = ["target/", "tests/fixtures/"]

            [rules.R1]
            crates = ["mesh-sim", "core"]  # deterministic crates

            [rules.R2]
            allow_paths = ["crates/criterion/"]
            "#,
        )
        .unwrap();
        assert_eq!(cfg.skip_paths.len(), 2);
        assert_eq!(cfg.scope("R1").crates, ["mesh-sim", "core"]);
        assert_eq!(cfg.scope("R2").allow_paths, ["crates/criterion/"]);
        assert!(cfg.scope("R9").crates.is_empty());
    }

    #[test]
    fn scoping_rules() {
        let cfg =
            parse("[rules.R1]\ncrates = [\"odmrp\"]\nallow_paths = [\"src/legacy\"]\n").unwrap();
        assert!(cfg.applies("R1", "crates/odmrp/src/node.rs", "odmrp", false));
        assert!(!cfg.applies("R1", "crates/maodv/src/node.rs", "maodv", false));
        assert!(!cfg.applies("R1", "crates/odmrp/src/legacy.rs", "odmrp", false));
        assert!(cfg.applies("R1", "crates/maodv/src/node.rs", "maodv", true));
        // Unconfigured rules apply everywhere.
        assert!(cfg.applies("R4", "src/lib.rs", "wmm", false));
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(parse("unknown = [\"x\"]\n").is_err());
        assert!(parse("[weird]\n").is_err());
        assert!(parse("[rules.R1]\nbogus = [\"x\"]\n").is_err());
        assert!(parse("[rules.R1]\ncrates = nope\n").is_err());
    }
}
