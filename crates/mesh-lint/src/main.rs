//! CLI for the workspace static-analysis framework.
//!
//! ```text
//! mesh-lint [--deny] [--json] [--all-rules] [--unscoped] [--baseline FILE]
//!           [--write-baseline FILE] [--root DIR] [--config FILE] [PATH...]
//! ```
//!
//! Exit codes are stable so CI can rely on them:
//!   0 — no findings (or findings without `--deny`)
//!   1 — `--deny` and: findings present, or (with `--baseline`) new
//!       findings or stale baseline entries
//!   2 — usage, I/O, config or baseline-file error

use std::path::PathBuf;
use std::process::ExitCode;

use mesh_lint::{baseline, config, family_of, lint_paths, to_json, LintOpts};

struct Args {
    deny: bool,
    json: bool,
    opts: LintOpts,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    root: PathBuf,
    config: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn usage() -> String {
    "usage: mesh-lint [--deny] [--json] [--all-rules] [--unscoped] [--baseline FILE]\n\
     \x20                [--write-baseline FILE] [--root DIR] [--config FILE] [PATH...]\n\
     \n\
     Statically audits the workspace (rules R1-R9, see DESIGN.md §10). The\n\
     default run enforces the determinism family R1-R5; --all-rules adds\n\
     panic-freedom (R6), unit-safety (R7), hot-path allocation (R8) and the\n\
     scenario-deck audit (R9). With no PATH, scans the whole workspace minus\n\
     the config's skip_paths; explicit PATHs are scanned unconditionally,\n\
     and an explicitly named .toml file is always audited under R9.\n\
     \n\
     --deny             exit 1 if any finding is reported (CI mode)\n\
     --json             machine-readable output (includes rule family)\n\
     --all-rules        enable every rule family, honouring config scoping\n\
     --unscoped         ignore per-crate scoping and allowlists (fixture\n\
     \x20                  self-test mode; implies nothing about families)\n\
     --baseline F       diff findings against a committed baseline: only\n\
     \x20                  new findings or stale entries fail --deny\n\
     --write-baseline F write current findings as the new baseline and exit\n\
     --root DIR         workspace root (default: .)\n\
     --config F         config file (default: <root>/mesh-lint.toml)"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        json: false,
        opts: LintOpts::default(),
        baseline: None,
        write_baseline: None,
        root: PathBuf::from("."),
        config: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--all-rules" => args.opts.all_families = true,
            "--unscoped" => args.opts.unscoped = true,
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(
                    it.next().ok_or("--write-baseline needs a value")?,
                ))
            }
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?))
            }
            "--help" | "-h" => return Err(usage()),
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`\n\n{}", usage())),
        }
    }
    if args.baseline.is_some() && args.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("mesh-lint.toml"));
    let cfg = if config_path.is_file() {
        match std::fs::read_to_string(&config_path)
            .map_err(|e| e.to_string())
            .and_then(|src| config::parse(&src))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("mesh-lint: bad config {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else if args.config.is_some() {
        eprintln!("mesh-lint: config {} not found", config_path.display());
        return ExitCode::from(2);
    } else {
        config::Config::default()
    };

    let explicit = !args.paths.is_empty();
    let paths = if explicit {
        args.paths.iter().map(|p| args.root.join(p)).collect()
    } else {
        vec![args.root.clone()]
    };

    let (findings, scanned) = match lint_paths(&args.root, &paths, &cfg, args.opts, explicit) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mesh-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        if let Err(e) = std::fs::write(path, to_json(&findings) + "\n") {
            eprintln!("mesh-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "mesh-lint: wrote baseline {} ({} entry(ies))",
            path.display(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let diff = match &args.baseline {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("mesh-lint: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match baseline::parse(&src) {
                Ok(entries) => Some(baseline::diff(&findings, &entries)),
                Err(e) => {
                    eprintln!("mesh-lint: bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    // Without a baseline, report (and deny on) every finding; with one,
    // only the new findings are actionable output.
    let actionable = diff.as_ref().map(|d| &d.new).unwrap_or(&findings);

    if args.json {
        println!("{}", to_json(actionable));
    } else {
        for f in actionable {
            println!(
                "{}:{}: [{}/{}] {}",
                f.path,
                f.finding.line,
                f.finding.rule,
                family_of(&f.finding.rule),
                f.finding.message
            );
        }
    }
    let denies = match &diff {
        Some(d) => {
            for e in &d.stale {
                eprintln!(
                    "mesh-lint: stale baseline entry {}:{} [{}] — the finding no longer \
                     fires; shrink the baseline in this PR",
                    e.path, e.line, e.rule
                );
            }
            if !args.json {
                eprintln!(
                    "mesh-lint: {} new finding(s), {} baselined, {} stale baseline \
                     entry(ies), {scanned} file(s) scanned",
                    d.new.len(),
                    d.known,
                    d.stale.len()
                );
            }
            !d.new.is_empty() || !d.stale.is_empty()
        }
        None => {
            if !args.json {
                eprintln!(
                    "mesh-lint: {} finding(s) in {scanned} file(s) scanned",
                    findings.len()
                );
            }
            !findings.is_empty()
        }
    };

    if args.deny && denies {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
