//! CLI for the workspace determinism auditor.
//!
//! ```text
//! mesh-lint [--deny] [--json] [--all-rules] [--root DIR] [--config FILE] [PATH...]
//! ```
//!
//! Exit codes are stable so CI can rely on them:
//!   0 — no findings (or findings without `--deny`)
//!   1 — findings present and `--deny` was given
//!   2 — usage, I/O or config error

use std::path::PathBuf;
use std::process::ExitCode;

use mesh_lint::{config, lint_paths, to_json};

struct Args {
    deny: bool,
    json: bool,
    all_rules: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn usage() -> String {
    "usage: mesh-lint [--deny] [--json] [--all-rules] [--root DIR] [--config FILE] [PATH...]\n\
     \n\
     Statically audits the workspace for determinism hazards (rules R1-R5,\n\
     see DESIGN.md §10). With no PATH, scans the whole workspace minus the\n\
     config's skip_paths; explicit PATHs are scanned unconditionally.\n\
     \n\
     --deny       exit 1 if any finding is reported (CI mode)\n\
     --json       machine-readable output\n\
     --all-rules  ignore per-crate scoping and allowlists (fixture self-test)\n\
     --root DIR   workspace root (default: .)\n\
     --config F   config file (default: <root>/mesh-lint.toml)"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        json: false,
        all_rules: false,
        root: PathBuf::from("."),
        config: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--all-rules" => args.all_rules = true,
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?))
            }
            "--help" | "-h" => return Err(usage()),
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`\n\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("mesh-lint.toml"));
    let cfg = if config_path.is_file() {
        match std::fs::read_to_string(&config_path)
            .map_err(|e| e.to_string())
            .and_then(|src| config::parse(&src))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("mesh-lint: bad config {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else if args.config.is_some() {
        eprintln!("mesh-lint: config {} not found", config_path.display());
        return ExitCode::from(2);
    } else {
        config::Config::default()
    };

    let explicit = !args.paths.is_empty();
    let paths = if explicit {
        args.paths.iter().map(|p| args.root.join(p)).collect()
    } else {
        vec![args.root.clone()]
    };

    let (findings, scanned) = match lint_paths(&args.root, &paths, &cfg, args.all_rules, explicit) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mesh-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!(
                "{}:{}: [{}] {}",
                f.path, f.finding.line, f.finding.rule, f.finding.message
            );
        }
        eprintln!(
            "mesh-lint: {} finding(s) in {scanned} file(s) scanned",
            findings.len()
        );
    }

    if args.deny && !findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
