//! The determinism rule catalog (R1–R5) and the suppression mechanism.
//!
//! Every rule is a token-level heuristic over [`crate::lexer`] output — see
//! DESIGN.md §10 for the catalog, the rationale and the known blind spots.
//! False positives are handled by per-line suppression comments of the form
//! `mesh-lint: allow(R2, "reason why this is safe")`; the reason is
//! mandatory so each exception documents itself.

use crate::config::Config;
use crate::lexer::{lex, Token};

/// One violation (or suppression misuse) in one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: `R1`..`R9`, or `SUPPRESS` for malformed suppressions.
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// The rule family a rule id belongs to (surfaced in `--json` output so
/// downstream tooling can group/ratchet per family).
pub fn family_of(rule: &str) -> &'static str {
    match rule {
        "R1" | "R2" | "R3" | "R4" | "R5" => "determinism",
        "R6" => "panic-freedom",
        "R7" => "unit-safety",
        "R8" => "hot-path",
        "R9" => "scenario-audit",
        _ => "suppression",
    }
}

/// How one lint run is configured (beyond the config file).
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOpts {
    /// Run every rule family (R6–R8 per file, R9 scenario audit in the
    /// CLI), not just the original determinism family R1–R5.
    pub all_families: bool,
    /// Ignore crate confinement and `allow_paths` — the fixture self-test
    /// mode, where known-bad files must trip every rule wherever they sit.
    pub unscoped: bool,
}

/// A parsed suppression comment.
#[derive(Debug, Clone)]
struct Suppression {
    rule: String,
    line: u32,
    has_reason: bool,
}

/// HashMap/HashSet methods whose results depend on hash iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "into_iter",
    "retain",
];

/// Closure-taking comparators where a `partial_cmp` means a float sort.
const CMP_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Lint one file's source. `path` is workspace-relative (diagnostics and
/// allowlists), `crate_dir` the `crates/<dir>` name (`wmm` for the umbrella
/// crate).
///
/// This is the multi-pass pipeline: lex once, build the
/// [`crate::scopes::ScopeMap`] token-tree pass once, then run every
/// applicable rule family over the shared token stream.
pub fn lint_source(
    path: &str,
    crate_dir: &str,
    src: &str,
    cfg: &Config,
    opts: LintOpts,
) -> Vec<Finding> {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let (sups, mut findings) = parse_suppressions(&lexed.comments);

    let mut raw: Vec<Finding> = Vec::new();
    if cfg.applies("R1", path, crate_dir, opts.unscoped) {
        rule_r1_hash_iteration(tokens, &mut raw);
    }
    if cfg.applies("R2", path, crate_dir, opts.unscoped) {
        rule_r2_wall_clock(tokens, &mut raw);
    }
    if cfg.applies("R3", path, crate_dir, opts.unscoped) {
        rule_r3_ambient_randomness(tokens, &mut raw);
    }
    if cfg.applies("R4", path, crate_dir, opts.unscoped) {
        rule_r4_partial_cmp(tokens, &mut raw);
    }
    if cfg.applies("R5", path, crate_dir, opts.unscoped) {
        rule_r5_threading(tokens, &mut raw);
    }
    if opts.all_families {
        let scopes = crate::scopes::build(&lexed);
        if cfg.applies("R6", path, crate_dir, opts.unscoped) {
            crate::extended::rule_r6_panic_freedom(tokens, &scopes, &mut raw);
        }
        if cfg.applies("R7", path, crate_dir, opts.unscoped) {
            crate::extended::rule_r7_unit_safety(tokens, &scopes, &mut raw);
        }
        if cfg.applies("R8", path, crate_dir, opts.unscoped) {
            crate::extended::rule_r8_hot_alloc(tokens, &scopes, &mut raw);
        }
    }

    raw.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    raw.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);

    // A valid suppression on the same line or the line directly above the
    // finding silences it; a reason-less suppression silences nothing (it is
    // itself a finding, emitted by `parse_suppressions`).
    findings.extend(raw.into_iter().filter(|f| {
        !sups
            .iter()
            .any(|s| s.has_reason && s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line))
    }));
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

/// Extract suppressions from comments; malformed ones become findings.
fn parse_suppressions(comments: &[(u32, String)]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for &(line, ref text) in comments {
        let Some(at) = text.find("mesh-lint:") else {
            continue;
        };
        let rest = text[at + "mesh-lint:".len()..].trim_start();
        // Prose mentioning "mesh-lint:" is not a directive; only the
        // `allow` form is.
        let Some(body) = rest.strip_prefix("allow") else {
            continue;
        };
        let body = body.trim_start();
        // The reason string may itself contain `)` (it often names calls
        // like `cells.len()`), so the closing paren is located *after* the
        // reason's closing quote rather than by a naive split.
        let Some(inner) = body.strip_prefix('(') else {
            findings.push(Finding {
                rule: "SUPPRESS".into(),
                line,
                message: "malformed suppression: expected `allow(RULE, \"reason\")`".into(),
            });
            continue;
        };
        let (rule, reason_rest) = match inner.split_once(',') {
            Some((r, rest)) => (r, Some(rest)),
            None => match inner.split_once(')') {
                Some((r, _)) => (r, None),
                None => {
                    findings.push(Finding {
                        rule: "SUPPRESS".into(),
                        line,
                        message: "malformed suppression: expected `allow(RULE, \"reason\")`".into(),
                    });
                    continue;
                }
            },
        };
        let rule = rule.trim().to_string();
        let has_reason = reason_rest
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('"'))
            .and_then(|s| s.split_once('"'))
            .is_some_and(|(reason, tail)| {
                !reason.trim().is_empty() && tail.trim_start().starts_with(')')
            });
        if !has_reason {
            findings.push(Finding {
                rule: "SUPPRESS".into(),
                line,
                message: format!(
                    "suppression of {rule} without a reason: write \
                     `mesh-lint: allow({rule}, \"why this is safe\")`"
                ),
            });
        }
        sups.push(Suppression {
            rule,
            line,
            has_reason,
        });
    }
    (sups, findings)
}

/// Token text at index `i` (`""` when out of range). Shared by every rule
/// family; negative indices simplify look-behind at token 0.
pub(crate) fn t(tokens: &[Token], i: isize) -> &str {
    if i < 0 {
        return "";
    }
    tokens
        .get(i as usize)
        .map(|t| t.text.as_str())
        .unwrap_or("")
}

pub(crate) fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// R1: no hash-order traversal of `HashMap`/`HashSet` in deterministic
/// crates. Keyed access (`get`, `insert`, `contains`, …) stays legal.
///
/// Heuristic: any identifier declared in this file with a
/// `HashMap`/`HashSet` type annotation or constructor is tracked; calling an
/// iteration-order method on it, or `for`-looping over it, is a finding.
fn rule_r1_hash_iteration(tokens: &[Token], out: &mut Vec<Finding>) {
    let mut declared: Vec<String> = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].text != "HashMap" && tokens[i].text != "HashSet" {
            continue;
        }
        // Walk back over `std :: collections ::` path segments.
        let mut j = i as isize - 1;
        while matches!(t(tokens, j), "::" | "std" | "collections") {
            j -= 1;
        }
        let name = match t(tokens, j) {
            ":" | "=" => t(tokens, j - 1),
            _ => continue,
        };
        if is_ident(name) && !declared.iter().any(|d| d == name) {
            declared.push(name.to_string());
        }
    }
    if declared.is_empty() {
        return;
    }

    for i in 0..tokens.len() {
        let name = &tokens[i].text;
        if !declared.iter().any(|d| d == name) {
            continue;
        }
        if t(tokens, i as isize + 1) == "."
            && ITER_METHODS.contains(&t(tokens, i as isize + 2))
            && t(tokens, i as isize + 3) == "("
        {
            out.push(Finding {
                rule: "R1".into(),
                line: tokens[i + 2].line,
                message: format!(
                    "`{name}.{}()` iterates a Hash{{Map,Set}} in hash order; use a \
                     BTreeMap/BTreeSet or collect-and-sort before traversing",
                    t(tokens, i as isize + 2)
                ),
            });
        }
    }

    // `for pat in [&[mut]] path.to.declared {` — a bare dotted path ending in
    // a tracked name is hash-order traversal (method calls are caught above).
    for i in 0..tokens.len() {
        if tokens[i].text != "for" {
            continue;
        }
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_at = None;
        while j < tokens.len() && j < i + 60 {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "in" if depth == 0 => {
                    in_at = Some(j);
                    break;
                }
                "{" | ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = in_at else { continue };
        let mut expr: Vec<&str> = Vec::new();
        let mut k = start + 1;
        while k < tokens.len() && k < start + 12 && tokens[k].text != "{" {
            expr.push(tokens[k].text.as_str());
            k += 1;
        }
        while expr.first().is_some_and(|&s| s == "&" || s == "mut") {
            expr.remove(0);
        }
        // Pure dotted path: ident (. ident)*
        let is_path = !expr.is_empty()
            && expr.iter().enumerate().all(
                |(idx, s)| {
                    if idx % 2 == 0 {
                        is_ident(s)
                    } else {
                        *s == "."
                    }
                },
            )
            && expr.len() % 2 == 1;
        if is_path {
            let last = expr[expr.len() - 1];
            if declared.iter().any(|d| d == last) {
                out.push(Finding {
                    rule: "R1".into(),
                    line: tokens[start].line,
                    message: format!(
                        "`for .. in {}` traverses a Hash{{Map,Set}} in hash order; use a \
                         BTreeMap/BTreeSet or collect-and-sort first",
                        expr.join("")
                    ),
                });
            }
        }
    }
}

/// R2: no wall-clock reads — simulated time only (`SimTime`/`SimDuration`).
fn rule_r2_wall_clock(tokens: &[Token], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let text = tokens[i].text.as_str();
        if text == "Instant"
            && t(tokens, i as isize + 1) == "::"
            && t(tokens, i as isize + 2) == "now"
        {
            out.push(Finding {
                rule: "R2".into(),
                line: tokens[i].line,
                message: "`Instant::now()` reads the wall clock; simulation code must use \
                          SimTime (allowlist benches/timing wrappers in mesh-lint.toml)"
                    .into(),
            });
        }
        if text == "SystemTime" {
            out.push(Finding {
                rule: "R2".into(),
                line: tokens[i].line,
                message: "`SystemTime` is wall-clock state; replay-relevant code must be a \
                          pure function of (scenario, plan, seed)"
                    .into(),
            });
        }
    }
}

/// R3: no ambient or degenerate randomness — every stream derives from the
/// run seed through the in-tree xoshiro [`SimRng`].
fn rule_r3_ambient_randomness(tokens: &[Token], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        match tokens[i].text.as_str() {
            "thread_rng" => out.push(Finding {
                rule: "R3".into(),
                line: tokens[i].line,
                message: "`thread_rng()` is ambient randomness; derive a stream from the \
                          run seed via SimRng instead"
                    .into(),
            }),
            "from_entropy" => out.push(Finding {
                rule: "R3".into(),
                line: tokens[i].line,
                message: "`from_entropy()` seeds from the OS; derive a stream from the run \
                          seed via SimRng instead"
                    .into(),
            }),
            "seed_from_u64" | "seed_from"
                if t(tokens, i as isize + 1) == "("
                    && is_zero_literal(t(tokens, i as isize + 2))
                    && t(tokens, i as isize + 3) == ")" =>
            {
                out.push(Finding {
                    rule: "R3".into(),
                    line: tokens[i].line,
                    message: format!(
                        "`{}(0)` hard-codes a degenerate seed; thread the scenario \
                         seed through instead of a literal zero",
                        tokens[i].text
                    ),
                });
            }
            _ => {}
        }
    }
}

fn is_zero_literal(s: &str) -> bool {
    let digits: String = s
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    let rest = &s[digits.len()..];
    let digits: String = digits.chars().filter(|c| *c != '_').collect();
    !digits.is_empty()
        && digits.chars().all(|c| c == '0')
        && (rest.is_empty() || rest.starts_with('u') || rest.starts_with('i'))
}

/// R4: floats order with `total_cmp`, never `partial_cmp().unwrap()` or a
/// `partial_cmp` comparator closure — NaN must be impossible *by types*, not
/// by prayer, and `total_cmp` is additionally a total order over bit
/// patterns (replay-stable).
fn rule_r4_partial_cmp(tokens: &[Token], out: &mut Vec<Finding>) {
    // Depths at which a CMP_SINKS call is currently open.
    let mut sink_depths: Vec<i32> = Vec::new();
    let mut depth = 0i32;
    for i in 0..tokens.len() {
        match tokens[i].text.as_str() {
            "(" => {
                depth += 1;
                if CMP_SINKS.contains(&t(tokens, i as isize - 1)) {
                    sink_depths.push(depth);
                }
            }
            ")" => {
                if sink_depths.last() == Some(&depth) {
                    sink_depths.pop();
                }
                depth -= 1;
            }
            "partial_cmp" => {
                if t(tokens, i as isize - 1) == "fn" {
                    continue; // the PartialOrd impl itself, not a call
                }
                if !sink_depths.is_empty() {
                    out.push(Finding {
                        rule: "R4".into(),
                        line: tokens[i].line,
                        message: "float comparator built on `partial_cmp`; use \
                                  `f64::total_cmp` so the order is total and replay-stable"
                            .into(),
                    });
                    continue;
                }
                // `partial_cmp(..).unwrap()` / `.expect(..)` outside a sort.
                if t(tokens, i as isize + 1) == "(" {
                    let mut d = 0i32;
                    let mut j = i + 1;
                    while j < tokens.len() {
                        match tokens[j].text.as_str() {
                            "(" => d += 1,
                            ")" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if t(tokens, j as isize + 1) == "."
                        && matches!(t(tokens, j as isize + 2), "unwrap" | "expect")
                    {
                        out.push(Finding {
                            rule: "R4".into(),
                            line: tokens[i].line,
                            message: "`partial_cmp().unwrap/expect` panics on NaN and hides \
                                      a partial order; use `f64::total_cmp`"
                                .into(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// R5: no threading primitives — event-loop code must stay single-threaded;
/// parallelism lives in the experiment runner's scatter/gather only.
fn rule_r5_threading(tokens: &[Token], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let text = tokens[i].text.as_str();
        if text == "thread"
            && t(tokens, i as isize + 1) == "::"
            && matches!(t(tokens, i as isize + 2), "spawn" | "scope")
        {
            out.push(Finding {
                rule: "R5".into(),
                line: tokens[i].line,
                message: format!(
                    "`thread::{}` introduces scheduling nondeterminism; threading is \
                     confined to experiments::runner::run_matrix",
                    t(tokens, i as isize + 2)
                ),
            });
        }
        if text == "mpsc" {
            out.push(Finding {
                rule: "R5".into(),
                line: tokens[i].line,
                message: "`mpsc` channels imply cross-thread event flow; deterministic \
                          crates must stay single-threaded"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(
            "crates/test/src/lib.rs",
            "test",
            src,
            &Config::default(),
            LintOpts::default(),
        )
    }

    fn rules(src: &str) -> Vec<String> {
        lint(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r1_flags_iteration_not_lookup() {
        let src = "struct S { m: HashMap<u32, u64> }\n\
                   fn f(s: &S) { for k in s.m.keys() {} }\n\
                   fn g(s: &S) -> Option<&u64> { s.m.get(&1) }\n";
        assert_eq!(rules(src), ["R1"]);
    }

    #[test]
    fn r1_flags_for_loop_over_set() {
        let src = "fn f() { let mut seen = HashSet::new(); for x in &seen {} }\n";
        assert_eq!(rules(src), ["R1"]);
    }

    #[test]
    fn r1_ignores_btree() {
        let src = "struct S { m: BTreeMap<u32, u64> }\n\
                   fn f(s: &S) { for k in s.m.keys() {} }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn r2_wall_clock() {
        assert_eq!(rules("fn f() { let t = Instant::now(); }"), ["R2"]);
        assert_eq!(
            rules("fn f() { let t = std::time::SystemTime::now(); }"),
            ["R2"]
        );
    }

    #[test]
    fn r3_randomness() {
        assert_eq!(rules("fn f() { let r = thread_rng(); }"), ["R3"]);
        assert_eq!(rules("fn f() { let r = SimRng::seed_from(0); }"), ["R3"]);
        assert!(rules("fn f(s: u64) { let r = SimRng::seed_from(s); }").is_empty());
    }

    #[test]
    fn r4_sort_and_unwrap_forms() {
        assert_eq!(
            rules("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"),
            ["R4"]
        );
        assert_eq!(
            rules("fn f() { let _ = a.partial_cmp(&b).expect(\"no NaN\"); }"),
            ["R4"]
        );
        assert!(rules("fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }").is_empty());
        // Bare partial_cmp (e.g. propagating the Option) is fine.
        assert!(rules("fn f() { let _ = a.partial_cmp(&b); }").is_empty());
        // The PartialOrd impl delegating to cmp is the sanctioned pattern.
        assert!(rules(
            "impl PartialOrd for S { fn partial_cmp(&self, o: &Self) -> Option<Ordering> \
             { Some(self.cmp(o)) } }"
        )
        .is_empty());
    }

    #[test]
    fn r5_threading() {
        assert_eq!(rules("fn f() { std::thread::spawn(|| {}); }"), ["R5"]);
        assert_eq!(
            rules("fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); }"),
            ["R5"]
        );
    }

    #[test]
    fn hits_inside_strings_and_comments_do_not_fire() {
        let src = "// Instant::now() thread_rng mpsc\n\
                   /* for k in m.keys() */\n\
                   fn f() { let s = \"SystemTime mpsc thread_rng\"; }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn f() {\n\
                   // mesh-lint: allow(R2, \"bench wrapper measures wall time on purpose\")\n\
                   let t = Instant::now();\n\
                   let u = Instant::now(); // mesh-lint: allow(R2, \"same-line form\")\n\
                   }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn suppression_reason_may_contain_parens() {
        let src = "fn f() {\n\
                   // mesh-lint: allow(R2, \"calibrates against cells.len() (cheap)\")\n\
                   let t = Instant::now();\n\
                   }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_an_error_and_does_not_silence() {
        let src = "fn f() {\n\
                   // mesh-lint: allow(R2)\n\
                   let t = Instant::now();\n\
                   }\n";
        let got = rules(src);
        assert_eq!(got, ["SUPPRESS", "R2"]);
    }

    #[test]
    fn suppression_for_wrong_rule_does_not_silence() {
        let src = "// mesh-lint: allow(R3, \"wrong rule\")\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(rules(src), ["R2"]);
    }
}
