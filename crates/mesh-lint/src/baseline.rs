//! Baseline ("ratchet") support: a committed `mesh-lint-baseline.json`
//! records findings a past PR knowingly deferred, so `--deny` fails only on
//! *new* findings — and, symmetrically, on *stale* baseline entries whose
//! finding no longer fires. The symmetry is the ratchet: fixing a deferred
//! site forces the same PR to shrink the baseline, so the file can never
//! drift above reality, and CI can diff it to see debt move in one
//! direction only.
//!
//! The file format is exactly the tool's own `--json` output (an array of
//! `{path, line, rule, family, message}` objects), so
//! `mesh-lint --all-rules --json > mesh-lint-baseline.json` (or
//! `--write-baseline`) regenerates it. The parser below accepts just that
//! shape — hand-rolled, like every other parser in this crate, to stay
//! dependency-free.

use crate::FileFinding;

/// One baseline entry. Matching is on `(path, rule, line)`: messages may
/// be reworded across versions, but a finding that moves lines was touched
/// and must be re-justified or fixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub path: String,
    pub rule: String,
    pub line: u32,
}

/// Outcome of diffing current findings against a baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings not covered by the baseline — these fail `--deny`.
    pub new: Vec<FileFinding>,
    /// Baseline entries that no longer fire — these *also* fail `--deny`
    /// (the baseline must shrink in the same PR as the fix it records).
    pub stale: Vec<Entry>,
    /// Findings matched by a baseline entry (reported, never fatal).
    pub known: usize,
}

/// Diff `findings` against `baseline`. Duplicate `(path, rule, line)`
/// triples are matched one-for-one (multiset semantics), so two findings
/// on one line need two baseline entries.
pub fn diff(findings: &[FileFinding], baseline: &[Entry]) -> Diff {
    let mut unmatched: Vec<&Entry> = baseline.iter().collect();
    let mut out = Diff::default();
    for f in findings {
        let hit = unmatched
            .iter()
            .position(|e| e.path == f.path && e.rule == f.finding.rule && e.line == f.finding.line);
        match hit {
            Some(i) => {
                unmatched.swap_remove(i);
                out.known += 1;
            }
            None => out.new.push(f.clone()),
        }
    }
    out.stale = unmatched.into_iter().cloned().collect();
    out.stale
        .sort_by(|a, b| (&a.path, &a.rule, a.line).cmp(&(&b.path, &b.rule, b.line)));
    out
}

/// Parse a baseline file. Accepts the tool's own `--json` output shape:
/// an array of flat objects with string and integer values; unknown keys
/// are ignored so the format can grow.
pub fn parse(src: &str) -> Result<Vec<Entry>, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    p.eat(b'[')?;
    let mut out = Vec::new();
    p.ws();
    if p.peek() == Some(b']') {
        return Ok(out);
    }
    loop {
        out.push(p.object()?);
        p.ws();
        match p.next()? {
            b',' => p.ws(),
            b']' => break,
            c => return Err(p.err(format!("expected `,` or `]`, got `{}`", c as char))),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: String) -> String {
        let line = 1 + self.b[..self.i.min(self.b.len())]
            .iter()
            .filter(|&&c| c == b'\n')
            .count();
        format!("baseline line {line}: {msg}")
    }

    fn ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Result<u8, String> {
        let c = self
            .peek()
            .ok_or_else(|| self.err("unexpected end of file".into()))?;
        self.i += 1;
        Ok(c)
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        let c = self.next()?;
        if c != want {
            return Err(self.err(format!("expected `{}`, got `{}`", want as char, c as char)));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let c = self.next()?;
                            v = v * 16
                                + (c as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad \\u escape".into()))?;
                        }
                        out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(self.err(format!("bad escape `\\{}`", c as char))),
                },
                c => out.push(c as char),
            }
        }
    }

    fn object(&mut self) -> Result<Entry, String> {
        self.ws();
        self.eat(b'{')?;
        let (mut path, mut rule, mut line) = (None, None, None);
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            match key.as_str() {
                "path" => path = Some(self.string()?),
                "rule" => rule = Some(self.string()?),
                "line" => {
                    let mut n = 0u32;
                    let mut any = false;
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        n = n
                            .saturating_mul(10)
                            .saturating_add((self.next()? - b'0') as u32);
                        any = true;
                    }
                    if !any {
                        return Err(self.err("`line` must be an integer".into()));
                    }
                    line = Some(n);
                }
                _ => {
                    // Unknown key: skip a string or bare scalar value.
                    if self.peek() == Some(b'"') {
                        self.string()?;
                    } else {
                        while self.peek().is_some_and(|c| !matches!(c, b',' | b'}')) {
                            self.i += 1;
                        }
                    }
                }
            }
            self.ws();
            match self.next()? {
                b',' => continue,
                b'}' => break,
                c => return Err(self.err(format!("expected `,` or `}}`, got `{}`", c as char))),
            }
        }
        match (path, rule, line) {
            (Some(path), Some(rule), Some(line)) => Ok(Entry { path, rule, line }),
            _ => Err(self.err("entry needs `path`, `rule` and `line`".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn finding(path: &str, rule: &str, line: u32) -> FileFinding {
        FileFinding {
            path: path.into(),
            finding: Finding {
                rule: rule.into(),
                line,
                message: "m".into(),
            },
        }
    }

    fn entry(path: &str, rule: &str, line: u32) -> Entry {
        Entry {
            path: path.into(),
            rule: rule.into(),
            line,
        }
    }

    #[test]
    fn parses_own_json_output() {
        let findings = vec![finding("a.rs", "R6", 3), finding("b\"q.rs", "R7", 12)];
        let parsed = parse(&crate::to_json(&findings)).unwrap();
        assert_eq!(
            parsed,
            vec![entry("a.rs", "R6", 3), entry("b\"q.rs", "R7", 12)]
        );
        assert_eq!(parse("[]").unwrap(), vec![]);
        assert_eq!(parse(" [ ] \n").unwrap(), vec![]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{}").is_err());
        assert!(parse("[{\"path\": \"a.rs\"}]").is_err(), "missing keys");
        assert!(parse("[{\"path\": \"a.rs\", \"rule\": \"R6\", \"line\": \"x\"}]").is_err());
    }

    #[test]
    fn diff_splits_new_known_stale() {
        let findings = vec![
            finding("a.rs", "R6", 3),
            finding("a.rs", "R6", 9),
            finding("c.rs", "R7", 1),
        ];
        let base = vec![entry("a.rs", "R6", 3), entry("gone.rs", "R2", 7)];
        let d = diff(&findings, &base);
        assert_eq!(d.known, 1);
        assert_eq!(d.new.len(), 2);
        assert_eq!(d.stale, vec![entry("gone.rs", "R2", 7)]);
    }

    #[test]
    fn diff_is_multiset() {
        // Two identical findings need two baseline entries.
        let findings = vec![finding("a.rs", "R6", 3), finding("a.rs", "R6", 3)];
        let one = vec![entry("a.rs", "R6", 3)];
        let d = diff(&findings, &one);
        assert_eq!((d.known, d.new.len(), d.stale.len()), (1, 1, 0));
    }
}
