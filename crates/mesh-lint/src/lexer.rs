//! A lightweight Rust lexer: just enough to strip comments, string/char
//! literals and lifetimes so the rules only ever see real code tokens.
//!
//! This is deliberately not a full Rust grammar (`syn` would drag in a
//! dependency tree; the workspace builds offline). The rules are token-level
//! heuristics, so the lexer only has to get the *boundaries* right: a
//! `thread_rng` inside a string or comment must never become a token, and a
//! lifetime tick must not swallow the rest of the line as a char literal.

/// One code token: an identifier, a number, or a single punctuation item
/// (`::` is fused because the rules match paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text with literals removed (string literals lex as `""`).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// Lexer output: code tokens plus the comments (for suppression parsing).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// `(line, text)` of every comment, line and block alike. Block comments
    /// report their starting line.
    pub comments: Vec<(u32, String)>,
}

/// Tokenize `src`. Never fails: unterminated literals simply end the stream.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                out.comments
                    .push((line, b[start..i].iter().collect::<String>()));
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments
                    .push((start_line, b[start..i].iter().collect::<String>()));
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
                out.tokens.push(Token {
                    text: "\"\"".into(),
                    line,
                });
            }
            '\'' => {
                // Lifetime (`'a`, `'_`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a char literal always closes with a tick right
                // after one escaped or plain character.
                if i + 1 < b.len() && b[i + 1] == '\\' {
                    // Escaped char literal: skip to the closing tick.
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && b[i + 2] == '\'' {
                    i += 3; // plain char literal like 'a'
                } else {
                    // Lifetime: skip the tick and the identifier after it.
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // String-literal prefixes — the "identifier" is actually the
                // start of a literal. Two distinct families:
                //   raw  (`r"`, `r#"`, `br#"`, `cr#"`): no escapes, closed by
                //        a quote followed by the opening number of `#`s;
                //   byte/C (`b"`, `c"`): ordinary escaped strings with a
                //        one-letter prefix — `b"\""` must honour the escape,
                //        or the scan desyncs and rules fire inside literals.
                let is_raw_prefix = matches!(text.as_str(), "r" | "br" | "cr");
                let is_escaped_prefix = matches!(text.as_str(), "b" | "c");
                if is_raw_prefix && i < b.len() && (b[i] == '"' || b[i] == '#') {
                    i = skip_raw_string(&b, i, &mut line);
                    out.tokens.push(Token {
                        text: "\"\"".into(),
                        line,
                    });
                } else if is_escaped_prefix && i < b.len() && b[i] == '"' {
                    i = skip_string(&b, i, &mut line);
                    out.tokens.push(Token {
                        text: "\"\"".into(),
                        line,
                    });
                } else {
                    out.tokens.push(Token { text, line });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident_cont(b[i]) || b[i] == '.') {
                    // Stop at `..` (range) and method calls on literals.
                    if b[i] == '.'
                        && i + 1 < b.len()
                        && (b[i + 1] == '.' || is_ident_start(b[i + 1]))
                    {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            ':' if i + 1 < b.len() && b[i + 1] == ':' => {
                out.tokens.push(Token {
                    text: "::".into(),
                    line,
                });
                i += 2;
            }
            _ => {
                out.tokens.push(Token {
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skip a `"…"` literal starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw/byte string starting at the `"` or first `#` after the prefix.
fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != '"' {
        return i; // not actually a string; bail without consuming more
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let l = lex("a // Instant::now\n/* thread_rng\n spans */ b");
        let t: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(t, ["a", "b"]);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.tokens[1].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(texts("a /* x /* y */ z */ b"), ["a", "b"]);
    }

    #[test]
    fn string_contents_do_not_tokenize() {
        let t = texts(r#"let s = "Instant::now() thread_rng";"#);
        assert!(!t.iter().any(|x| x == "Instant" || x == "thread_rng"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let t = texts(r##"let s = r#"SystemTime "quoted" mpsc"#; let b = b"spawn";"##);
        assert!(!t
            .iter()
            .any(|x| x == "SystemTime" || x == "mpsc" || x == "spawn"));
    }

    #[test]
    fn byte_strings_honour_escapes() {
        // `b"..."` is an *escaped* string: the `\"` must not terminate it.
        // A desync here would let `thread_rng` leak out as a code token.
        let t = texts(r#"let b = b"a\"thread_rng\"b"; after();"#);
        assert!(!t.iter().any(|x| x == "thread_rng"), "desynced: {t:?}");
        assert!(t.contains(&"after".to_string()));
    }

    #[test]
    fn raw_byte_strings_with_hashes() {
        let t = texts(r###"let b = br#"mpsc "quoted" spawn"#; tail();"###);
        assert!(!t.iter().any(|x| x == "mpsc" || x == "spawn"));
        assert!(t.contains(&"tail".to_string()));
    }

    #[test]
    fn nested_hash_raw_strings() {
        // `r##"…"#…"##` — a quote + fewer-than-opening hashes must not close.
        let src = "let s = r##\"inner \"# SystemTime \"## ; done();";
        let t = texts(src);
        assert!(!t.iter().any(|x| x == "SystemTime"), "desynced: {t:?}");
        assert!(t.contains(&"done".to_string()));
    }

    #[test]
    fn byte_char_literals_do_not_eat_the_line() {
        let t = texts("let x = b'a'; let y = b'\\''; rest();");
        assert!(t.contains(&"rest".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_the_line() {
        let t = texts("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(t.contains(&"str".to_string()));
        assert!(t.contains(&"}".to_string()));
    }

    #[test]
    fn path_separator_fuses() {
        assert_eq!(
            texts("std::time::Instant"),
            ["std", "::", "time", "::", "Instant"]
        );
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        assert_eq!(texts("seed_from_u64(0)"), ["seed_from_u64", "(", "0", ")"]);
        assert_eq!(texts("0u64 1_000"), ["0u64", "1_000"]);
    }
}
