//! mesh-lint: the workspace static-analysis framework.
//!
//! The whole evaluation of this reproduction rests on bit-identical
//! `(scenario, plan, seed)` replay — the indexed-vs-naive equivalence tests
//! and the differential-replay oracles are vacuous if nondeterminism leaks
//! into event order or stats. mesh-lint statically enforces the replay
//! contract with five project-specific rules (R1–R5, see [`rules`] and
//! DESIGN.md §10) that clippy cannot express, and the runtime closes the
//! loop with a schedule hash over dequeued events
//! (`mesh_sim::Simulator::schedule_hash`).
//!
//! On top of the original determinism family, `--all-rules` enables three
//! further per-file families built on a lightweight token-tree pass
//! ([`scopes`]) — R6 panic-freedom, R7 unit-suffix safety, R8 hot-path
//! allocation hygiene (all in [`extended`]) — plus the R9 scenario audit,
//! which drives the scenario compiler check-only over committed
//! `scenarios/*.toml` decks. A committed [`baseline`] turns `--deny` into a
//! ratchet: only new findings (or stale baseline entries) fail CI.
//!
//! Run it with `cargo run -p mesh-lint -- --deny --all-rules` from the
//! workspace root.

pub mod baseline;
pub mod config;
pub mod extended;
pub mod lexer;
pub mod rules;
pub mod scopes;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{family_of, Finding, LintOpts};

/// A finding bound to the file it occurred in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFinding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub finding: Finding,
}

/// The crate directory name a workspace-relative path belongs to
/// (`crates/<name>/…` → `<name>`; everything else is the umbrella crate).
pub fn crate_dir_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("wmm")
}

/// Lint one Rust source string at a given workspace-relative path.
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config, opts: LintOpts) -> Vec<FileFinding> {
    rules::lint_source(rel_path, crate_dir_of(rel_path), src, cfg, opts)
        .into_iter()
        .map(|finding| FileFinding {
            path: rel_path.to_string(),
            finding,
        })
        .collect()
}

/// R9 scenario audit: run one scenario TOML source through the scenario
/// compiler's check-only entry point (compile, cap validation, full axis
/// expansion — nothing executes). A deck that no longer compiles or
/// expands is one R9 finding at the offending line (line 0 for whole-sweep
/// errors such as a blown expansion cap).
pub fn audit_scenario_source(rel_path: &str, src: &str) -> Vec<FileFinding> {
    match experiments::scenario_compiler::check(src) {
        Ok(_) => Vec::new(),
        Err(e) => vec![FileFinding {
            path: rel_path.to_string(),
            finding: Finding {
                rule: "R9".into(),
                line: e.line as u32,
                message: format!("scenario fails static audit: {}", e.msg),
            },
        }],
    }
}

/// Recursively collect lintable files under `path` — `.rs` sources plus
/// `.toml` scenario decks — sorted, so diagnostics are stable. `skip`
/// substrings filter workspace discovery; pass `&[]` when the caller named
/// the path explicitly.
pub fn collect_lintable_files(
    root: &Path,
    path: &Path,
    skip: &[String],
) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect_into(root, path, skip, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_into(
    root: &Path,
    path: &Path,
    skip: &[String],
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let rel = rel_str(root, path);
    if skip.iter().any(|s| rel.contains(s.as_str())) {
        return Ok(());
    }
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs" || e == "toml") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    if !path.is_dir() {
        return Ok(());
    }
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name == ".git" || name == "target" {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        collect_into(root, &entry, skip, out)?;
    }
    Ok(())
}

/// Workspace-relative `/`-separated form of `path`.
pub fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint files on disk. `explicit` disables the config's `skip_paths`
/// (used when the caller names e.g. the fixture directory).
///
/// `.toml` files participate only when `opts.all_families` is on (R9): a
/// workspace scan audits decks whose path contains `scenarios/`, while a
/// `.toml` file named directly on the command line is always audited.
pub fn lint_paths(
    root: &Path,
    paths: &[PathBuf],
    cfg: &Config,
    opts: LintOpts,
    explicit: bool,
) -> std::io::Result<(Vec<FileFinding>, usize)> {
    let no_skip: Vec<String> = Vec::new();
    let skip = if explicit { &no_skip } else { &cfg.skip_paths };
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in paths {
        let named_toml = path.is_file() && path.extension().is_some_and(|e| e == "toml");
        for file in collect_lintable_files(root, path, skip)? {
            let rel = rel_str(root, &file);
            if file.extension().is_some_and(|e| e == "toml") {
                if !opts.all_families
                    || !(named_toml || rel.contains("scenarios/"))
                    || !cfg.applies("R9", &rel, crate_dir_of(&rel), opts.unscoped)
                {
                    continue;
                }
                let src = std::fs::read_to_string(&file)?;
                scanned += 1;
                findings.extend(audit_scenario_source(&rel, &src));
                continue;
            }
            let src = std::fs::read_to_string(&file)?;
            scanned += 1;
            findings.extend(lint_source(&rel, &src, cfg, opts));
        }
    }
    Ok((findings, scanned))
}

/// Render findings as a JSON array (stable field order, hand-escaped — the
/// auditor is dependency-free by design).
pub fn to_json(findings: &[FileFinding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"family\": \"{}\", \
             \"message\": \"{}\"}}",
            json_escape(&f.path),
            f.finding.line,
            json_escape(&f.finding.rule),
            json_escape(family_of(&f.finding.rule)),
            json_escape(&f.finding.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_resolution() {
        assert_eq!(crate_dir_of("crates/mesh-sim/src/world.rs"), "mesh-sim");
        assert_eq!(crate_dir_of("crates/core/src/lib.rs"), "core");
        assert_eq!(crate_dir_of("src/lib.rs"), "wmm");
        assert_eq!(crate_dir_of("tests/end_to_end.rs"), "wmm");
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let findings = vec![FileFinding {
            path: "a\"b.rs".into(),
            finding: Finding {
                rule: "R2".into(),
                line: 3,
                message: "tab\there".into(),
            },
        }];
        let json = to_json(&findings);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\there"));
        assert_eq!(to_json(&[]), "[]");
    }
}
