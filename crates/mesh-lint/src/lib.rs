//! mesh-lint: the workspace determinism auditor.
//!
//! The whole evaluation of this reproduction rests on bit-identical
//! `(scenario, plan, seed)` replay — the indexed-vs-naive equivalence tests
//! and the differential-replay oracles are vacuous if nondeterminism leaks
//! into event order or stats. mesh-lint statically enforces the replay
//! contract with five project-specific rules (R1–R5, see [`rules`] and
//! DESIGN.md §10) that clippy cannot express, and the runtime closes the
//! loop with a schedule hash over dequeued events
//! (`mesh_sim::Simulator::schedule_hash`).
//!
//! Run it with `cargo run -p mesh-lint -- --deny` from the workspace root.

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::Finding;

/// A finding bound to the file it occurred in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFinding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub finding: Finding,
}

/// The crate directory name a workspace-relative path belongs to
/// (`crates/<name>/…` → `<name>`; everything else is the umbrella crate).
pub fn crate_dir_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("wmm")
}

/// Lint one source string at a given workspace-relative path.
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config, all_rules: bool) -> Vec<FileFinding> {
    rules::lint_source(rel_path, crate_dir_of(rel_path), src, cfg, all_rules)
        .into_iter()
        .map(|finding| FileFinding {
            path: rel_path.to_string(),
            finding,
        })
        .collect()
}

/// Recursively collect `.rs` files under `path` (sorted, so diagnostics are
/// stable). `skip` substrings filter workspace discovery; pass `&[]` when
/// the caller named the path explicitly.
pub fn collect_rs_files(
    root: &Path,
    path: &Path,
    skip: &[String],
) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect_into(root, path, skip, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_into(
    root: &Path,
    path: &Path,
    skip: &[String],
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let rel = rel_str(root, path);
    if skip.iter().any(|s| rel.contains(s.as_str())) {
        return Ok(());
    }
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    if !path.is_dir() {
        return Ok(());
    }
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name == ".git" || name == "target" {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        collect_into(root, &entry, skip, out)?;
    }
    Ok(())
}

/// Workspace-relative `/`-separated form of `path`.
pub fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint files on disk. `explicit` disables the config's `skip_paths`
/// (used when the caller names e.g. the fixture directory).
pub fn lint_paths(
    root: &Path,
    paths: &[PathBuf],
    cfg: &Config,
    all_rules: bool,
    explicit: bool,
) -> std::io::Result<(Vec<FileFinding>, usize)> {
    let no_skip: Vec<String> = Vec::new();
    let skip = if explicit { &no_skip } else { &cfg.skip_paths };
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in paths {
        for file in collect_rs_files(root, path, skip)? {
            let src = std::fs::read_to_string(&file)?;
            scanned += 1;
            findings.extend(lint_source(&rel_str(root, &file), &src, cfg, all_rules));
        }
    }
    Ok((findings, scanned))
}

/// Render findings as a JSON array (stable field order, hand-escaped — the
/// auditor is dependency-free by design).
pub fn to_json(findings: &[FileFinding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.path),
            f.finding.line,
            json_escape(&f.finding.rule),
            json_escape(&f.finding.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_resolution() {
        assert_eq!(crate_dir_of("crates/mesh-sim/src/world.rs"), "mesh-sim");
        assert_eq!(crate_dir_of("crates/core/src/lib.rs"), "core");
        assert_eq!(crate_dir_of("src/lib.rs"), "wmm");
        assert_eq!(crate_dir_of("tests/end_to_end.rs"), "wmm");
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let findings = vec![FileFinding {
            path: "a\"b.rs".into(),
            finding: Finding {
                rule: "R2".into(),
                line: 3,
                message: "tab\there".into(),
            },
        }];
        let json = to_json(&findings);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\there"));
        assert_eq!(to_json(&[]), "[]");
    }
}
