//! The extended rule families R6–R8, built on the [`crate::scopes`]
//! token-tree pass.
//!
//! * **R6 panic-freedom** — no `unwrap()`/`expect()`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!` and no arithmetic slice
//!   indexing in simulator hot crates, outside test code. Each surviving
//!   site is either refactored to `Result`/`get()` or carries a reasoned
//!   `// mesh-lint: allow(R6, "…")` documenting the invariant.
//! * **R7 unit-safety** — the workspace suffix convention (`_dbm`/`_mw`/
//!   `_w` power, `_s`/`_ms`/`_slots` time, `_m`/`_km` distance) is
//!   enforced across `+`/`-`/comparison/assignment boundaries and at
//!   call sites whose in-file signature declares a conflicting suffix.
//! * **R8 hot-path allocation** — inside `// mesh-lint: hot(<label>)`
//!   regions, allocating calls (`Vec::new`, `.clone()`, `.collect()`,
//!   `format!`, `.to_string()`, `Box::new`, …) are findings.
//!
//! Known blind spots (documented in DESIGN.md §10): R6's index check only
//! fires on arithmetic indices (`v[i + 1]`) — plain `v[i]` over
//! per-node arrays indexed by validated `NodeId`s would drown the signal;
//! R7 cannot see units through function returns or literal operands; R8
//! only audits regions someone marked.

use crate::lexer::Token;
use crate::rules::{is_ident, t, Finding};
use crate::scopes::{is_keyword, unit_suffix, ScopeMap};

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method calls that panic on the `None`/`Err` arm.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Allocation patterns flagged inside hot regions: `Type::method` paths…
const ALLOC_PATHS: &[(&str, &[&str])] = &[
    ("Vec", &["new", "from", "with_capacity"]),
    ("String", &["new", "from", "with_capacity"]),
    ("Box", &["new"]),
];

/// …allocating macros…
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// …and allocating (or potentially deep-copying) postfix methods.
/// `Arc::clone(&x)` in path form is deliberately legal: it advertises a
/// refcount bump, not a deep copy.
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_string", "to_owned", "to_vec"];

/// R6: panic-freedom in simulator hot crates (outside test code).
pub fn rule_r6_panic_freedom(tokens: &[Token], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if scopes.is_test(i) {
            continue;
        }
        let text = tokens[i].text.as_str();
        let prev = t(tokens, i as isize - 1);
        let next = t(tokens, i as isize + 1);
        if PANIC_METHODS.contains(&text) && prev == "." && next == "(" {
            out.push(Finding {
                rule: "R6".into(),
                line: tokens[i].line,
                message: format!(
                    "`.{text}()` can panic mid-simulation; propagate a Result, use \
                     `get()`/`unwrap_or*`, or document the invariant with \
                     `// mesh-lint: allow(R6, \"…\")`"
                ),
            });
        }
        if PANIC_MACROS.contains(&text) && next == "!" {
            out.push(Finding {
                rule: "R6".into(),
                line: tokens[i].line,
                message: format!(
                    "`{text}!` aborts the run; return an error (or `debug_assert!` a \
                     checked invariant), or allow(R6) with the reasoned invariant"
                ),
            });
        }
        // Arithmetic slice indexing: `v[i + 1]` / `buf[n - k]` — the
        // off-by-one panic class. Plain `v[i]` stays legal (per-node state
        // arrays are indexed by validated NodeIds throughout the
        // simulator), as do attributes, slice patterns and array types.
        if text == "[" && ((is_ident(prev) && !is_keyword(prev)) || prev == ")" || prev == "]") {
            let mut depth = 1i32;
            let mut j = i + 1;
            let mut arith_at: Option<u32> = None;
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "[" | "(" | "{" => depth += 1,
                    "]" | ")" | "}" => depth -= 1,
                    "+" | "-" if depth == 1 && arith_at.is_none() => {
                        arith_at = Some(tokens[j].line);
                    }
                    ";" if depth == 1 => {
                        arith_at = None; // `[0u8; N]` array literal/type
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(line) = arith_at {
                out.push(Finding {
                    rule: "R6".into(),
                    line,
                    message: "arithmetic slice index can go out of bounds and panic; use \
                              `get()`, a checked offset, or allow(R6) with the bound invariant"
                        .into(),
                });
            }
        }
    }
}

/// R7: unit-suffix safety across arithmetic, assignment and call sites.
pub fn rule_r7_unit_safety(tokens: &[Token], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    mixing_pass(tokens, scopes, out);
    call_site_pass(tokens, scopes, out);
}

/// Resolve the operand starting at token `j` to a single identifier chain
/// (`&mut a.b.c_ms`): returns `(last_segment_index, index_past_chain)` or
/// `None` when the operand is not a plain chain (calls, literals, parens).
fn operand_chain(tokens: &[Token], mut j: usize) -> Option<(usize, usize)> {
    while matches!(t(tokens, j as isize), "&" | "mut" | "*") {
        j += 1;
    }
    let first = t(tokens, j as isize);
    if !is_ident(first) || is_keyword(first) {
        return None;
    }
    let mut last = j;
    loop {
        let dot = t(tokens, last as isize + 1);
        let seg = t(tokens, last as isize + 2);
        if dot == "." && is_ident(seg) && !is_keyword(seg) {
            last += 2;
        } else {
            break;
        }
    }
    if t(tokens, last as isize + 1) == "(" || t(tokens, last as isize + 1) == "::" {
        return None; // call or path — return units are invisible to the lexer
    }
    Some((last, last + 1))
}

/// Pass 1: `a_s + b_ms`, `x_dbm < y_w`, `t_ms = u_s` — a unit-bearing
/// identifier combined with a conflicting one across `+`/`-`/comparison/
/// assignment. Multiplication and division legitimately convert units and
/// are exempt, as is any expression that continues past the operand (a
/// `* 1000.0` conversion tail).
fn mixing_pass(tokens: &[Token], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if scopes.is_test(i) {
            continue;
        }
        if !is_ident(&tokens[i].text) || is_keyword(&tokens[i].text) {
            continue;
        }
        let Some(u1) = unit_suffix(&tokens[i].text) else {
            continue;
        };
        // A `*`/`/` on the left means a conversion is in progress.
        if matches!(t(tokens, i as isize - 1), "*" | "/") {
            continue;
        }
        let p1 = t(tokens, i as isize + 1);
        let p2 = t(tokens, i as isize + 2);
        let (op, operand_at) = match (p1, p2) {
            ("-", ">") | ("=", ">") => continue, // `->` / `=>`
            ("<", "<") | (">", ">") => continue, // shifts
            ("=", "=") => ("==", i + 3),
            ("!", "=") => ("!=", i + 3),
            ("<", "=") => ("<=", i + 3),
            (">", "=") => (">=", i + 3),
            ("+", "=") => ("+=", i + 3),
            ("-", "=") => ("-=", i + 3),
            ("+", _) => ("+", i + 2),
            ("-", _) => ("-", i + 2),
            ("<", _) => ("<", i + 2),
            (">", _) => (">", i + 2),
            ("=", _) => ("=", i + 2),
            _ => continue,
        };
        let Some((last, past)) = operand_chain(tokens, operand_at) else {
            continue;
        };
        let Some(u2) = unit_suffix(t(tokens, last as isize)) else {
            continue;
        };
        // The operand must end the (sub)expression: a continuing `* 1000.0`
        // is a conversion, not a mix.
        if !matches!(
            t(tokens, past as isize),
            ";" | "," | ")" | "}" | "{" | "]" | ""
        ) {
            continue;
        }
        if u1 != u2 {
            out.push(Finding {
                rule: "R7".into(),
                line: tokens[i].line,
                message: format!(
                    "`{}` ({}) {op} `{}` ({}) mixes {} — convert explicitly before combining",
                    tokens[i].text,
                    u1.unit,
                    t(tokens, last as isize),
                    u2.unit,
                    if u1.class == u2.class {
                        format!("{} units ({} vs {})", u1.class, u1.unit, u2.unit)
                    } else {
                        format!("{} with {}", u1.class, u2.class)
                    }
                ),
            });
        }
    }
}

/// Pass 2: a suffixed binding passed to an in-file `fn` whose parameter in
/// that position declares a conflicting suffix.
fn call_site_pass(tokens: &[Token], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if scopes.is_test(i) {
            continue;
        }
        let name = tokens[i].text.as_str();
        if !is_ident(name) || is_keyword(name) || t(tokens, i as isize + 1) != "(" {
            continue;
        }
        if t(tokens, i as isize - 1) == "fn" {
            continue; // the declaration itself
        }
        let Some(sig) = scopes.fn_sig(name) else {
            continue;
        };
        // Split the argument list at depth-1 commas.
        let mut args: Vec<(usize, usize)> = Vec::new();
        let mut depth = 0i32;
        let mut start = i + 2;
        let mut j = i + 1;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        if j > start {
                            args.push((start, j));
                        }
                        break;
                    }
                }
                "," if depth == 1 => {
                    args.push((start, j));
                    start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        if args.len() != sig.params.len() {
            continue; // different overload / macro-ish: cannot line up slots
        }
        for (slot, &(a_start, a_stop)) in args.iter().enumerate() {
            let Some(p_unit) = sig.params[slot] else {
                continue;
            };
            let Some((last, past)) = operand_chain(tokens, a_start) else {
                continue;
            };
            if past != a_stop {
                continue; // not a bare binding — conversions exempt
            }
            let Some(a_unit) = unit_suffix(t(tokens, last as isize)) else {
                continue;
            };
            if a_unit != p_unit {
                out.push(Finding {
                    rule: "R7".into(),
                    line: tokens[a_start].line,
                    message: format!(
                        "`{}` ({}) passed to `{name}` parameter {} declared in {} — \
                         convert before the call",
                        t(tokens, last as isize),
                        a_unit.unit,
                        slot + 1,
                        p_unit.unit,
                    ),
                });
            }
        }
    }
}

/// R8: no allocation inside `// mesh-lint: hot(<label>)` regions.
pub fn rule_r8_hot_alloc(tokens: &[Token], scopes: &ScopeMap, out: &mut Vec<Finding>) {
    // Structural marker misuse is itself a finding — a half-closed region
    // must not silently disable the check.
    out.extend(scopes.marker_errors.iter().cloned());
    if scopes.hot.is_empty() {
        return;
    }
    for i in 0..tokens.len() {
        if scopes.is_test(i) {
            continue;
        }
        let line = tokens[i].line;
        let Some(region) = scopes.hot_region_at(line) else {
            continue;
        };
        let text = tokens[i].text.as_str();
        let prev = t(tokens, i as isize - 1);
        let next = t(tokens, i as isize + 1);
        let what = if let Some((ty, methods)) = ALLOC_PATHS.iter().find(|(ty, _)| *ty == text) {
            let m = t(tokens, i as isize + 2);
            (next == "::" && methods.contains(&m)).then(|| format!("{ty}::{m}"))
        } else if ALLOC_MACROS.contains(&text) && next == "!" {
            Some(format!("{text}!"))
        } else if ALLOC_METHODS.contains(&text) && prev == "." && next == "(" {
            Some(format!(".{text}()"))
        } else {
            None
        };
        if let Some(what) = what {
            out.push(Finding {
                rule: "R8".into(),
                line,
                message: format!(
                    "`{what}` allocates inside hot region `{}`; hoist it out of the hot \
                     path, reuse a scratch buffer, or allow(R8) with the reasoned cost",
                    region.label
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scopes;

    fn run(src: &str, rule: fn(&[Token], &ScopeMap, &mut Vec<Finding>)) -> Vec<Finding> {
        let lexed = lex(src);
        let map = scopes::build(&lexed);
        let mut out = Vec::new();
        rule(&lexed.tokens, &map, &mut out);
        out
    }

    fn rules(src: &str, rule: fn(&[Token], &ScopeMap, &mut Vec<Finding>)) -> Vec<String> {
        run(src, rule).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r6_flags_panicking_calls_and_macros() {
        assert_eq!(
            rules("fn f() { x.unwrap(); }", rule_r6_panic_freedom),
            ["R6"]
        );
        assert_eq!(
            rules("fn f() { x.expect(\"m\"); }", rule_r6_panic_freedom),
            ["R6"]
        );
        assert_eq!(
            rules("fn f() { panic!(\"m\"); }", rule_r6_panic_freedom),
            ["R6"]
        );
        assert_eq!(
            rules(
                "fn f() { match x { _ => unreachable!() } }",
                rule_r6_panic_freedom
            ),
            ["R6"]
        );
    }

    #[test]
    fn r6_ignores_non_panicking_cousins() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); \
                   w.expect_err(\"inverse\"); }";
        assert!(rules(src, rule_r6_panic_freedom).is_empty());
    }

    #[test]
    fn r6_ignores_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); panic!(); }\n}\n\
                   #[test]\nfn t() { y.unwrap(); }\n";
        assert!(rules(src, rule_r6_panic_freedom).is_empty());
    }

    #[test]
    fn r6_flags_arithmetic_indexing_only() {
        assert_eq!(
            rules("fn f() { let x = v[i + 1]; }", rule_r6_panic_freedom),
            ["R6"]
        );
        assert_eq!(
            rules("fn f() { let x = v[n - k]; }", rule_r6_panic_freedom),
            ["R6"]
        );
        assert!(rules("fn f() { let x = v[i]; }", rule_r6_panic_freedom).is_empty());
        assert!(rules("fn f() { let x = v[idx(j)]; }", rule_r6_panic_freedom).is_empty());
        // Array types/literals, attributes and slice patterns are not indexing.
        assert!(rules(
            "fn f() { let x: [u8; N - 1] = [0; N - 1]; }",
            rule_r6_panic_freedom
        )
        .is_empty());
        assert!(rules("#[cfg(feature = \"x\")]\nfn f() {}", rule_r6_panic_freedom).is_empty());
        assert!(rules("fn f() { let [a, b] = pair; }", rule_r6_panic_freedom).is_empty());
        // Nested call arithmetic is the callee's problem, not an index.
        assert!(rules("fn f() { let x = v[idx(j + 1)]; }", rule_r6_panic_freedom).is_empty());
    }

    #[test]
    fn r7_flags_cross_class_and_cross_unit_mixes() {
        assert_eq!(
            rules(
                "fn f() { let z = delay_s + delta_ms; }",
                rule_r7_unit_safety
            ),
            ["R7"]
        );
        assert_eq!(
            rules(
                "fn f() { if power_dbm < floor_w { x(); } }",
                rule_r7_unit_safety
            ),
            ["R7"]
        );
        assert_eq!(
            rules("fn f() { t_ms = hold_s; }", rule_r7_unit_safety),
            ["R7"]
        );
        assert_eq!(
            rules(
                "fn f() { if dist_m == window_s { x(); } }",
                rule_r7_unit_safety
            ),
            ["R7"]
        );
    }

    #[test]
    fn r7_allows_same_unit_and_conversions() {
        assert!(rules(
            "fn f() { let z = delay_s + jitter_s; }",
            rule_r7_unit_safety
        )
        .is_empty());
        // Multiplication/division convert units by design.
        assert!(rules("fn f() { let t_ms = t_s * 1000.0; }", rule_r7_unit_safety).is_empty());
        assert!(rules("fn f() { let r = dist_m / time_s; }", rule_r7_unit_safety).is_empty());
        // A continuing expression is a conversion tail, not a mix.
        assert!(rules(
            "fn f() { let z = delay_s + delta_ms * 0.001; }",
            rule_r7_unit_safety
        )
        .is_empty());
        // Function returns are invisible — no guess.
        assert!(rules(
            "fn f() { let z = delay_s + elapsed_ms(); }",
            rule_r7_unit_safety
        )
        .is_empty());
    }

    #[test]
    fn r7_checks_call_sites_against_in_file_signatures() {
        let src = "fn set_timeout(window_ms: f64) {}\n\
                   fn good(w_ms: f64) { set_timeout(w_ms); }\n\
                   fn bad(w_s: f64) { set_timeout(w_s); }\n";
        let got = run(src, rule_r7_unit_safety);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn r7_call_sites_skip_conversions_and_unknown_arity() {
        let src = "fn set_timeout(window_ms: f64) {}\n\
                   fn ok(w_s: f64) { set_timeout(w_s * 1000.0); }\n\
                   fn other() { set_timeout(1.0); }\n";
        assert!(run(src, rule_r7_unit_safety).is_empty());
    }

    #[test]
    fn r8_flags_allocation_inside_hot_regions_only() {
        let src = "fn cold() { let v: Vec<u32> = Vec::new(); }\n\
                   // mesh-lint: hot(fan-out)\n\
                   fn hot(xs: &[u32]) {\n\
                       let v: Vec<u32> = Vec::new();\n\
                       let s = format!(\"x\");\n\
                       let c = xs.to_vec();\n\
                       let d = thing.clone();\n\
                   }\n\
                   // mesh-lint: end-hot\n\
                   fn cold2() { let s = String::new(); }\n";
        assert_eq!(rules(src, rule_r8_hot_alloc), ["R8", "R8", "R8", "R8"]);
    }

    #[test]
    fn r8_arc_clone_path_form_is_legal() {
        let src = "// mesh-lint: hot(tx)\n\
                   fn hot() { let m = std::sync::Arc::clone(&msg); out.push(m); }\n\
                   // mesh-lint: end-hot\n";
        assert!(rules(src, rule_r8_hot_alloc).is_empty());
    }

    #[test]
    fn r8_marker_misuse_is_a_finding() {
        assert_eq!(
            rules("// mesh-lint: hot(x)\nfn f() {}\n", rule_r8_hot_alloc),
            ["R8"]
        );
        assert_eq!(rules("// mesh-lint: end-hot\n", rule_r8_hot_alloc), ["R8"]);
    }
}
