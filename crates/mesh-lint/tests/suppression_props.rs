//! Property test for the suppression contract on the extended families:
//! across every reason-less `allow(...)` spelling and every rule R6–R8, the
//! finding survives AND the bogus suppression is itself reported. R9 has no
//! comment channel at all — a reason-less allow written as a deck-side `#`
//! comment never reaches the audit.

use mesh_lint::{audit_scenario_source, lint_source, Config, LintOpts};
use proptest::prelude::*;

/// Known-bad one-liners, one per extended per-file rule.
const TRIGGERS: &[(&str, &str, &str)] = &[
    (
        "R6",
        "fn f(o: Option<u32>) -> u32 {\n",
        "    o.unwrap()\n}\n",
    ),
    (
        "R7",
        "fn f(a_s: f64, b_ms: f64) -> f64 {\n",
        "    a_s + b_ms\n}\n",
    ),
    (
        "R8",
        "// mesh-lint: hot(prop)\nfn f() -> String {\n",
        "    format!(\"y\")\n}\n// mesh-lint: end-hot\n",
    ),
];

/// Reason-less suppression spellings: every one must fail to silence.
const BOGUS_FORMS: &[&str] = &["", ",", ", ", ", \"\"", ", unquoted", ", \"   \""];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reasonless_allows_never_silence_extended_rules(
        which in 0usize..3,
        form in 0usize..6,
        same_line in any::<bool>(),
    ) {
        let (rule, prefix, trigger) = TRIGGERS[which];
        let sup = format!("// mesh-lint: allow({rule}{})", BOGUS_FORMS[form]);
        let src = if same_line {
            // Suppression trailing the offending line itself.
            let (line, rest) = trigger.split_once('\n').unwrap();
            format!("{prefix}{line} {sup}\n{rest}")
        } else {
            format!("{prefix}    {sup}\n{trigger}")
        };
        let fired: Vec<String> = lint_source(
            "crates/mesh-sim/src/prop.rs",
            &src,
            &Config::default(),
            LintOpts { all_families: true, unscoped: false },
        )
        .into_iter()
        .map(|f| f.finding.rule)
        .collect();
        prop_assert!(
            fired.iter().any(|r| r == rule),
            "reason-less allow must not silence {rule}: {src:?} -> {fired:?}"
        );
        prop_assert!(
            fired.iter().any(|r| r == "SUPPRESS"),
            "reason-less allow must itself be reported: {src:?} -> {fired:?}"
        );
    }

    #[test]
    fn deck_comments_never_silence_r9(form in 0usize..6) {
        let deck = format!(
            "name = \"p\"\n\n[topology]\nfamily = \"random\"\nnodes = 30\n\
             # mesh-lint: allow(R9{})\nrage = 1.0\n",
            BOGUS_FORMS[form]
        );
        let findings = audit_scenario_source("scenarios/p.toml", &deck);
        prop_assert_eq!(findings.len(), 1, "R9 must fire through deck comments");
        prop_assert_eq!(findings[0].finding.rule.as_str(), "R9");
    }
}
