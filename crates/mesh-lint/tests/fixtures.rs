//! Self-test over the known-bad fixture set: every rule R1–R5 must fire on
//! its fixture, the adversarial clean file must stay silent, and the
//! suppression contract (reason mandatory, wrong forms don't silence) must
//! hold. A second half drives the built CLI binary end-to-end and pins the
//! exit-code contract.

use std::path::Path;
use std::process::Command;

use mesh_lint::{lint_source, Config};

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"))
}

/// Lint a fixture as if it lived in a deterministic crate, with an empty
/// config (no scoping), and return the fired rule ids in order.
fn fired(name: &str) -> Vec<String> {
    let src = fixture(name);
    let rel = format!("crates/mesh-sim/src/{name}");
    lint_source(&rel, &src, &Config::default(), false)
        .into_iter()
        .map(|f| f.finding.rule)
        .collect()
}

#[test]
fn r1_fixture_fires_on_iteration_only() {
    assert_eq!(fired("r1_hash_iter.rs"), ["R1", "R1", "R1"]);
}

#[test]
fn r2_fixture_fires_on_both_clocks() {
    assert_eq!(fired("r2_wallclock.rs"), ["R2", "R2"]);
}

#[test]
fn r3_fixture_fires_on_ambient_and_degenerate_seeds() {
    assert_eq!(fired("r3_randomness.rs"), ["R3", "R3", "R3"]);
}

#[test]
fn r4_fixture_fires_on_partial_cmp_orderings() {
    assert_eq!(fired("r4_float_sort.rs"), ["R4", "R4", "R4"]);
}

#[test]
fn r5_fixture_fires_on_threading_primitives() {
    assert_eq!(fired("r5_threading.rs"), ["R5", "R5", "R5"]);
}

#[test]
fn tricky_clean_fixture_stays_silent() {
    assert_eq!(fired("clean_tricky.rs"), Vec::<String>::new());
}

#[test]
fn reasoned_suppressions_silence() {
    assert_eq!(fired("suppressed_ok.rs"), Vec::<String>::new());
}

#[test]
fn reasonless_suppressions_are_findings_and_do_not_silence() {
    assert_eq!(
        fired("suppressed_no_reason.rs"),
        ["SUPPRESS", "R2", "SUPPRESS", "R2"]
    );
}

/// Per-crate scoping from the real workspace config: R1 is confined to the
/// deterministic crates, so the same R1 fixture is silent when placed in
/// e.g. the bench crate — unless `--all-rules` overrides scoping.
#[test]
fn workspace_config_scopes_r1_to_deterministic_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_src = std::fs::read_to_string(root.join("mesh-lint.toml")).unwrap();
    let cfg = mesh_lint::config::parse(&cfg_src).unwrap();
    let src = fixture("r1_hash_iter.rs");

    let in_sim = lint_source("crates/mesh-sim/src/f.rs", &src, &cfg, false);
    assert_eq!(in_sim.len(), 3, "R1 must fire inside mesh-sim");

    let in_bench = lint_source("crates/bench/src/f.rs", &src, &cfg, false);
    assert!(in_bench.is_empty(), "R1 must not fire in the bench crate");

    let all_rules = lint_source("crates/bench/src/f.rs", &src, &cfg, true);
    assert_eq!(all_rules.len(), 3, "--all-rules ignores crate scoping");
}

// ---------------------------------------------------------------------------
// CLI end-to-end: exit codes 0 / 1 / 2.

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mesh-lint"))
}

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn cli_workspace_is_lint_clean_under_deny() {
    let out = cli()
        .args(["--deny", "--root"])
        .arg(workspace_root())
        .output()
        .expect("running mesh-lint");
    assert!(
        out.status.success(),
        "workspace must be lint-clean; findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_fixture_set_fails_under_deny_with_all_rules() {
    let out = cli()
        .args(["--deny", "--all-rules", "--json", "--root"])
        .arg(workspace_root())
        .arg("crates/mesh-lint/tests/fixtures")
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(1), "fixtures must trip --deny");
    let json = String::from_utf8_lossy(&out.stdout);
    for rule in ["R1", "R2", "R3", "R4", "R5", "SUPPRESS"] {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "{rule} missing from fixture findings:\n{json}"
        );
    }
}

#[test]
fn cli_fixture_set_fails_under_deny_even_with_default_scoping() {
    // The globally-scoped rules (R2-R4) alone are enough to trip --deny on
    // the fixture directory, with the real workspace config in force.
    let out = cli()
        .args(["--deny", "--root"])
        .arg(workspace_root())
        .arg("crates/mesh-lint/tests/fixtures")
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn cli_missing_explicit_config_is_a_usage_error() {
    let out = cli()
        .args(["--config", "/nonexistent/mesh-lint.toml"])
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_unknown_flag_is_a_usage_error() {
    let out = cli().arg("--bogus").output().expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(2));
}
