//! Self-test over the known-bad fixture set: every rule R1–R9 must fire on
//! its fixture, the adversarial clean files must stay silent, and the
//! suppression contract (reason mandatory, wrong forms don't silence) must
//! hold. A second half drives the built CLI binary end-to-end and pins the
//! exit-code and baseline-ratchet contracts.

use std::path::Path;
use std::process::Command;

use mesh_lint::{audit_scenario_source, lint_source, Config, LintOpts};

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"))
}

/// Lint a fixture as if it lived in a deterministic crate, with an empty
/// config (no scoping), and return the fired rule ids in order.
fn fired_with(name: &str, opts: LintOpts) -> Vec<String> {
    let src = fixture(name);
    let rel = format!("crates/mesh-sim/src/{name}");
    lint_source(&rel, &src, &Config::default(), opts)
        .into_iter()
        .map(|f| f.finding.rule)
        .collect()
}

/// The determinism family alone (the original R1–R5 mode).
fn fired(name: &str) -> Vec<String> {
    fired_with(name, LintOpts::default())
}

/// Every per-file family, R6–R8 included.
fn fired_all(name: &str) -> Vec<String> {
    fired_with(
        name,
        LintOpts {
            all_families: true,
            unscoped: false,
        },
    )
}

#[test]
fn r1_fixture_fires_on_iteration_only() {
    assert_eq!(fired("r1_hash_iter.rs"), ["R1", "R1", "R1"]);
}

#[test]
fn r2_fixture_fires_on_both_clocks() {
    assert_eq!(fired("r2_wallclock.rs"), ["R2", "R2"]);
}

#[test]
fn r3_fixture_fires_on_ambient_and_degenerate_seeds() {
    assert_eq!(fired("r3_randomness.rs"), ["R3", "R3", "R3"]);
}

#[test]
fn r4_fixture_fires_on_partial_cmp_orderings() {
    assert_eq!(fired("r4_float_sort.rs"), ["R4", "R4", "R4"]);
}

#[test]
fn r5_fixture_fires_on_threading_primitives() {
    assert_eq!(fired("r5_threading.rs"), ["R5", "R5", "R5"]);
}

#[test]
fn r6_fixture_fires_on_panics_and_arithmetic_indexing() {
    assert_eq!(
        fired("r6_panic.rs"),
        Vec::<String>::new(),
        "R6 needs --all-rules"
    );
    assert_eq!(fired_all("r6_panic.rs"), ["R6", "R6", "R6", "R6"]);
}

#[test]
fn r7_fixture_fires_on_unit_mixes_and_call_sites() {
    assert_eq!(fired_all("r7_units.rs"), ["R7", "R7", "R7", "R7"]);
}

#[test]
fn r8_fixture_fires_on_hot_region_allocation() {
    assert_eq!(fired_all("r8_hot_alloc.rs"), ["R8", "R8", "R8", "R8"]);
}

#[test]
fn r9_bad_deck_fires_and_clean_deck_stays_silent() {
    let bad = audit_scenario_source("scenarios/r9_bad.toml", &fixture("scenarios/r9_bad.toml"));
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].finding.rule, "R9");
    assert!(
        bad[0].finding.message.contains("rage"),
        "the R9 message must name the offending key: {}",
        bad[0].finding.message
    );
    assert!(bad[0].finding.line > 0, "a keyed error carries its line");

    let clean = audit_scenario_source(
        "scenarios/r9_clean.toml",
        &fixture("scenarios/r9_clean.toml"),
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn tricky_clean_fixture_stays_silent() {
    assert_eq!(fired_all("clean_tricky.rs"), Vec::<String>::new());
}

#[test]
fn extended_clean_fixture_stays_silent() {
    assert_eq!(fired_all("clean_r6to8.rs"), Vec::<String>::new());
}

#[test]
fn reasoned_suppressions_silence() {
    assert_eq!(fired("suppressed_ok.rs"), Vec::<String>::new());
}

#[test]
fn reasoned_suppressions_silence_extended_families() {
    assert_eq!(fired_all("suppressed_r6to8.rs"), Vec::<String>::new());
}

#[test]
fn reasonless_suppressions_are_findings_and_do_not_silence() {
    assert_eq!(
        fired("suppressed_no_reason.rs"),
        ["SUPPRESS", "R2", "SUPPRESS", "R2"]
    );
}

/// Per-crate scoping from the real workspace config: R1 is confined to the
/// deterministic crates, so the same R1 fixture is silent when placed in
/// e.g. the bench crate — unless `--unscoped` overrides scoping.
#[test]
fn workspace_config_scopes_r1_to_deterministic_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_src = std::fs::read_to_string(root.join("mesh-lint.toml")).unwrap();
    let cfg = mesh_lint::config::parse(&cfg_src).unwrap();
    let src = fixture("r1_hash_iter.rs");

    let in_sim = lint_source("crates/mesh-sim/src/f.rs", &src, &cfg, LintOpts::default());
    assert_eq!(in_sim.len(), 3, "R1 must fire inside mesh-sim");

    let in_bench = lint_source("crates/bench/src/f.rs", &src, &cfg, LintOpts::default());
    assert!(in_bench.is_empty(), "R1 must not fire in the bench crate");

    let unscoped = lint_source(
        "crates/bench/src/f.rs",
        &src,
        &cfg,
        LintOpts {
            all_families: false,
            unscoped: true,
        },
    );
    assert_eq!(unscoped.len(), 3, "--unscoped ignores crate scoping");
}

/// R6 honours the workspace config's crate confinement even under
/// `--all-rules`; only `--unscoped` widens it (the fixture-trip mode).
#[test]
fn workspace_config_scopes_r6_to_hot_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_src = std::fs::read_to_string(root.join("mesh-lint.toml")).unwrap();
    let cfg = mesh_lint::config::parse(&cfg_src).unwrap();
    let src = fixture("r6_panic.rs");
    let all = LintOpts {
        all_families: true,
        unscoped: false,
    };

    let in_sim = lint_source("crates/mesh-sim/src/f.rs", &src, &cfg, all);
    assert_eq!(in_sim.len(), 4, "R6 must fire inside mesh-sim: {in_sim:?}");

    let in_bench = lint_source("crates/bench/src/f.rs", &src, &cfg, all);
    assert!(in_bench.is_empty(), "R6 is confined to the hot crates");

    let in_sim_tests = lint_source("crates/mesh-sim/tests/f.rs", &src, &cfg, all);
    assert!(in_sim_tests.is_empty(), "/tests/ is allowlisted for R6");
}

// ---------------------------------------------------------------------------
// CLI end-to-end: exit codes 0 / 1 / 2, --all-rules, --unscoped, baselines.

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mesh-lint"))
}

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Fresh per-test scratch directory under the target dir.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("mesh-lint-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn cli_workspace_is_lint_clean_under_deny() {
    let out = cli()
        .args(["--deny", "--root"])
        .arg(workspace_root())
        .output()
        .expect("running mesh-lint");
    assert!(
        out.status.success(),
        "workspace must be lint-clean; findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_workspace_is_lint_clean_under_deny_with_all_rules() {
    let out = cli()
        .args(["--deny", "--all-rules", "--root"])
        .arg(workspace_root())
        .output()
        .expect("running mesh-lint");
    assert!(
        out.status.success(),
        "workspace must be clean under --all-rules; findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_fixture_set_fails_under_deny_with_all_rules_unscoped() {
    let out = cli()
        .args(["--deny", "--all-rules", "--unscoped", "--json", "--root"])
        .arg(workspace_root())
        .arg("crates/mesh-lint/tests/fixtures")
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(1), "fixtures must trip --deny");
    let json = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "SUPPRESS",
    ] {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "{rule} missing from fixture findings:\n{json}"
        );
    }
    for family in [
        "determinism",
        "panic-freedom",
        "unit-safety",
        "hot-path",
        "scenario-audit",
    ] {
        assert!(
            json.contains(&format!("\"family\": \"{family}\"")),
            "{family} family missing from JSON metadata:\n{json}"
        );
    }
}

#[test]
fn cli_fixture_set_fails_under_deny_even_with_default_scoping() {
    // The globally-scoped rules (R2-R4) alone are enough to trip --deny on
    // the fixture directory, with the real workspace config in force.
    let out = cli()
        .args(["--deny", "--root"])
        .arg(workspace_root())
        .arg("crates/mesh-lint/tests/fixtures")
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn cli_baseline_ratchet_admits_known_findings_only() {
    let dir = scratch("ratchet");
    let baseline = dir.join("baseline.json");

    // 1. Capture the fixture set's findings as the baseline.
    let out = cli()
        .args(["--all-rules", "--unscoped", "--root"])
        .arg(workspace_root())
        .args(["--write-baseline"])
        .arg(&baseline)
        .arg("crates/mesh-lint/tests/fixtures")
        .output()
        .expect("running mesh-lint");
    assert!(
        out.status.success(),
        "--write-baseline failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 2. Same scan against that baseline: everything is known, deny passes.
    let out = cli()
        .args(["--deny", "--all-rules", "--unscoped", "--root"])
        .arg(workspace_root())
        .args(["--baseline"])
        .arg(&baseline)
        .arg("crates/mesh-lint/tests/fixtures")
        .output()
        .expect("running mesh-lint");
    assert!(
        out.status.success(),
        "baselined findings must not fail --deny:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("baselined"),
        "summary must count baselined findings: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 3. An empty baseline makes every finding new again.
    std::fs::write(dir.join("empty.json"), "[]\n").unwrap();
    let out = cli()
        .args(["--deny", "--all-rules", "--unscoped", "--root"])
        .arg(workspace_root())
        .args(["--baseline"])
        .arg(dir.join("empty.json"))
        .arg("crates/mesh-lint/tests/fixtures")
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(1), "new findings must fail --deny");
}

#[test]
fn cli_stale_baseline_entries_fail_deny() {
    // A baseline entry no scan reproduces is stale: the ratchet must force
    // the baseline file to shrink rather than rot.
    let dir = scratch("stale");
    let baseline = dir.join("baseline.json");
    std::fs::write(
        &baseline,
        "[\n  {\"path\": \"crates/mesh-lint/tests/fixtures/clean_tricky.rs\", \
         \"line\": 1, \"rule\": \"R2\", \"family\": \"determinism\", \
         \"message\": \"long gone\"}\n]\n",
    )
    .unwrap();
    let out = cli()
        .args(["--deny", "--all-rules", "--unscoped", "--root"])
        .arg(workspace_root())
        .args(["--baseline"])
        .arg(&baseline)
        .arg("crates/mesh-lint/tests/fixtures/clean_tricky.rs")
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(1), "stale entries must fail --deny");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("stale baseline entry"),
        "stderr must explain the stale entry:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_malformed_baseline_is_a_usage_error() {
    let dir = scratch("badbase");
    let baseline = dir.join("baseline.json");
    std::fs::write(&baseline, "{ not an array }").unwrap();
    let out = cli()
        .args(["--baseline"])
        .arg(&baseline)
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_missing_explicit_config_is_a_usage_error() {
    let out = cli()
        .args(["--config", "/nonexistent/mesh-lint.toml"])
        .output()
        .expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_unknown_flag_is_a_usage_error() {
    let out = cli().arg("--bogus").output().expect("running mesh-lint");
    assert_eq!(out.status.code(), Some(2));
}
