//! R5 fixture: threading primitives must fire. Expected findings: R5 three
//! times (spawn, scope, mpsc).

fn spawns() {
    std::thread::spawn(|| {}); // FIRE: R5
}

fn scoped() {
    std::thread::scope(|_s| {}); // FIRE: R5
}

fn channels() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u32>(); // FIRE: R5
}

fn plain_closures_are_fine() {
    let f = || 1 + 1; // ok: no threads involved
    let _ = f();
}
