//! Adversarial *clean* fixture: every rule's trigger text appears here, but
//! only inside strings, comments, raw strings or identifiers that must NOT
//! fire. Expected findings: none.

// Instant::now() SystemTime thread_rng mpsc thread::spawn partial_cmp
/* for k in m.keys() { } — block comments don't count
   /* nested: HashMap::new().iter() */ still inside */

fn strings_do_not_fire() -> Vec<String> {
    vec![
        "Instant::now()".to_string(),
        "let r = thread_rng();".to_string(),
        r#"SystemTime::now() and mpsc::channel()"#.to_string(),
        r##"raw with hashes: v.sort_by(|a, b| a.partial_cmp(b).unwrap())"##.to_string(),
        "for k in map.keys() {}".to_string(),
    ]
}

fn escaped_quotes_do_not_unbalance() -> &'static str {
    "she said \"thread_rng()\" and left" // comment after a tricky string: SystemTime
}

fn char_literals_and_lifetimes<'a>(x: &'a u8) -> (&'a u8, char) {
    (x, '"') // a quote char must not open a string
}

struct Mpsc; // an identifier merely *containing* trigger text

fn identifier_lookalikes(_m: Mpsc) {
    let thread_rng_count = 3; // not a call to thread_rng
    let _ = thread_rng_count;
}

fn btree_iteration_is_fine() {
    let m: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for (_k, _v) in &m {} // ordered traversal — legal everywhere
}
