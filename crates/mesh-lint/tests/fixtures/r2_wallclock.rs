//! R2 fixture: wall-clock reads must fire. Expected findings: R2 twice.

fn reads_monotonic_clock() {
    let _t = std::time::Instant::now(); // FIRE: R2
}

fn reads_wall_clock() {
    let _t = std::time::SystemTime::now(); // FIRE: R2 (any SystemTime use)
}

fn sim_time_is_fine(now_ns: u64) -> u64 {
    now_ns + 1_000 // ok: simulated time is plain data
}
