//! R1 fixture: hash-order traversal of HashMap/HashSet must fire; keyed
//! access must not. Expected findings: R1 on the marked lines only.

use std::collections::{HashMap, HashSet};

struct Stats {
    sent: HashMap<u32, u64>,
}

fn leak_method_iteration(s: &Stats) -> u64 {
    s.sent.values().sum() // FIRE: R1 (hash-order .values())
}

fn leak_for_loop(s: &Stats) {
    for (_k, _v) in &s.sent {} // FIRE: R1 (for over hash map)
}

fn leak_set() {
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(1);
    for _x in &seen {} // FIRE: R1
}

fn keyed_access_is_fine(s: &mut Stats) -> Option<u64> {
    s.sent.insert(1, 2); // ok: keyed write
    if s.sent.contains_key(&3) {
        s.sent.remove(&3); // ok: keyed removal
    }
    s.sent.get(&1).copied() // ok: keyed lookup
}
