//! R3 fixture: ambient and degenerate randomness must fire; seed-threaded
//! streams must not. Expected findings: R3 three times.

fn ambient() -> u32 {
    let mut rng = thread_rng(); // FIRE: R3 (ambient)
    rng.gen()
}

fn os_seeded() -> SimRng {
    SimRng::from_entropy() // FIRE: R3 (OS entropy)
}

fn degenerate_literal_seed() -> SimRng {
    SimRng::seed_from_u64(0) // FIRE: R3 (hard-coded zero seed)
}

fn threaded_seed_is_fine(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed) // ok: derived from the run seed
}

fn nonzero_literal_is_fine() -> SimRng {
    SimRng::seed_from_u64(0xD1CE) // ok: a fixed stream label, not seed 0
}
