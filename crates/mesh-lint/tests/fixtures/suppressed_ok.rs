//! Suppression fixture: real violations silenced by well-formed
//! `allow(rule, "reason")` comments. Expected findings: none.

fn bench_wrapper() -> std::time::Instant {
    // mesh-lint: allow(R2, "this fixture models a bench wrapper that measures wall time")
    std::time::Instant::now()
}

fn same_line_form() {
    std::thread::spawn(|| {}); // mesh-lint: allow(R5, "fixture models the sanctioned runner")
}

fn float_sort(v: &mut [f64]) {
    // mesh-lint: allow(R4, "fixture demonstrates a reasoned exception")
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
