//! R4 fixture: `partial_cmp`-based float ordering must fire; `total_cmp`
//! must not. Expected findings: R4 three times.

fn comparator_closure(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // FIRE: R4
}

fn max_by_closure(v: &[f64]) -> Option<&f64> {
    v.iter().max_by(|a, b| a.partial_cmp(b).unwrap()) // FIRE: R4
}

fn expect_outside_sort(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("no NaN here") // FIRE: R4
}

fn total_cmp_is_fine(v: &mut [f64]) {
    v.sort_by(f64::total_cmp); // ok
}

fn propagating_the_option_is_fine(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b) // ok: caller handles None
}
