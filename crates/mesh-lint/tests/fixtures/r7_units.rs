//! Known-bad fixture for R7 unit-safety: cross-unit and cross-class mixes
//! over `+`/`<`/`=`, plus a call site conflicting with an in-file signature.

pub fn set_window(window_ms: f64) -> f64 {
    window_ms
}

pub fn mixes(delay_s: f64, delta_ms: f64, power_dbm: f64, floor_w: f64) -> bool {
    let _bad_sum = delay_s + delta_ms;
    power_dbm < floor_w
}

pub fn assigns(mut t_ms: f64, hold_s: f64) -> f64 {
    t_ms = hold_s;
    t_ms
}

pub fn calls(win_s: f64) -> f64 {
    set_window(win_s)
}
