//! Suppression-misuse fixture: reason-less or malformed suppressions are
//! themselves findings AND do not silence the underlying violation.
//! Expected findings: SUPPRESS twice, R2 twice.

fn reasonless() -> std::time::Instant {
    // mesh-lint: allow(R2)
    std::time::Instant::now() // still FIRES: R2 (suppression had no reason)
}

fn malformed() -> std::time::Instant {
    // mesh-lint: allow R2 please
    std::time::Instant::now() // still FIRES: R2 (not the allow(..) form)
}
