//! Known-bad fixture for R8: four allocating calls inside a marked hot
//! region; the identical call outside the region stays legal.

// mesh-lint: hot(fixture-loop)
pub fn hot(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let s = format!("{}", xs.len());
    let copied = xs.to_vec();
    let _twice = copied.clone();
    out.push(s.len() as u32);
    out
}
// mesh-lint: end-hot

pub fn cold() -> Vec<u32> {
    Vec::new()
}
