//! Every R6–R8 finding in this file carries a reasoned allow, so the whole
//! fixture must lint silent — the suppression contract for the extended
//! families.

pub fn guarded(v: &[u32], opt: Option<u32>, i: usize) -> u32 {
    // mesh-lint: allow(R6, "fixture: opt is Some by construction at every call site")
    let a = opt.unwrap();
    let b = v[i + 1]; // mesh-lint: allow(R6, "fixture: caller checks i + 1 < v.len()")
    a + b
}

pub fn mixed(delay_s: f64, delta_ms: f64) -> f64 {
    // mesh-lint: allow(R7, "fixture: delta_ms is pre-converted at this call site")
    delay_s + delta_ms
}

// mesh-lint: hot(suppressed-fixture)
pub fn hot() -> String {
    // mesh-lint: allow(R8, "fixture: one-time startup formatting, not per-event work")
    format!("boot banner")
}
// mesh-lint: end-hot
