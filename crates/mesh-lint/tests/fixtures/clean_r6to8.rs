//! Adversarial clean fixture for R6–R8: near-misses that must stay silent.
//!
//! Prose that mentions markers — "wrap the loop in // mesh-lint: hot(x)" —
//! must not open a region; only a comment that *begins* with the directive
//! does.

pub fn non_panicking(v: &[u32], opt: Option<u32>, i: usize) -> u32 {
    let a = opt.unwrap_or(0);
    let b = opt.unwrap_or_else(|| 1);
    let c = v.get(i + 1).copied().unwrap_or_default();
    let d = v.first().map_or(0, |x| *x);
    let plain = v[i];
    let buf: [u8; 4 - 1] = [0; 4 - 1];
    a + b + c + d + plain + u32::from(buf[0])
}

pub fn conversions(delay_s: f64, delta_ms: f64) -> f64 {
    let total_s = delay_s + delta_ms / 1000.0;
    let t_ms = delay_s * 1000.0;
    total_s + t_ms / 1000.0
}

// mesh-lint: hot(clean-path)
pub fn forward(out: &mut Vec<u32>, msg: &std::sync::Arc<Vec<u32>>) {
    let m = std::sync::Arc::clone(msg);
    out.push(m.len() as u32);
}
// mesh-lint: end-hot

pub fn cold_allocs() -> Vec<String> {
    let mut v = Vec::with_capacity(4);
    v.push("outside any hot region".to_string());
    v
}
