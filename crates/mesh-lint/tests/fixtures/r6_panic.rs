//! Known-bad fixture for R6 panic-freedom: every site in `hot()` panics or
//! can panic mid-run, and the test module below must stay exempt.

pub fn hot(v: &[u32], opt: Option<u32>, i: usize) -> u32 {
    let a = opt.unwrap();
    let b = opt.expect("present");
    if v.is_empty() {
        panic!("empty input");
    }
    let c = v[i + 1];
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
