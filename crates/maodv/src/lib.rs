//! # maodv — tree-based on-demand multicast over `mesh-sim`
//!
//! §4.3 of the paper argues that high-throughput metrics "continue to be
//! effective in multicast protocols that are tree-based such as MAODV" even
//! when ODMRP's per-group forwarding-mesh redundancy washes the gains out.
//! This crate provides that comparison point: an MAODV-style protocol whose
//! route discovery is *identical* to metric-enhanced ODMRP (cost-accumulating
//! request floods, α-window duplicate forwarding, δ-delayed best-route
//! selection) but whose forwarding state is a **per-source tree**:
//!
//! * members activate their chosen branch with **unicast grafts**
//!   (MACT-style), sent hop-by-hop toward the source over the reliable
//!   RTS/CTS/ACK MAC path with protocol-level retries on MAC failure;
//! * a node forwards data of `(group, source)` only while it has live
//!   children on *that* tree — there is no per-group mesh, so a bad route
//!   choice is not masked by other sources' forwarders.
//!
//! The `tree_multicast` experiment binary uses this crate to reproduce the
//! §4.3 claim: with multiple sources per group, ODMRP's relative gains
//! shrink while the tree protocol's persist.
//!
//! ## Example
//!
//! ```
//! use maodv::{MaodvConfig, MaodvNode};
//! use odmrp::NodeRole;
//! use mcast_metrics::MetricKind;
//! use mesh_sim::prelude::*;
//!
//! let cfg = MaodvConfig::with_metric(MetricKind::Spp);
//! let node = MaodvNode::new(cfg, NodeRole::member(GroupId(0)));
//! assert_eq!(node.stats().total_delivered(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod messages;
mod node;

pub use config::MaodvConfig;
pub use messages::MaodvMsg;
pub use node::MaodvNode;
