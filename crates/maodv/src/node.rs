//! The tree-multicast node.
//!
//! Route discovery mirrors metric-enhanced ODMRP (cost-accumulating floods,
//! α-bounded improving duplicates, δ-delayed best-route selection) so that
//! the *only* structural difference from ODMRP is what §4.3 isolates: state
//! is kept **per source** and activated hop-by-hop with **unicast grafts**,
//! producing a tree with no mesh redundancy.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mcast_metrics::{
    AnyMetric, Freshness, LinkObservation, Metric, NeighborTable, PathCost, Prober,
};
use mesh_sim::ids::{GroupId, NodeId, TimerId, TxHandle};
use mesh_sim::protocol::{Protocol, RxMeta, TxOutcome};
use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter, SnapshotState};
use mesh_sim::time::{SimDuration, SimTime};
use mesh_sim::trace::Decision;
use mesh_sim::world::Ctx;
use odmrp::messages::{class, DataPacket};
use odmrp::{MulticastApp, NodeRole, NodeStats, Variant};

use crate::config::MaodvConfig;
use crate::messages::{Graft, MaodvMsg, RouteRequest};

const DATA_CACHE_CAP: usize = 50_000;
const GRAFT_RETRIES: u32 = 2;

#[derive(Debug)]
enum TimerPayload {
    Probe,
    Cbr(usize),
    Refresh(usize),
    /// δ expired for `(source, seq)`: graft toward the best upstream.
    Delta(NodeId, u32),
    /// Jittered rebroadcast of the route request for `(source, seq)`.
    ForwardRequest(NodeId, u32),
    /// Retry a failed graft transmission.
    GraftRetry(Graft, u32),
}

#[derive(Debug)]
struct RequestState {
    group: GroupId,
    best_cost: PathCost,
    upstream: NodeId,
    hop_count: u8,
    alpha_deadline: SimTime,
    best_forwarded: Option<PathCost>,
    forward_pending: bool,
}

impl Snap for TimerPayload {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            TimerPayload::Probe => w.put_u8(0),
            TimerPayload::Cbr(i) => {
                w.put_u8(1);
                w.put_usize(*i);
            }
            TimerPayload::Refresh(i) => {
                w.put_u8(2);
                w.put_usize(*i);
            }
            TimerPayload::Delta(n, s) => {
                w.put_u8(3);
                n.snap(w);
                w.put_u32(*s);
            }
            TimerPayload::ForwardRequest(n, s) => {
                w.put_u8(4);
                n.snap(w);
                w.put_u32(*s);
            }
            TimerPayload::GraftRetry(g, attempt) => {
                w.put_u8(5);
                g.snap(w);
                w.put_u32(*attempt);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => TimerPayload::Probe,
            1 => TimerPayload::Cbr(r.usize()?),
            2 => TimerPayload::Refresh(r.usize()?),
            3 => TimerPayload::Delta(Snap::unsnap(r)?, r.u32()?),
            4 => TimerPayload::ForwardRequest(Snap::unsnap(r)?, r.u32()?),
            5 => TimerPayload::GraftRetry(Snap::unsnap(r)?, r.u32()?),
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

impl Snap for RequestState {
    fn snap(&self, w: &mut SnapWriter) {
        self.group.snap(w);
        self.best_cost.snap(w);
        self.upstream.snap(w);
        w.put_u8(self.hop_count);
        self.alpha_deadline.snap(w);
        self.best_forwarded.snap(w);
        w.put_bool(self.forward_pending);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RequestState {
            group: Snap::unsnap(r)?,
            best_cost: Snap::unsnap(r)?,
            upstream: Snap::unsnap(r)?,
            hop_count: r.u8()?,
            alpha_deadline: Snap::unsnap(r)?,
            best_forwarded: Snap::unsnap(r)?,
            forward_pending: r.bool()?,
        })
    }
}

/// Per-`(group, source)` tree membership.
#[derive(Debug, Default)]
struct TreeState {
    /// Downstream tree neighbors and their expiry.
    // Iterated (live_children): BTreeMap so traversal is key-ordered,
    // never hash-ordered (mesh-lint rule R1).
    children: BTreeMap<NodeId, SimTime>,
}

impl TreeState {
    fn live_children(&self, now: SimTime) -> usize {
        self.children.values().filter(|&&t| t > now).count()
    }
}

impl Snap for TreeState {
    fn snap(&self, w: &mut SnapWriter) {
        self.children.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TreeState {
            children: Snap::unsnap(r)?,
        })
    }
}

/// A tree-based multicast protocol instance (MAODV-style).
#[derive(Debug)]
pub struct MaodvNode {
    cfg: MaodvConfig,
    role: NodeRole,
    metric: Option<AnyMetric>,
    prober: Option<Prober>,
    table: NeighborTable,
    me: NodeId,

    // BTree containers throughout: checkpointing serializes them in
    // iteration order, which must be key order, never hash order
    // (mesh-lint rule R1).
    timers: BTreeMap<u64, TimerPayload>,
    timer_token: u64,

    requests: BTreeMap<(NodeId, u32), RequestState>,
    trees: BTreeMap<(GroupId, NodeId), TreeState>,
    /// Rounds for which this node already sent its own graft upstream.
    grafted: BTreeSet<(NodeId, u32)>,
    delta_scheduled: BTreeSet<(NodeId, u32)>,
    /// Outstanding graft transmissions by MAC handle, for retry on failure.
    pending_grafts: BTreeMap<TxHandle, (Graft, u32)>,

    data_seen: BTreeSet<(NodeId, u32)>,
    data_seen_order: VecDeque<(NodeId, u32)>,
    data_seq: u32,
    refresh_seq: u32,

    /// Per-source refresh-backoff exponent (degraded mode; 0 = nominal).
    backoff_exp: Vec<u32>,
    /// Per-source refresh seq of the most recent request round we flooded.
    last_round: Vec<Option<u32>>,
    /// Per-source token of the pending `Refresh` timer, so a revival can
    /// cancel a backed-off timer and refresh immediately.
    refresh_token: Vec<Option<u64>>,
    /// Request rounds (ours, as source) whose graft chain reached us.
    /// Keyed access only.
    elected_rounds: BTreeSet<u32>,
    /// Currently routing on the min-hop fallback (no usable estimates).
    fallback_active: bool,

    stats: NodeStats,
}

impl MaodvNode {
    /// Create a node with the given configuration and role.
    pub fn new(cfg: MaodvConfig, role: NodeRole) -> Self {
        let metric = cfg
            .variant
            .metric_kind()
            .map(|k| k.build_with_rate(cfg.probe_rate));
        let prober = metric
            .as_ref()
            .map(|m| Prober::new(m.probe_plan()))
            .filter(|p| !matches!(p.plan(), mcast_metrics::ProbePlan::None));
        let table = NeighborTable::new(cfg.estimator.clone());
        let n_sources = role.sources.len();
        MaodvNode {
            cfg,
            role,
            metric,
            prober,
            table,
            me: NodeId::new(0),
            timers: BTreeMap::new(),
            timer_token: 0,
            requests: BTreeMap::new(),
            trees: BTreeMap::new(),
            grafted: BTreeSet::new(),
            delta_scheduled: BTreeSet::new(),
            pending_grafts: BTreeMap::new(),
            data_seen: BTreeSet::new(),
            data_seen_order: VecDeque::new(),
            data_seq: 0,
            refresh_seq: 0,
            backoff_exp: vec![0; n_sources],
            last_round: vec![None; n_sources],
            refresh_token: vec![None; n_sources],
            elected_rounds: BTreeSet::new(),
            fallback_active: false,
            stats: NodeStats::default(),
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Whether this node currently forwards for the tree of `(group, source)`.
    pub fn is_tree_forwarder(&self, group: GroupId, source: NodeId, now: SimTime) -> bool {
        self.trees
            .get(&(group, source))
            .is_some_and(|t| t.live_children(now) > 0)
    }

    /// Number of distinct `(group, source)` trees this node has children in.
    pub fn tree_count(&self, now: SimTime) -> usize {
        self.trees
            .values()
            .filter(|t| t.live_children(now) > 0)
            .count()
    }

    fn arm(
        &mut self,
        ctx: &mut Ctx<'_, MaodvMsg>,
        delay: SimDuration,
        payload: TimerPayload,
    ) -> u64 {
        self.timer_token += 1;
        let token = self.timer_token;
        self.timers.insert(token, payload);
        ctx.set_timer(delay, token);
        token
    }

    fn jitter(&self, ctx: &mut Ctx<'_, MaodvMsg>) -> SimDuration {
        let max = self.cfg.control_jitter.as_nanos();
        SimDuration::from_nanos((ctx.rng().uniform() * max as f64) as u64)
    }

    fn send_probe_round(&mut self, ctx: &mut Ctx<'_, MaodvMsg>) {
        if self.prober.is_none() {
            return;
        }
        if self.cfg.degraded.enabled {
            // Trace staleness transitions into quarantine.
            let mut revived = false;
            for (peer, f) in self.table.sweep_freshness(ctx.now()) {
                match f {
                    Freshness::Quarantined => {
                        self.stats.quarantines += 1;
                        ctx.trace_decision(Decision::MetricQuarantine { peer });
                    }
                    Freshness::Fresh => revived = true,
                    Freshness::Suspect => {}
                }
            }
            // A neighbor coming back fresh: backed-off sources re-request
            // immediately instead of waiting out a timer armed during the
            // outage (same policy as ODMRP's revival reset).
            if revived {
                for idx in 0..self.backoff_exp.len() {
                    if self.backoff_exp[idx] == 0 {
                        continue;
                    }
                    self.backoff_exp[idx] = 0;
                    self.last_round[idx] = None;
                    if let Some(token) = self.refresh_token[idx].take() {
                        self.timers.remove(&token);
                    }
                    ctx.trace_decision(Decision::RefreshBackoff { factor: 1 });
                    let delay = self.jitter(ctx);
                    let token = self.arm(ctx, delay, TimerPayload::Refresh(idx));
                    self.refresh_token[idx] = Some(token);
                }
            }
        }
        let Some(prober) = self.prober.as_mut() else {
            return;
        };
        for (msg, bytes) in prober.next_round(Vec::new()) {
            if ctx
                .send_broadcast(MaodvMsg::Probe(msg), bytes, class::PROBE)
                .is_ok()
            {
                self.stats.probes_sent += 1;
            }
        }
        if let Some(interval) = self.prober.as_ref().and_then(|p| p.plan().interval()) {
            let f = 0.9 + 0.2 * ctx.rng().uniform();
            self.arm(ctx, interval.mul_f64(f), TimerPayload::Probe);
        }
    }

    fn send_cbr(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, idx: usize) {
        let spec = self.role.sources[idx];
        if ctx.now() >= spec.stop {
            return;
        }
        self.data_seq += 1;
        let pkt = DataPacket {
            group: spec.group,
            source: self.me,
            seq: self.data_seq,
            sent_at: ctx.now(),
            bytes: spec.bytes,
        };
        *self.stats.sent.entry(spec.group).or_insert(0) += 1;
        let _ = ctx.send_broadcast(MaodvMsg::Data(pkt), spec.bytes, class::DATA);
        self.arm(ctx, spec.interval, TimerPayload::Cbr(idx));
    }

    fn send_refresh(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, idx: usize) {
        let spec = self.role.sources[idx];
        if ctx.now() >= spec.stop {
            return;
        }
        if self.cfg.degraded.enabled {
            // A previous round with no graft back to us doubles the refresh
            // interval (bounded); any election resets the cadence.
            if let Some(prev) = self.last_round[idx] {
                if self.elected_rounds.remove(&prev) {
                    self.backoff_exp[idx] = 0;
                } else {
                    self.backoff_exp[idx] =
                        (self.backoff_exp[idx] + 1).min(self.cfg.degraded.max_backoff_exp);
                    self.stats.refresh_backoffs += 1;
                    ctx.trace_decision(Decision::RefreshBackoff {
                        factor: 1u32 << self.backoff_exp[idx],
                    });
                }
            }
        }
        self.refresh_seq += 1;
        let identity = self.metric.as_ref().map_or(0.0, |m| m.identity().value());
        let rq = RouteRequest {
            group: spec.group,
            source: self.me,
            seq: self.refresh_seq,
            prev_hop: self.me,
            hop_count: 0,
            cost: identity,
        };
        if ctx
            .send_broadcast(
                MaodvMsg::RouteRequest(rq),
                RouteRequest::BYTES,
                class::CONTROL,
            )
            .is_ok()
        {
            self.stats.queries_sent += 1;
        }
        self.last_round[idx] = Some(self.refresh_seq);
        let exp = self.backoff_exp[idx];
        let interval = if exp == 0 {
            self.cfg.refresh_interval
        } else {
            SimDuration::from_nanos(self.cfg.refresh_interval.as_nanos() << exp)
        };
        let token = self.arm(ctx, interval, TimerPayload::Refresh(idx));
        self.refresh_token[idx] = Some(token);
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, from: NodeId, rq: &RouteRequest) {
        if rq.source == self.me || rq.hop_count >= self.cfg.max_hops {
            return;
        }
        let now = ctx.now();
        let key = (rq.source, rq.seq);
        let is_member = self.role.is_member(rq.group, now);

        let (new_cost, better) = match self.metric.clone() {
            None => {
                // First-arrival baseline.
                if self.requests.contains_key(&key) {
                    return;
                }
                (PathCost::new(rq.hop_count as f64 + 1.0), false)
            }
            Some(metric) => {
                let (obs, fresh) = self.table.classified_observe(from, now);
                let substitute = self.cfg.degraded.enabled && fresh == Some(Freshness::Quarantined);
                let obs = if substitute {
                    self.stats.quarantine_substitutions += 1;
                    LinkObservation::unknown(self.table.config())
                } else {
                    obs
                };
                if self.cfg.degraded.enabled {
                    let fallback = !self.table.has_usable_estimate(now);
                    if fallback && !self.fallback_active {
                        self.stats.fallback_activations += 1;
                        ctx.trace_decision(Decision::FallbackActivated);
                    }
                    self.fallback_active = fallback;
                }
                let link = metric.link_cost(&obs);
                let cost = metric.accumulate(PathCost::new(rq.cost), link);
                let better = self
                    .requests
                    .get(&key)
                    .is_some_and(|st| metric.better(cost, st.best_cost));
                (cost, better)
            }
        };

        match self.requests.get_mut(&key) {
            None => {
                self.requests.insert(
                    key,
                    RequestState {
                        group: rq.group,
                        best_cost: new_cost,
                        upstream: from,
                        hop_count: rq.hop_count + 1,
                        alpha_deadline: now + self.cfg.alpha,
                        best_forwarded: None,
                        forward_pending: true,
                    },
                );
                let j = self.jitter(ctx);
                self.arm(ctx, j, TimerPayload::ForwardRequest(rq.source, rq.seq));
                if is_member && self.delta_scheduled.insert(key) {
                    let delay = if self.metric.is_some() {
                        self.cfg.delta
                    } else {
                        self.jitter(ctx)
                    };
                    self.arm(ctx, delay, TimerPayload::Delta(rq.source, rq.seq));
                }
            }
            Some(st) if better => {
                st.best_cost = new_cost;
                st.upstream = from;
                st.hop_count = rq.hop_count + 1;
                let improves = st
                    .best_forwarded
                    .is_none_or(|f| match self.metric.as_ref() {
                        Some(m) => m.better(new_cost, f),
                        None => false,
                    });
                if now <= st.alpha_deadline && improves && !st.forward_pending {
                    st.forward_pending = true;
                    let j = self.jitter(ctx);
                    self.arm(ctx, j, TimerPayload::ForwardRequest(rq.source, rq.seq));
                }
            }
            Some(_) => {}
        }
    }

    fn forward_request(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, source: NodeId, seq: u32) {
        let Some(st) = self.requests.get_mut(&(source, seq)) else {
            return;
        };
        st.forward_pending = false;
        if st.hop_count >= self.cfg.max_hops {
            return;
        }
        if let (Some(metric), Some(fwd)) = (self.metric.as_ref(), st.best_forwarded) {
            if !metric.better(st.best_cost, fwd) {
                return;
            }
        } else if self.metric.is_none() && st.best_forwarded.is_some() {
            return;
        }
        st.best_forwarded = Some(st.best_cost);
        let rq = RouteRequest {
            group: st.group,
            source,
            seq,
            prev_hop: self.me,
            hop_count: st.hop_count,
            cost: st.best_cost.value(),
        };
        if ctx
            .send_broadcast(
                MaodvMsg::RouteRequest(rq),
                RouteRequest::BYTES,
                class::CONTROL,
            )
            .is_ok()
        {
            self.stats.queries_forwarded += 1;
        }
    }

    /// Send (or re-send) a graft unicast to our upstream for its round.
    fn send_graft(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, graft: Graft, attempt: u32) {
        let Some(st) = self.requests.get(&(graft.source, graft.seq)) else {
            return;
        };
        let upstream = st.upstream;
        match ctx.send_unicast(
            upstream,
            MaodvMsg::Graft(graft),
            Graft::BYTES,
            class::CONTROL,
        ) {
            Ok(handle) => {
                self.pending_grafts.insert(handle, (graft, attempt));
                self.stats.replies_sent += 1;
                *self
                    .stats
                    .tree_edges
                    .entry((upstream, self.me))
                    .or_insert(0) += 1;
            }
            Err(_) => {
                // Queue full: try again shortly.
                if attempt < GRAFT_RETRIES {
                    self.arm(
                        ctx,
                        SimDuration::from_millis(20),
                        TimerPayload::GraftRetry(graft, attempt + 1),
                    );
                }
            }
        }
    }

    /// δ expired at a member: graft toward the best upstream of the round.
    fn begin_graft(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, source: NodeId, seq: u32) {
        if source == self.me || !self.grafted.insert((source, seq)) {
            return;
        }
        let Some(st) = self.requests.get(&(source, seq)) else {
            return;
        };
        let graft = Graft {
            group: st.group,
            source,
            seq,
            origin: self.me,
        };
        self.send_graft(ctx, graft, 0);
    }

    fn handle_graft(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, from: NodeId, g: &Graft) {
        let now = ctx.now();
        // The grafting neighbor becomes our child on this source's tree.
        let tree = self.trees.entry((g.group, g.source)).or_default();
        let expiry = now + self.cfg.tree_timeout;
        let slot = tree.children.entry(from).or_insert(expiry);
        *slot = (*slot).max(expiry);
        self.stats.fg_refreshes += 1;
        ctx.trace_decision(Decision::TreeJoin {
            group: g.group.0,
            child: from,
        });

        if g.source == self.me {
            // The branch reached the root: this round elected tree state,
            // so the refresh backoff resets.
            self.elected_rounds.insert(g.seq);
            return;
        }
        // Extend the branch toward the source once per round.
        if self.grafted.insert((g.source, g.seq)) {
            let graft = Graft {
                origin: self.me,
                ..*g
            };
            self.send_graft(ctx, graft, 0);
        }
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, from: NodeId, d: &DataPacket) {
        if d.source == self.me {
            return;
        }
        let key = (d.source, d.seq);
        if self.data_seen.contains(&key) {
            self.stats.duplicate_data += 1;
            ctx.trace_decision(Decision::SuppressDuplicate {
                group: d.group.0,
                source: d.source,
                pkt_seq: d.seq,
            });
            return;
        }
        self.data_seen.insert(key);
        self.data_seen_order.push_back(key);
        if self.data_seen_order.len() > DATA_CACHE_CAP {
            if let Some(old) = self.data_seen_order.pop_front() {
                self.data_seen.remove(&old);
            }
        }
        *self.stats.data_edges.entry((from, self.me)).or_insert(0) += 1;

        let now = ctx.now();
        if self.role.is_member(d.group, now) {
            let rec = self.stats.delivered.entry((d.group, d.source)).or_default();
            rec.count += 1;
            rec.delay_sum_s += now.saturating_since(d.sent_at).as_secs_f64();
            ctx.observe_delivery(now.saturating_since(d.sent_at));
        }
        if self.is_tree_forwarder(d.group, d.source, now)
            && ctx
                .send_broadcast(MaodvMsg::Data(d.clone()), d.bytes, class::DATA)
                .is_ok()
        {
            self.stats.data_forwards += 1;
            ctx.trace_decision(Decision::ForwardData {
                group: d.group.0,
                source: d.source,
                pkt_seq: d.seq,
            });
        }
    }
}

impl SnapshotState for MaodvNode {
    fn snapshot_state(&self, w: &mut SnapWriter) {
        // `cfg`, `role`, and `metric` are configuration: the restoring side
        // rebuilds them from the scenario (fingerprint-checked at the
        // header). Everything below is mutable run state — including `me`,
        // because `start()` never re-runs on a restored simulator.
        self.me.snap(w);
        self.timers.snap(w);
        w.put_u64(self.timer_token);
        self.requests.snap(w);
        self.trees.snap(w);
        self.grafted.snap(w);
        self.delta_scheduled.snap(w);
        self.pending_grafts.snap(w);
        self.data_seen.snap(w);
        self.data_seen_order.snap(w);
        w.put_u32(self.data_seq);
        w.put_u32(self.refresh_seq);
        self.backoff_exp.snap(w);
        self.last_round.snap(w);
        self.refresh_token.snap(w);
        self.elected_rounds.snap(w);
        w.put_bool(self.fallback_active);
        self.stats.snap(w);
        w.put_bool(self.prober.is_some());
        if let Some(p) = &self.prober {
            p.snapshot_state(w);
        }
        self.table.snapshot_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.me = Snap::unsnap(r)?;
        self.timers = Snap::unsnap(r)?;
        self.timer_token = r.u64()?;
        self.requests = Snap::unsnap(r)?;
        self.trees = Snap::unsnap(r)?;
        self.grafted = Snap::unsnap(r)?;
        self.delta_scheduled = Snap::unsnap(r)?;
        self.pending_grafts = Snap::unsnap(r)?;
        self.data_seen = Snap::unsnap(r)?;
        self.data_seen_order = Snap::unsnap(r)?;
        self.data_seq = r.u32()?;
        self.refresh_seq = r.u32()?;
        let backoff_exp: Vec<u32> = Snap::unsnap(r)?;
        if backoff_exp.len() != self.role.sources.len() {
            return Err(SnapError::StateMismatch("MAODV source count"));
        }
        self.backoff_exp = backoff_exp;
        self.last_round = Snap::unsnap(r)?;
        self.refresh_token = Snap::unsnap(r)?;
        if self.last_round.len() != self.backoff_exp.len()
            || self.refresh_token.len() != self.backoff_exp.len()
        {
            return Err(SnapError::StateMismatch("MAODV per-source state length"));
        }
        self.elected_rounds = Snap::unsnap(r)?;
        self.fallback_active = r.bool()?;
        self.stats = Snap::unsnap(r)?;
        let has_prober = r.bool()?;
        if has_prober != self.prober.is_some() {
            return Err(SnapError::StateMismatch("MAODV prober presence"));
        }
        if let Some(p) = &mut self.prober {
            p.restore_state(r)?;
        }
        self.table.restore_state(r)
    }
}

impl MulticastApp for MaodvNode {
    fn node_stats(&self) -> &NodeStats {
        &self.stats
    }
    fn variant(&self) -> Variant {
        self.cfg.variant
    }
}

impl Protocol for MaodvNode {
    type Msg = MaodvMsg;

    fn start(&mut self, ctx: &mut Ctx<'_, MaodvMsg>) {
        self.me = ctx.node();
        if let Some(interval) = self.prober.as_ref().and_then(|p| p.plan().interval()) {
            let phase = interval.mul_f64(ctx.rng().uniform());
            self.arm(ctx, phase, TimerPayload::Probe);
        }
        for i in 0..self.role.sources.len() {
            let spec = self.role.sources[i];
            let start = spec.start.saturating_since(SimTime::ZERO);
            let token = self.arm(ctx, start, TimerPayload::Refresh(i));
            self.refresh_token[i] = Some(token);
            self.arm(ctx, start, TimerPayload::Cbr(i));
        }
    }

    fn handle_message(
        &mut self,
        ctx: &mut Ctx<'_, MaodvMsg>,
        src: NodeId,
        msg: &MaodvMsg,
        _meta: RxMeta,
    ) {
        match msg {
            MaodvMsg::Probe(p) => {
                let now = ctx.now();
                self.table.handle_probe(src, p, self.me, now);
            }
            MaodvMsg::RouteRequest(rq) => self.handle_request(ctx, src, rq),
            MaodvMsg::Graft(g) => self.handle_graft(ctx, src, g),
            MaodvMsg::Data(d) => self.handle_data(ctx, src, d),
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx<'_, MaodvMsg>, _timer: TimerId, kind: u64) {
        let Some(payload) = self.timers.remove(&kind) else {
            return;
        };
        match payload {
            TimerPayload::Probe => self.send_probe_round(ctx),
            TimerPayload::Cbr(i) => self.send_cbr(ctx, i),
            TimerPayload::Refresh(i) => self.send_refresh(ctx, i),
            TimerPayload::Delta(source, seq) => self.begin_graft(ctx, source, seq),
            TimerPayload::ForwardRequest(source, seq) => self.forward_request(ctx, source, seq),
            TimerPayload::GraftRetry(graft, attempt) => self.send_graft(ctx, graft, attempt),
        }
    }

    fn handle_tx_complete(
        &mut self,
        ctx: &mut Ctx<'_, MaodvMsg>,
        handle: TxHandle,
        outcome: TxOutcome,
    ) {
        if let Some((graft, attempt)) = self.pending_grafts.remove(&handle) {
            if !outcome.is_sent() && attempt < GRAFT_RETRIES {
                // The MAC exhausted its retries; try the graft again after a
                // short pause (the upstream may be temporarily drowned out).
                self.arm(
                    ctx,
                    SimDuration::from_millis(50),
                    TimerPayload::GraftRetry(graft, attempt + 1),
                );
            }
        }
    }

    fn handle_restart(&mut self, ctx: &mut Ctx<'_, MaodvMsg>) {
        // Mirror of ODMRP's reboot semantics: all soft state — request
        // cache, trees, grafts, duplicate cache, link estimates and the
        // degraded-mode quarantine/backoff state — is lost with the crash;
        // sequence counters and stats survive.
        self.timers.clear();
        self.requests.clear();
        self.trees.clear();
        self.grafted.clear();
        self.delta_scheduled.clear();
        self.pending_grafts.clear();
        self.data_seen.clear();
        self.data_seen_order.clear();
        self.table = NeighborTable::new(self.cfg.estimator.clone());
        self.backoff_exp.iter_mut().for_each(|e| *e = 0);
        self.last_round.iter_mut().for_each(|r| *r = None);
        self.refresh_token.iter_mut().for_each(|t| *t = None);
        self.elected_rounds.clear();
        self.fallback_active = false;
        self.stats.restarts += 1;

        if let Some(interval) = self.prober.as_ref().and_then(|p| p.plan().interval()) {
            let phase = interval.mul_f64(ctx.rng().uniform());
            self.arm(ctx, phase, TimerPayload::Probe);
        }
        let now = ctx.now();
        for i in 0..self.role.sources.len() {
            let spec = self.role.sources[i];
            if now >= spec.stop {
                continue;
            }
            let delay = spec.start.saturating_since(now);
            let token = self.arm(ctx, delay, TimerPayload::Refresh(i));
            self.refresh_token[i] = Some(token);
            self.arm(ctx, delay, TimerPayload::Cbr(i));
        }
    }
}
