//! Tree-multicast wire messages.

use mcast_metrics::probe::ProbeMsg;
use mesh_sim::ids::{GroupId, NodeId};
use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use odmrp::messages::DataPacket;

/// A route request flooded by a multicast source, accumulating the path
/// cost exactly like ODMRP's `JOIN QUERY`.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRequest {
    /// The multicast group being refreshed.
    pub group: GroupId,
    /// Source (tree root).
    pub source: NodeId,
    /// Refresh round.
    pub seq: u32,
    /// The node that rebroadcast this copy.
    pub prev_hop: NodeId,
    /// Hops traveled so far.
    pub hop_count: u8,
    /// Accumulated path cost from the source.
    pub cost: f64,
}

impl RouteRequest {
    /// On-air payload size in bytes.
    pub const BYTES: u32 = 52;
}

impl Snap for RouteRequest {
    fn snap(&self, w: &mut SnapWriter) {
        self.group.snap(w);
        self.source.snap(w);
        w.put_u32(self.seq);
        self.prev_hop.snap(w);
        w.put_u8(self.hop_count);
        w.put_f64(self.cost);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RouteRequest {
            group: Snap::unsnap(r)?,
            source: Snap::unsnap(r)?,
            seq: r.u32()?,
            prev_hop: Snap::unsnap(r)?,
            hop_count: r.u8()?,
            cost: r.f64()?,
        })
    }
}

/// A graft (MAODV's `MACT`-style activation), **unicast** hop by hop from a
/// member toward the source. Each hop adds the sender as a tree child and
/// forwards the graft to its own upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Graft {
    /// The multicast group.
    pub group: GroupId,
    /// The tree root the branch attaches to.
    pub source: NodeId,
    /// Refresh round the graft answers.
    pub seq: u32,
    /// The member that initiated the branch (for tracing).
    pub origin: NodeId,
}

impl Graft {
    /// On-air payload size in bytes.
    pub const BYTES: u32 = 36;
}

impl Snap for Graft {
    fn snap(&self, w: &mut SnapWriter) {
        self.group.snap(w);
        self.source.snap(w);
        w.put_u32(self.seq);
        self.origin.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Graft {
            group: Snap::unsnap(r)?,
            source: Snap::unsnap(r)?,
            seq: r.u32()?,
            origin: Snap::unsnap(r)?,
        })
    }
}

/// Everything a tree-multicast node puts on the air.
#[derive(Debug, Clone, PartialEq)]
pub enum MaodvMsg {
    /// Tree-refresh flood.
    RouteRequest(RouteRequest),
    /// Branch activation (unicast).
    Graft(Graft),
    /// Multicast payload (broadcast, forwarded by tree nodes).
    Data(DataPacket),
    /// Link-quality probe.
    Probe(ProbeMsg),
}

impl Snap for MaodvMsg {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            MaodvMsg::RouteRequest(rq) => {
                w.put_u8(0);
                rq.snap(w);
            }
            MaodvMsg::Graft(g) => {
                w.put_u8(1);
                g.snap(w);
            }
            MaodvMsg::Data(d) => {
                w.put_u8(2);
                d.snap(w);
            }
            MaodvMsg::Probe(p) => {
                w.put_u8(3);
                p.snap(w);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => MaodvMsg::RouteRequest(Snap::unsnap(r)?),
            1 => MaodvMsg::Graft(Snap::unsnap(r)?),
            2 => MaodvMsg::Data(Snap::unsnap(r)?),
            3 => MaodvMsg::Probe(Snap::unsnap(r)?),
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_positive() {
        const { assert!(RouteRequest::BYTES > 0) };
        const { assert!(Graft::BYTES > 0) };
    }

    #[test]
    fn graft_is_copy() {
        let g = Graft {
            group: GroupId(0),
            source: NodeId::new(1),
            seq: 2,
            origin: NodeId::new(3),
        };
        let h = g;
        assert_eq!(g, h);
    }
}
