//! Tree-multicast configuration.

use mcast_metrics::EstimatorConfig;
use mesh_sim::time::SimDuration;
use odmrp::Variant;

/// Per-node protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MaodvConfig {
    /// Route-selection policy (shared with ODMRP: original = first arrival,
    /// metric = cost-accumulating with δ/α).
    pub variant: Variant,
    /// Probe-interval scaling.
    pub probe_rate: f64,
    /// Member wait before grafting (δ).
    pub delta: SimDuration,
    /// Duplicate-forwarding window (α).
    pub alpha: SimDuration,
    /// Source refresh period for route-request floods.
    pub refresh_interval: SimDuration,
    /// Tree-branch lifetime without a refreshing graft.
    pub tree_timeout: SimDuration,
    /// Network-layer jitter before rebroadcasting control packets.
    pub control_jitter: SimDuration,
    /// Maximum hops a request may travel.
    pub max_hops: u8,
    /// Link estimation tuning.
    pub estimator: EstimatorConfig,
    /// Degraded-mode resilience (shared semantics with ODMRP).
    pub degraded: odmrp::DegradedModeConfig,
}

impl Default for MaodvConfig {
    fn default() -> Self {
        MaodvConfig {
            variant: Variant::Original,
            probe_rate: 1.0,
            delta: SimDuration::from_millis(30),
            alpha: SimDuration::from_millis(20),
            refresh_interval: SimDuration::from_secs(3),
            tree_timeout: SimDuration::from_secs(9),
            control_jitter: SimDuration::from_millis(4),
            max_hops: 32,
            estimator: EstimatorConfig::default(),
            degraded: odmrp::DegradedModeConfig::default(),
        }
    }
}

impl MaodvConfig {
    /// Configuration for a metric-enhanced variant at the default probe rate.
    pub fn with_metric(kind: mcast_metrics::MetricKind) -> Self {
        MaodvConfig {
            variant: Variant::Metric(kind),
            ..MaodvConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_odmrp_parameters() {
        let m = MaodvConfig::default();
        let o = odmrp::OdmrpConfig::default();
        assert_eq!(m.delta, o.delta);
        assert_eq!(m.alpha, o.alpha);
        assert_eq!(m.refresh_interval, o.refresh_interval);
        assert_eq!(m.tree_timeout, o.fg_timeout);
    }

    #[test]
    fn with_metric_sets_variant() {
        let c = MaodvConfig::with_metric(mcast_metrics::MetricKind::Spp);
        assert_eq!(
            c.variant.metric_kind(),
            Some(mcast_metrics::MetricKind::Spp)
        );
    }
}
