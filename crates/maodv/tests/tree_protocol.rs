//! End-to-end tests of the tree-multicast protocol.

use maodv::{MaodvConfig, MaodvNode};
use mcast_metrics::MetricKind;
use mesh_sim::prelude::*;
use odmrp::{MulticastApp, NodeRole, Variant};

const GROUP: GroupId = GroupId(0);

fn chain_sim(variant: Variant, n: usize, seconds: u64, seed: u64) -> Simulator<MaodvNode> {
    let mut medium = LinkTableMedium::new();
    for i in 0..n - 1 {
        medium.add_link(NodeId::new(i as u32), NodeId::new(i as u32 + 1), 0.0);
    }
    let cfg = MaodvConfig {
        variant,
        ..MaodvConfig::default()
    };
    let mut roles = vec![NodeRole::forwarder(); n];
    roles[0] = NodeRole::source(GROUP, SimTime::from_secs(20), SimTime::from_secs(seconds));
    roles[n - 1] = NodeRole::member(GROUP);
    let nodes: Vec<MaodvNode> = roles
        .into_iter()
        .map(|r| MaodvNode::new(cfg.clone(), r))
        .collect();
    Simulator::new(
        mesh_sim::topology::chain(n, 50.0),
        Box::new(medium),
        WorldConfig {
            seed,
            ..WorldConfig::default()
        },
        nodes,
    )
}

#[test]
fn tree_multicast_delivers_over_chain() {
    for variant in [Variant::Original, Variant::Metric(MetricKind::Spp)] {
        let mut sim = chain_sim(variant, 4, 60, 1);
        sim.run_until(SimTime::from_secs(62));
        let sent = sim.protocols()[0].node_stats().total_sent();
        let got = sim.protocols()[3].node_stats().total_delivered();
        assert!(
            got as f64 > 0.95 * sent as f64,
            "{variant}: {got}/{sent} delivered"
        );
        // Intermediate nodes joined the tree via grafts.
        assert!(sim.protocols()[1].tree_count(SimTime::from_secs(55)) > 0);
        assert!(sim.protocols()[2].tree_count(SimTime::from_secs(55)) > 0);
        // Grafts are unicast: control exchanges used the RTS-less ACK path
        // (36B < RTS threshold), so control frames (ACKs) flowed.
        assert!(sim.counters().tx_ctrl_frames > 0, "{variant}: no ACKs seen");
    }
}

#[test]
fn tree_has_no_mesh_redundancy() {
    // On a clean diamond, ODMRP can end up with both relays forwarding
    // (per-group mesh); the tree protocol must activate only the chosen one.
    //
    // The structural property — each packet crosses one relay, not both —
    // must hold on *every* seed; which relay wins any given round is
    // seed-sensitive (probe losses on the 0.1 links can tie the two paths),
    // so the winner's identity is only asserted in aggregate across the
    // seed set instead of pinning one lucky seed. The tree timeout is
    // shortened to one refresh period: with the 9 s default, stale branches
    // from upstream flips survive two extra rounds (deliberate soft-state
    // slack), which would mask the per-round single-branch structure this
    // test is about.
    let diamond = |seed: u64| {
        let mut medium = LinkTableMedium::new();
        let n = |i: u32| NodeId::new(i);
        // Relay 1 is strictly better than relay 2 under ETX.
        medium.add_link(n(0), n(1), 0.0);
        medium.add_link(n(0), n(2), 0.1);
        medium.add_link(n(1), n(3), 0.0);
        medium.add_link(n(2), n(3), 0.1);
        medium.add_link(n(1), n(2), 1.0); // sense-only
        let cfg = MaodvConfig {
            tree_timeout: mesh_sim::time::SimDuration::from_secs(3),
            ..MaodvConfig::with_metric(MetricKind::Etx)
        };
        let roles = vec![
            NodeRole::source(GROUP, SimTime::from_secs(20), SimTime::from_secs(80)),
            NodeRole::forwarder(),
            NodeRole::forwarder(),
            NodeRole::member(GROUP),
        ];
        let nodes: Vec<MaodvNode> = roles
            .into_iter()
            .map(|r| MaodvNode::new(cfg.clone(), r))
            .collect();
        Simulator::new(
            vec![
                Pos::new(0.0, 0.0),
                Pos::new(50.0, 30.0),
                Pos::new(50.0, -30.0),
                Pos::new(100.0, 0.0),
            ],
            Box::new(medium),
            WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            nodes,
        )
    };

    let mut relay1_wins = 0usize;
    let seeds = [1u64, 2, 3, 4, 5];
    for &seed in &seeds {
        let mut sim = diamond(seed);
        // Let probe windows converge and early grafts expire, then measure
        // forwarding in the steady-state window only.
        sim.run_until(SimTime::from_secs(55));
        let warm1 = sim.protocols()[1].node_stats().data_forwards;
        let warm2 = sim.protocols()[2].node_stats().data_forwards;
        let warm_got = sim.protocols()[3].node_stats().total_delivered();
        sim.run_until(SimTime::from_secs(82));
        let fwd1 = sim.protocols()[1].node_stats().data_forwards - warm1;
        let fwd2 = sim.protocols()[2].node_stats().data_forwards - warm2;
        let delivered = sim.protocols()[3].node_stats().total_delivered() - warm_got;
        let total = fwd1 + fwd2;
        assert!(total > 0, "seed {seed}: nothing forwarded in steady state");
        assert!(
            delivered > 0,
            "seed {seed}: nothing delivered in steady state"
        );
        // The structural tree property, per packet rather than per relay:
        // a tree forwards each packet through exactly one relay (ratio ≈ 1)
        // even if re-grafts move the active relay around mid-window, while
        // ODMRP's mesh forwards through both (ratio ≈ 2). Brief overlap —
        // old children persisting one tree_timeout across a re-graft —
        // keeps the bound at 1.4 rather than 1.0.
        let redundancy = total as f64 / delivered as f64;
        assert!(
            redundancy < 1.4,
            "seed {seed}: mesh-like redundancy {redundancy:.2} \
             ({fwd1} + {fwd2} forwards for {delivered} deliveries)"
        );
        if fwd1 > fwd2 {
            relay1_wins += 1;
        }
        // The member still gets the vast majority. Not ~everything: rounds
        // where a probe-window tie sends the branch through relay 2 ride two
        // 0.1-loss broadcast hops with no redundant path to cover them —
        // the tree/mesh delivery trade-off the paper's §4.3 describes.
        let sent = sim.protocols()[0].node_stats().total_sent();
        let got = sim.protocols()[3].node_stats().total_delivered();
        assert!(got as f64 > 0.85 * sent as f64, "seed {seed}: {got}/{sent}");
    }
    // The metric preference shows up across seeds even though any single
    // seed may settle on the worse relay for a while.
    assert!(
        relay1_wins * 2 > seeds.len(),
        "the better relay should win most seeds: {relay1_wins}/{}",
        seeds.len()
    );
}

#[test]
fn metric_tree_routes_around_lossy_link() {
    // Same diamond as the ODMRP test: direct lossy vs clean detour.
    let run = |variant: Variant, seed: u64| {
        let mut medium = LinkTableMedium::new();
        let n = |i: u32| NodeId::new(i);
        medium.add_link(n(0), n(2), 0.65);
        medium.add_link(n(0), n(1), 0.02);
        medium.add_link(n(1), n(2), 0.02);
        let cfg = MaodvConfig {
            variant,
            tree_timeout: mesh_sim::time::SimDuration::from_secs(3),
            ..MaodvConfig::default()
        };
        let roles = vec![
            NodeRole::source(GROUP, SimTime::from_secs(40), SimTime::from_secs(160)),
            NodeRole::forwarder(),
            NodeRole::member(GROUP),
        ];
        let nodes: Vec<MaodvNode> = roles
            .into_iter()
            .map(|r| MaodvNode::new(cfg.clone(), r))
            .collect();
        let mut sim = Simulator::new(
            mesh_sim::topology::chain(3, 50.0),
            Box::new(medium),
            WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            nodes,
        );
        sim.run_until(SimTime::from_secs(162));
        let sent = sim.protocols()[0].node_stats().total_sent();
        let got = sim.protocols()[2].node_stats().total_delivered();
        got as f64 / sent as f64
    };
    let seeds = [1u64, 2, 3];
    let orig: f64 = seeds
        .iter()
        .map(|&s| run(Variant::Original, s))
        .sum::<f64>()
        / 3.0;
    let spp: f64 = seeds
        .iter()
        .map(|&s| run(Variant::Metric(MetricKind::Spp), s))
        .sum::<f64>()
        / 3.0;
    assert!(
        spp > orig + 0.05,
        "tree SPP ({spp:.3}) should beat tree original ({orig:.3})"
    );
}

#[test]
fn deterministic_runs() {
    let run = || {
        let mut sim = chain_sim(Variant::Metric(MetricKind::Pp), 5, 40, 9);
        sim.run_until(SimTime::from_secs(42));
        (
            sim.protocols()[4].node_stats().total_delivered(),
            sim.counters().clone(),
        )
    };
    assert_eq!(run(), run());
}
