//! Probe scheduling and probe messages.
//!
//! All metrics estimate link quality from **broadcast** probes (§2.2 of the
//! paper): ETX, METX and SPP send one small probe every 5 s; PP and ETT send
//! a packet *pair* — a small probe immediately followed by a large one —
//! every 10 s. Receivers never acknowledge probes; everything is measured in
//! the forward direction.

use mesh_sim::ids::NodeId;
use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use mesh_sim::time::SimDuration;

/// Default single-probe interval (ETX / METX / SPP).
pub const DEFAULT_SINGLE_INTERVAL: SimDuration = SimDuration::from_secs(5);
/// Default packet-pair interval (PP / ETT).
pub const DEFAULT_PAIR_INTERVAL: SimDuration = SimDuration::from_secs(10);
/// Size of a small probe in bytes (as in the Roofnet/LQSR measurements).
pub const SMALL_PROBE_BYTES: u32 = 137;
/// Size of the large packet of a pair in bytes.
pub const LARGE_PROBE_BYTES: u32 = 1137;

/// What kind of probing a metric requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbePlan {
    /// No probing (hop count / original ODMRP).
    None,
    /// A single small probe per interval.
    Single {
        /// Time between probes.
        interval: SimDuration,
        /// Probe size in bytes.
        bytes: u32,
    },
    /// A small+large packet pair per interval (PP, ETT).
    Pair {
        /// Time between pairs.
        interval: SimDuration,
        /// Small packet size in bytes.
        small_bytes: u32,
        /// Large packet size in bytes.
        large_bytes: u32,
    },
}

impl ProbePlan {
    /// The standard single-probe plan, with the interval divided by `rate`
    /// (`rate = 5.0` reproduces the paper's "high overhead" configuration,
    /// `rate = 0.1` its low-rate note).
    ///
    /// Never panics: a non-positive or NaN rate saturates to the slowest
    /// supported interval (effectively "probing off"), an infinite rate to
    /// the fastest. Decks still reject such rates at compile time with a
    /// line-anchored error; the saturation here is the in-core backstop.
    pub fn single_at_rate(rate: f64) -> ProbePlan {
        ProbePlan::Single {
            interval: scale_interval(DEFAULT_SINGLE_INTERVAL, rate),
            bytes: SMALL_PROBE_BYTES,
        }
    }

    /// The standard packet-pair plan at the given rate factor. Saturates on
    /// invalid rates exactly like [`ProbePlan::single_at_rate`].
    pub fn pair_at_rate(rate: f64) -> ProbePlan {
        ProbePlan::Pair {
            interval: scale_interval(DEFAULT_PAIR_INTERVAL, rate),
            small_bytes: SMALL_PROBE_BYTES,
            large_bytes: LARGE_PROBE_BYTES,
        }
    }

    /// The interval between probe rounds, if any probing happens.
    pub fn interval(&self) -> Option<SimDuration> {
        match *self {
            ProbePlan::None => None,
            ProbePlan::Single { interval, .. } | ProbePlan::Pair { interval, .. } => Some(interval),
        }
    }

    /// Bytes sent per probing round.
    pub fn bytes_per_round(&self) -> u32 {
        match *self {
            ProbePlan::None => 0,
            ProbePlan::Single { bytes, .. } => bytes,
            ProbePlan::Pair {
                small_bytes,
                large_bytes,
                ..
            } => small_bytes + large_bytes,
        }
    }
}

// Interval scale factor bounds: 1e9 turns the 5 s default into ~158 years of
// sim time ("probing off" for any practical run, still finite in u64 nanos);
// 1e-9 bottoms out at a few nanoseconds between probes.
const MIN_SCALE: f64 = 1.0e-9;
const MAX_SCALE: f64 = 1.0e9;

fn scale_interval(base: SimDuration, rate: f64) -> SimDuration {
    // Saturate instead of panicking: a rate of 0 (or NaN, or negative) used
    // to trip an assert that was reachable straight from a scenario deck's
    // `probe_rate` knob. Valid rates land inside the clamp window, so their
    // intervals are bit-identical to the unclamped computation.
    let scale = if rate > 0.0 {
        (1.0 / rate).clamp(MIN_SCALE, MAX_SCALE)
    } else {
        MAX_SCALE
    };
    base.mul_f64(scale)
}

/// A probe on the air.
///
/// `reverse_df` piggybacks the sender's own forward-delivery measurements of
/// its neighbors (as classic unicast ETX probes do); it is ignored by all of
/// the paper's multicast metrics and exists for the *bidirectional-ETX
/// ablation*, which demonstrates why reverse-path quality must not be used
/// for broadcast routing.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeMsg {
    /// A standalone small probe.
    Single {
        /// Sender's probe sequence number.
        seq: u64,
        /// Sender's probing interval in nanoseconds.
        interval_ns: u64,
        /// Sender's measured forward ratios `neighbor -> df` (see above).
        reverse_df: Vec<(NodeId, f32)>,
    },
    /// The small packet of a pair.
    PairSmall {
        /// Sender's pair sequence number.
        seq: u64,
        /// Sender's probing interval in nanoseconds.
        interval_ns: u64,
    },
    /// The large packet of a pair.
    PairLarge {
        /// Pair sequence number matching the preceding small packet.
        seq: u64,
        /// Size of this packet in bytes (receivers use it for the bandwidth
        /// estimate).
        bytes: u32,
    },
}

impl Snap for ProbeMsg {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            ProbeMsg::Single {
                seq,
                interval_ns,
                reverse_df,
            } => {
                w.put_u8(0);
                w.put_u64(*seq);
                w.put_u64(*interval_ns);
                reverse_df.snap(w);
            }
            ProbeMsg::PairSmall { seq, interval_ns } => {
                w.put_u8(1);
                w.put_u64(*seq);
                w.put_u64(*interval_ns);
            }
            ProbeMsg::PairLarge { seq, bytes } => {
                w.put_u8(2);
                w.put_u64(*seq);
                w.put_u32(*bytes);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => ProbeMsg::Single {
                seq: r.u64()?,
                interval_ns: r.u64()?,
                reverse_df: Snap::unsnap(r)?,
            },
            1 => ProbeMsg::PairSmall {
                seq: r.u64()?,
                interval_ns: r.u64()?,
            },
            2 => ProbeMsg::PairLarge {
                seq: r.u64()?,
                bytes: r.u32()?,
            },
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

/// Sender-side probe generator: owns the sequence counters.
#[derive(Debug, Clone)]
pub struct Prober {
    plan: ProbePlan,
    seq: u64,
}

impl Prober {
    /// Create a prober for the given plan.
    pub fn new(plan: ProbePlan) -> Self {
        Prober { plan, seq: 0 }
    }

    /// The plan this prober follows.
    pub fn plan(&self) -> ProbePlan {
        self.plan
    }

    /// Write the prober's mutable state (the sequence counter) into a
    /// checkpoint; the plan is configuration and is not serialized.
    pub fn snapshot_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.seq);
    }

    /// Restore the mutable state written by [`Prober::snapshot_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the checkpoint is truncated.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.seq = r.u64()?;
        Ok(())
    }

    /// Produce the messages for the next probing round, with their payload
    /// sizes in bytes. Empty for [`ProbePlan::None`].
    ///
    /// `reverse_df` is embedded into single probes (pass an empty vec unless
    /// running the bidirectional ablation).
    pub fn next_round(&mut self, reverse_df: Vec<(NodeId, f32)>) -> Vec<(ProbeMsg, u32)> {
        match self.plan {
            ProbePlan::None => Vec::new(),
            ProbePlan::Single { interval, bytes } => {
                let seq = self.seq;
                self.seq += 1;
                // Each piggybacked entry costs 6 bytes (4B id + 2B ratio).
                let total = bytes + 6 * reverse_df.len() as u32;
                vec![(
                    ProbeMsg::Single {
                        seq,
                        interval_ns: interval.as_nanos(),
                        reverse_df,
                    },
                    total,
                )]
            }
            ProbePlan::Pair {
                interval,
                small_bytes,
                large_bytes,
            } => {
                let seq = self.seq;
                self.seq += 1;
                vec![
                    (
                        ProbeMsg::PairSmall {
                            seq,
                            interval_ns: interval.as_nanos(),
                        },
                        small_bytes,
                    ),
                    (
                        ProbeMsg::PairLarge {
                            seq,
                            bytes: large_bytes,
                        },
                        large_bytes,
                    ),
                ]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plans_match_paper() {
        let s = ProbePlan::single_at_rate(1.0);
        assert_eq!(
            s,
            ProbePlan::Single {
                interval: SimDuration::from_secs(5),
                bytes: 137
            }
        );
        let p = ProbePlan::pair_at_rate(1.0);
        assert_eq!(p.interval(), Some(SimDuration::from_secs(10)));
        assert_eq!(p.bytes_per_round(), 137 + 1137);
    }

    #[test]
    fn rate_factor_scales_interval() {
        let fast = ProbePlan::single_at_rate(5.0);
        assert_eq!(fast.interval(), Some(SimDuration::from_secs(1)));
        let slow = ProbePlan::single_at_rate(0.1);
        assert_eq!(slow.interval(), Some(SimDuration::from_secs(50)));
    }

    #[test]
    fn degenerate_rates_saturate_instead_of_panicking() {
        // Rates a buggy config could produce: zero, negative, NaN. All mean
        // "effectively never probe", not "abort the simulation".
        for rate in [0.0, -3.0, f64::NAN] {
            let plan = ProbePlan::single_at_rate(rate);
            let interval = plan.interval().expect("still a Single plan");
            assert_eq!(
                interval,
                DEFAULT_SINGLE_INTERVAL.mul_f64(1.0e9),
                "rate={rate}"
            );
        }
        // An infinite rate pins to the fastest supported interval.
        let fast = ProbePlan::pair_at_rate(f64::INFINITY);
        assert_eq!(fast.interval(), Some(DEFAULT_PAIR_INTERVAL.mul_f64(1.0e-9)));
    }

    #[test]
    fn valid_rates_are_unaffected_by_the_saturation_clamp() {
        // The clamp window spans [1e-9, 1e9]; every realistic rate's scale
        // factor sits strictly inside, so intervals match the unclamped
        // arithmetic exactly.
        for rate in [0.1, 1.0, 5.0, 1000.0] {
            let plan = ProbePlan::single_at_rate(rate);
            assert_eq!(
                plan.interval(),
                Some(DEFAULT_SINGLE_INTERVAL.mul_f64(1.0 / rate)),
                "rate={rate}"
            );
        }
    }

    #[test]
    fn prober_sequences_increase() {
        let mut p = Prober::new(ProbePlan::single_at_rate(1.0));
        let r1 = p.next_round(Vec::new());
        let r2 = p.next_round(Vec::new());
        match (&r1[0].0, &r2[0].0) {
            (ProbeMsg::Single { seq: a, .. }, ProbeMsg::Single { seq: b, .. }) => {
                assert_eq!(*b, a + 1)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pair_round_has_small_then_large_same_seq() {
        let mut p = Prober::new(ProbePlan::pair_at_rate(1.0));
        let round = p.next_round(Vec::new());
        assert_eq!(round.len(), 2);
        match (&round[0].0, &round[1].0) {
            (ProbeMsg::PairSmall { seq: a, .. }, ProbeMsg::PairLarge { seq: b, bytes }) => {
                assert_eq!(a, b);
                assert_eq!(*bytes, LARGE_PROBE_BYTES);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(round[0].1, SMALL_PROBE_BYTES);
    }

    #[test]
    fn none_plan_produces_nothing() {
        let mut p = Prober::new(ProbePlan::None);
        assert!(p.next_round(Vec::new()).is_empty());
        assert_eq!(ProbePlan::None.interval(), None);
        assert_eq!(ProbePlan::None.bytes_per_round(), 0);
    }

    #[test]
    fn piggybacked_entries_increase_size() {
        let mut p = Prober::new(ProbePlan::single_at_rate(1.0));
        let round = p.next_round(vec![(NodeId::new(1), 0.5), (NodeId::new(2), 0.9)]);
        assert_eq!(round[0].1, SMALL_PROBE_BYTES + 12);
    }
}
