//! SPP — Success Probability Product (§2.2, adapted from the
//! energy-efficiency metric of Banerjee & Misra).
//!
//! `SPP(path) = Π df_i`: the probability that a packet sent once by the
//! source traverses the whole path under link-layer broadcast. `1/SPP` is
//! the expected number of *source* transmissions for one delivery. Unlike
//! every other metric here, **higher is better**, and a single lossy link
//! collapses the value of the whole path multiplicatively — which is exactly
//! why the paper finds it (with PP) the most effective.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::{AnyMetric, Metric, MetricKind};

/// Registry entry for SPP.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "SPP",
    kind: MetricKind::Spp,
    aliases: &[],
    paper: true,
    comparison: true,
    summary: "success probability product (df product, higher wins)",
    build: |rate| AnyMetric::Spp(Spp::with_rate(rate)),
};

/// The success-probability-product metric.
///
/// ```
/// use mcast_metrics::{Spp, Metric, LinkObservation};
/// let m = Spp::default();
/// let df = |d| LinkObservation {
///     df: d, delay_s: None, bandwidth_bps: None, reverse_df: None,
///     congestion: None,
/// };
/// let p = m.path_cost([m.link_cost(&df(0.8)), m.link_cost(&df(0.5))]);
/// assert!((p.value() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spp {
    rate: f64,
}

impl Default for Spp {
    fn default() -> Self {
        Spp::with_rate(1.0)
    }
}

impl Spp {
    /// SPP with probe intervals divided by `rate`. Non-positive or
    /// non-finite rates saturate the probe interval instead of panicking
    /// (see [`ProbePlan::single_at_rate`]).
    pub fn with_rate(rate: f64) -> Self {
        Spp { rate }
    }
}

impl Metric for Spp {
    fn kind(&self) -> MetricKind {
        MetricKind::Spp
    }

    fn probe_plan(&self) -> ProbePlan {
        ProbePlan::single_at_rate(self.rate)
    }

    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        LinkCost::new(obs.df.clamp(1e-6, 1.0))
    }

    fn identity(&self) -> PathCost {
        PathCost::new(1.0)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new(path.value() * link.value())
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        a.value() > b.value()
    }

    fn worst(&self) -> PathCost {
        PathCost::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(df: f64) -> LinkObservation {
        LinkObservation {
            df,
            delay_s: None,
            bandwidth_bps: None,
            reverse_df: None,
            congestion: None,
        }
    }

    #[test]
    fn higher_is_better() {
        let m = Spp::default();
        assert!(m.better(PathCost::new(0.9), PathCost::new(0.5)));
        assert!(!m.better(PathCost::new(0.5), PathCost::new(0.9)));
    }

    #[test]
    fn empty_path_has_probability_one() {
        let m = Spp::default();
        assert_eq!(m.identity().value(), 1.0);
    }

    #[test]
    fn figure3_example_prefers_long_reliable_path() {
        // Paper Fig. 3: SPP picks A-B-C-D (0.512) over A-E-D (0.36).
        let m = Spp::default();
        let long = m.path_cost([0.8, 0.8, 0.8].map(|d| m.link_cost(&obs(d))));
        let short = m.path_cost([0.9, 0.4].map(|d| m.link_cost(&obs(d))));
        assert!((long.value() - 0.512).abs() < 1e-9);
        assert!((short.value() - 0.36).abs() < 1e-9);
        assert!(m.better(long, short));
    }

    #[test]
    fn one_lossy_link_collapses_the_path() {
        let m = Spp::default();
        let with_bad = m.path_cost([0.95, 0.95, 0.05].map(|d| m.link_cost(&obs(d))));
        let all_mediocre = m.path_cost([0.6, 0.6, 0.6].map(|d| m.link_cost(&obs(d))));
        assert!(m.better(all_mediocre, with_bad));
    }

    #[test]
    fn inverse_is_expected_source_transmissions() {
        // Fig. 1: path A-C-D with df 1.0 and 0.333 → 1/SPP ≈ 3.
        let m = Spp::default();
        let p = m.path_cost([1.0, 1.0 / 3.0].map(|d| m.link_cost(&obs(d))));
        assert!((1.0 / p.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn worst_loses_to_anything() {
        let m = Spp::default();
        let p = m.path_cost([m.link_cost(&obs(0.01))]);
        assert!(m.better(p, m.worst()));
    }

    #[test]
    fn df_clamped_to_unit_interval() {
        let m = Spp::default();
        assert!(m.link_cost(&obs(2.0)).value() <= 1.0);
        assert!(m.link_cost(&obs(-1.0)).value() > 0.0);
    }
}
