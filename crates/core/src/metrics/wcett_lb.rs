//! WCETT-LB — load-balanced WCETT as a routing metric.
//!
//! The mamure line of work extends WCETT with a *load* term so congested
//! forwarders shed traffic: each hop's ETT is inflated by the forwarder's
//! observed congestion, and paths only switch when the challenger undercuts
//! the incumbent by a hysteresis margin,
//!
//! ```text
//! cost(link) = ETT(link) · (1 + σ · congestion)        σ: load weight
//! switch a ← b  iff  cost(a) < cost(b) · (1 − δ)       δ: switching threshold
//! ```
//!
//! `congestion ∈ [0, 1]` arrives through
//! [`LinkObservation::congestion`](crate::LinkObservation): the ODMRP node
//! handling a `JOIN QUERY` is the prospective forwarder, so it charges its
//! *own* outbound MAC-queue occupancy (plus any unicast retry signal its MAC
//! reports) into the path cost. Observations without a congestion reading
//! (`None`) cost exactly like plain ETT, which keeps every congestion-blind
//! metric bit-identical.
//!
//! On the paper's single-channel substrate the per-channel bottleneck term
//! degenerates (§2.2), so the routing form accumulates additively like ETT;
//! the full multi-channel combination lives in
//! [`Wcett::loaded_path_cost`](super::Wcett::loaded_path_cost), which this
//! module's σ/δ semantics mirror.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::wcett::Wcett;
use super::{AnyMetric, Metric, MetricKind};

/// Default load weight σ (half the raw ETT at full congestion).
pub const DEFAULT_SIGMA: f64 = 0.5;
/// Default path-switching hysteresis δ (a challenger must be 10 % cheaper).
pub const DEFAULT_DELTA: f64 = 0.1;

/// Registry entry for WCETT-LB.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "WCETT-LB",
    kind: MetricKind::WcettLb,
    aliases: &["WCETT_LB", "WCETTLB"],
    paper: false,
    comparison: true,
    summary: "load-aware ETT (queue/retry congestion term, sigma/delta switching)",
    build: |rate| AnyMetric::WcettLb(WcettLb::with_rate(rate)),
};

/// The load-aware WCETT routing metric.
///
/// ```
/// use mcast_metrics::{WcettLb, Metric, LinkObservation};
/// let m = WcettLb::default();
/// let calm = LinkObservation {
///     df: 1.0, delay_s: None, bandwidth_bps: Some(2.0e6), reverse_df: None,
///     congestion: Some(0.0),
/// };
/// let busy = LinkObservation { congestion: Some(1.0), ..calm };
/// // Full congestion inflates the link cost by (1 + sigma) = 1.5x.
/// assert!((m.link_cost(&busy).value() / m.link_cost(&calm).value() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WcettLb {
    rate: f64,
    sigma: f64,
    delta: f64,
    data_bytes: u32,
    default_bandwidth_bps: f64,
}

impl Default for WcettLb {
    fn default() -> Self {
        WcettLb::with_rate(1.0)
    }
}

impl WcettLb {
    /// WCETT-LB with probe intervals divided by `rate` and the default σ/δ.
    /// Non-positive or non-finite rates saturate the probe interval instead
    /// of panicking (see [`ProbePlan::pair_at_rate`]).
    pub fn with_rate(rate: f64) -> Self {
        WcettLb {
            rate,
            sigma: DEFAULT_SIGMA,
            delta: DEFAULT_DELTA,
            data_bytes: super::ett::DEFAULT_DATA_BYTES,
            default_bandwidth_bps: 2.0e6,
        }
    }

    /// Set the load weight σ (clamped to be non-negative and finite).
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        self.sigma = if sigma.is_finite() {
            sigma.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Set the switching threshold δ (clamped into `[0, 0.95]` so `better`
    /// stays a strict ordering with a finite margin).
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = if delta.is_finite() {
            delta.clamp(0.0, 0.95)
        } else {
            DEFAULT_DELTA
        };
        self
    }

    /// The load weight in use.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The switching threshold in use.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The congestion reading of an observation: missing or non-finite
    /// values count as calm (0), everything else clamps into `[0, 1]`.
    fn congestion(obs: &LinkObservation) -> f64 {
        obs.congestion
            .filter(|c| c.is_finite())
            .unwrap_or(0.0)
            .clamp(0.0, 1.0)
    }
}

impl Metric for WcettLb {
    fn kind(&self) -> MetricKind {
        MetricKind::WcettLb
    }

    fn probe_plan(&self) -> ProbePlan {
        // Same packet-pair plan as ETT: the loss rate comes from the small
        // packets, the bandwidth from the large one.
        ProbePlan::pair_at_rate(self.rate)
    }

    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        let etx = 1.0 / obs.df.max(1e-6);
        let bw = obs
            .bandwidth_bps
            .unwrap_or(self.default_bandwidth_bps)
            .max(1e3);
        let ett = etx * (self.data_bytes as f64 * 8.0) / bw;
        LinkCost::new(ett * (1.0 + self.sigma * Self::congestion(obs)))
    }

    fn identity(&self) -> PathCost {
        PathCost::new(0.0)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new(path.value() + link.value())
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        // δ-hysteresis: `a` must undercut `b` by the switching margin. This
        // is a strict semiorder (irreflexive, asymmetric, and monotone under
        // the additive accumulation), which the metric-law property tests
        // exercise along with every other metric.
        Wcett::should_switch(b.value(), a.value(), self.delta)
    }

    fn worst(&self) -> PathCost {
        PathCost::new(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Ett;

    fn obs(df: f64, congestion: Option<f64>) -> LinkObservation {
        LinkObservation {
            df,
            delay_s: None,
            bandwidth_bps: Some(2.0e6),
            reverse_df: None,
            congestion,
        }
    }

    #[test]
    fn no_congestion_reading_costs_exactly_like_ett() {
        let m = WcettLb::default();
        let ett = Ett::default();
        for df in [1.0, 0.5, 0.1] {
            assert_eq!(
                m.link_cost(&obs(df, None)).value().to_bits(),
                ett.link_cost(&obs(df, None)).value().to_bits()
            );
        }
    }

    #[test]
    fn congestion_inflates_cost_by_sigma() {
        let m = WcettLb::default().with_sigma(2.0);
        let calm = m.link_cost(&obs(1.0, Some(0.0))).value();
        let busy = m.link_cost(&obs(1.0, Some(1.0))).value();
        assert!((busy / calm - 3.0).abs() < 1e-12);
    }

    #[test]
    fn congested_path_loses_under_asymmetric_load() {
        // Two link-identical two-hop paths; only one runs through a
        // congested forwarder. The calm path must win decisively (beyond
        // the delta margin).
        let m = WcettLb::default();
        let calm = m.path_cost([
            m.link_cost(&obs(0.9, Some(0.0))),
            m.link_cost(&obs(0.9, Some(0.0))),
        ]);
        let busy = m.path_cost([
            m.link_cost(&obs(0.9, Some(1.0))),
            m.link_cost(&obs(0.9, Some(1.0))),
        ]);
        assert!(m.better(calm, busy));
        assert!(!m.better(busy, calm));
    }

    #[test]
    fn marginal_improvements_do_not_flip_the_path() {
        // delta-hysteresis: a 5% cheaper challenger is not "better" under
        // the default 10% switching threshold...
        let m = WcettLb::default();
        let incumbent = PathCost::new(1.0);
        let marginal = PathCost::new(0.95);
        assert!(!m.better(marginal, incumbent));
        // ...but a 20% cheaper one is.
        let clear = PathCost::new(0.8);
        assert!(m.better(clear, incumbent));
    }

    #[test]
    fn delta_zero_degenerates_to_plain_lower_wins() {
        let m = WcettLb::default().with_delta(0.0);
        assert!(m.better(PathCost::new(0.99), PathCost::new(1.0)));
        assert!(!m.better(PathCost::new(1.0), PathCost::new(1.0)));
    }

    #[test]
    fn bogus_congestion_readings_count_as_calm() {
        let m = WcettLb::default();
        for c in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                m.link_cost(&obs(0.5, Some(c))).value().to_bits(),
                m.link_cost(&obs(0.5, None)).value().to_bits()
            );
        }
        // Out-of-range finite readings clamp instead of exploding.
        assert_eq!(
            m.link_cost(&obs(0.5, Some(7.0))).value().to_bits(),
            m.link_cost(&obs(0.5, Some(1.0))).value().to_bits()
        );
    }

    #[test]
    fn probe_plan_is_pair_like_ett() {
        assert_eq!(WcettLb::default().probe_plan(), Ett::default().probe_plan());
    }
}
