//! Hop count: every link costs 1.
//!
//! This is what all prior multicast protocols minimize (implicitly, via
//! shortest-path or first-arrival route selection). It needs no probing and
//! serves as the explicit-metric baseline in ablations; the *original* ODMRP
//! baseline in the experiments instead uses first-query arrival, which
//! usually coincides with minimum hops.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::{AnyMetric, Metric, MetricKind};

/// Registry entry for hop count. Selectable by name but not part of the
/// comparison tables: the experiments' baseline is *original* ODMRP
/// (first-query arrival), which already approximates minimum hops.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "HOP",
    kind: MetricKind::HopCount,
    aliases: &["HOPCOUNT", "HOP_COUNT"],
    paper: false,
    comparison: false,
    summary: "hop count: every link costs 1, no probing",
    build: |_rate| AnyMetric::HopCount(HopCount),
};

/// The hop-count metric.
///
/// ```
/// use mcast_metrics::{HopCount, Metric, LinkCost};
/// let m = HopCount;
/// let p = m.path_cost([LinkCost::new(1.0); 3]);
/// assert_eq!(p.value(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HopCount;

impl Metric for HopCount {
    fn kind(&self) -> MetricKind {
        MetricKind::HopCount
    }

    fn probe_plan(&self) -> ProbePlan {
        ProbePlan::None
    }

    fn link_cost(&self, _obs: &LinkObservation) -> LinkCost {
        LinkCost::new(1.0)
    }

    fn identity(&self) -> PathCost {
        PathCost::new(0.0)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new(path.value() + link.value())
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        a.value() < b.value()
    }

    fn worst(&self) -> PathCost {
        PathCost::new(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_link_quality() {
        let m = HopCount;
        let good = LinkObservation {
            df: 1.0,
            delay_s: None,
            bandwidth_bps: None,
            reverse_df: None,
            congestion: None,
        };
        let bad = LinkObservation { df: 0.01, ..good };
        assert_eq!(m.link_cost(&good), m.link_cost(&bad));
    }

    #[test]
    fn shorter_paths_win() {
        let m = HopCount;
        let two = m.path_cost([LinkCost::new(1.0); 2]);
        let three = m.path_cost([LinkCost::new(1.0); 3]);
        assert!(m.better(two, three));
        assert!(!m.better(three, two));
        assert!(!m.better(two, two));
    }

    #[test]
    fn no_probing() {
        assert_eq!(HopCount.probe_plan(), ProbePlan::None);
    }
}
