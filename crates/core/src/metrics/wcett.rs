//! WCETT — Weighted Cumulative ETT, the multi-radio/multi-channel extension
//! the paper defers to future work (§6).
//!
//! The paper adapts ETT rather than WCETT because it assumes a single
//! channel (§2.2). WCETT generalizes ETT for paths whose hops may use
//! different channels:
//!
//! ```text
//! WCETT = (1 − β) · Σ_i ETT_i  +  β · max_j X_j
//! X_j   = Σ_{hop i on channel j} ETT_i
//! ```
//!
//! The `max_j X_j` term charges the most-used channel: consecutive hops on
//! the same channel cannot transmit simultaneously, so channel-diverse paths
//! win. This module is *analytic* — it evaluates candidate paths given
//! per-hop `(ETT, channel)` — because plugging it into the broadcast-based
//! multicast protocol would require the multi-radio substrate that the
//! paper itself leaves open.

/// One hop of a multi-channel path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelHop {
    /// Expected transmission time of the hop, in seconds.
    pub ett_s: f64,
    /// Channel the hop's radio pair uses.
    pub channel: u8,
}

impl ChannelHop {
    /// Create a hop.
    ///
    /// # Panics
    ///
    /// Panics if `ett_s` is not positive and finite.
    pub fn new(ett_s: f64, channel: u8) -> Self {
        assert!(ett_s > 0.0 && ett_s.is_finite(), "ETT must be positive");
        ChannelHop { ett_s, channel }
    }
}

/// The WCETT path metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Wcett {
    beta: f64,
}

impl Wcett {
    /// Create WCETT with tunable β in `[0, 1]` (0 = plain ETT sum, 1 = pure
    /// bottleneck-channel cost; Draves et al. use β = 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn new(beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        Wcett { beta }
    }

    /// The β in use.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// WCETT of a path, in seconds. Lower is better. Empty paths cost 0.
    pub fn path_cost(&self, hops: &[ChannelHop]) -> f64 {
        let total: f64 = hops.iter().map(|h| h.ett_s).sum();
        // BTreeMap: `values()` below traverses it (mesh-lint R1).
        let mut per_channel = std::collections::BTreeMap::new();
        for h in hops {
            *per_channel.entry(h.channel).or_insert(0.0f64) += h.ett_s;
        }
        let bottleneck = per_channel.values().copied().fold(0.0f64, f64::max);
        (1.0 - self.beta) * total + self.beta * bottleneck
    }

    /// Index of the best path among `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn choose(&self, candidates: &[Vec<ChannelHop>]) -> usize {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let mut best = 0;
        let mut best_cost = self.path_cost(&candidates[0]);
        for (i, c) in candidates.iter().enumerate().skip(1) {
            let cost = self.path_cost(c);
            if cost < best_cost {
                best = i;
                best_cost = cost;
            }
        }
        best
    }
}

impl Default for Wcett {
    fn default() -> Self {
        Wcett::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(ett_ms: f64, ch: u8) -> ChannelHop {
        ChannelHop::new(ett_ms / 1e3, ch)
    }

    #[test]
    fn beta_zero_is_ett_sum() {
        let w = Wcett::new(0.0);
        let p = vec![hop(2.0, 1), hop(3.0, 2)];
        assert!((w.path_cost(&p) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn beta_one_is_bottleneck_channel() {
        let w = Wcett::new(1.0);
        let p = vec![hop(2.0, 1), hop(3.0, 1), hop(4.0, 2)];
        // Channel 1 carries 5ms, channel 2 carries 4ms.
        assert!((w.path_cost(&p) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn channel_diversity_wins_over_same_total_ett() {
        let w = Wcett::default();
        let same_channel = vec![hop(3.0, 1), hop(3.0, 1)];
        let diverse = vec![hop(3.0, 1), hop(3.0, 2)];
        assert!(w.path_cost(&diverse) < w.path_cost(&same_channel));
        assert_eq!(w.choose(&[same_channel, diverse]), 1);
    }

    #[test]
    fn degenerates_to_ett_on_single_channel() {
        // On a single channel (the paper's setting) WCETT ranks paths
        // exactly like the ETT sum for any beta.
        for beta in [0.0, 0.3, 0.7, 1.0] {
            let w = Wcett::new(beta);
            let short = vec![hop(4.0, 1)];
            let long = vec![hop(3.0, 1), hop(2.0, 1)];
            // sum(short)=4ms < sum(long)=5ms and same single-channel shape.
            assert!(w.path_cost(&short) < w.path_cost(&long), "beta={beta}");
        }
    }

    #[test]
    fn empty_path_costs_zero() {
        assert_eq!(Wcett::default().path_cost(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_rejected() {
        let _ = Wcett::new(1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_ett_rejected() {
        let _ = ChannelHop::new(-1.0, 0);
    }
}
