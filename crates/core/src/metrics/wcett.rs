//! WCETT — Weighted Cumulative ETT, the multi-radio/multi-channel extension
//! the paper defers to future work (§6).
//!
//! The paper adapts ETT rather than WCETT because it assumes a single
//! channel (§2.2). WCETT generalizes ETT for paths whose hops may use
//! different channels:
//!
//! ```text
//! WCETT = (1 − β) · Σ_i ETT_i  +  β · max_j X_j
//! X_j   = Σ_{hop i on channel j} ETT_i
//! ```
//!
//! The `max_j X_j` term charges the most-used channel: consecutive hops on
//! the same channel cannot transmit simultaneously, so channel-diverse paths
//! win. This module is *analytic* — it evaluates candidate paths given
//! per-hop `(ETT, channel)` — because plugging it into the broadcast-based
//! multicast protocol would require the multi-radio substrate that the
//! paper itself leaves open.

/// One hop of a multi-channel path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelHop {
    /// Expected transmission time of the hop, in seconds.
    pub ett_s: f64,
    /// Channel the hop's radio pair uses.
    pub channel: u8,
}

impl ChannelHop {
    /// Create a hop.
    ///
    /// # Panics
    ///
    /// Panics if `ett_s` is not positive and finite.
    pub fn new(ett_s: f64, channel: u8) -> Self {
        assert!(ett_s > 0.0 && ett_s.is_finite(), "ETT must be positive");
        ChannelHop { ett_s, channel }
    }
}

/// The WCETT path metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Wcett {
    beta: f64,
}

impl Wcett {
    /// Create WCETT with tunable β in `[0, 1]` (0 = plain ETT sum, 1 = pure
    /// bottleneck-channel cost; Draves et al. use β = 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn new(beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        Wcett { beta }
    }

    /// The β in use.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// WCETT of a path, in seconds. Lower is better. Empty paths cost 0.
    pub fn path_cost(&self, hops: &[ChannelHop]) -> f64 {
        self.combine(hops.iter().map(|h| (h.ett_s, h.channel)))
    }

    /// WCETT with per-hop load scaling (mamure's WCETT-LB): each hop's ETT
    /// is inflated by `(1 + sigma · congestion)` before the `(1 − β)/β`
    /// combination, so the bottleneck-channel term also charges congestion.
    /// Congestion readings clamp into `[0, 1]`; non-finite ones count as
    /// calm. With `sigma = 0` this is exactly [`Wcett::path_cost`].
    pub fn loaded_path_cost(&self, hops: &[(ChannelHop, f64)], sigma: f64) -> f64 {
        self.combine(hops.iter().map(|&(h, congestion)| {
            let c = if congestion.is_finite() {
                congestion.clamp(0.0, 1.0)
            } else {
                0.0
            };
            (h.ett_s * (1.0 + sigma * c), h.channel)
        }))
    }

    /// δ-hysteresis path switching: a challenger only displaces the
    /// incumbent when it undercuts it by more than the threshold. This is
    /// the comparator the WCETT-LB routing metric uses for
    /// [`Metric::better`](super::Metric::better).
    pub fn should_switch(current: f64, candidate: f64, delta: f64) -> bool {
        candidate < current * (1.0 - delta)
    }

    // The shared `(1 − β)·Σ + β·max_j` fold. Per-evaluation scratch is a
    // fixed stack array indexed by the u8 channel (channels are few, the
    // channel space is 256 either way) — path evaluation runs once per
    // candidate per route refresh, so it must not allocate. The ascending
    // index scan visits channel sums in the same order the old BTreeMap's
    // `values()` did, and `max(acc, 0.0)` over the untouched zero slots is
    // the identity, so results are bit-for-bit what the map produced.
    // mesh-lint: hot(wcett-path-cost)
    fn combine<I: Iterator<Item = (f64, u8)>>(&self, hops: I) -> f64 {
        let mut total = 0.0f64;
        let mut per_channel = [0.0f64; 256];
        for (ett_s, channel) in hops {
            total += ett_s;
            per_channel[channel as usize] += ett_s;
        }
        let bottleneck = per_channel.iter().copied().fold(0.0f64, f64::max);
        (1.0 - self.beta) * total + self.beta * bottleneck
    }
    // mesh-lint: end-hot

    /// Index of the best path among `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn choose(&self, candidates: &[Vec<ChannelHop>]) -> usize {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let mut best = 0;
        let mut best_cost = self.path_cost(&candidates[0]);
        for (i, c) in candidates.iter().enumerate().skip(1) {
            let cost = self.path_cost(c);
            if cost < best_cost {
                best = i;
                best_cost = cost;
            }
        }
        best
    }
}

impl Default for Wcett {
    fn default() -> Self {
        Wcett::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(ett_ms: f64, ch: u8) -> ChannelHop {
        ChannelHop::new(ett_ms / 1e3, ch)
    }

    #[test]
    fn beta_zero_is_ett_sum() {
        let w = Wcett::new(0.0);
        let p = vec![hop(2.0, 1), hop(3.0, 2)];
        assert!((w.path_cost(&p) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn beta_one_is_bottleneck_channel() {
        let w = Wcett::new(1.0);
        let p = vec![hop(2.0, 1), hop(3.0, 1), hop(4.0, 2)];
        // Channel 1 carries 5ms, channel 2 carries 4ms.
        assert!((w.path_cost(&p) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn channel_diversity_wins_over_same_total_ett() {
        let w = Wcett::default();
        let same_channel = vec![hop(3.0, 1), hop(3.0, 1)];
        let diverse = vec![hop(3.0, 1), hop(3.0, 2)];
        assert!(w.path_cost(&diverse) < w.path_cost(&same_channel));
        assert_eq!(w.choose(&[same_channel, diverse]), 1);
    }

    #[test]
    fn degenerates_to_ett_on_single_channel() {
        // On a single channel (the paper's setting) WCETT ranks paths
        // exactly like the ETT sum for any beta.
        for beta in [0.0, 0.3, 0.7, 1.0] {
            let w = Wcett::new(beta);
            let short = vec![hop(4.0, 1)];
            let long = vec![hop(3.0, 1), hop(2.0, 1)];
            // sum(short)=4ms < sum(long)=5ms and same single-channel shape.
            assert!(w.path_cost(&short) < w.path_cost(&long), "beta={beta}");
        }
    }

    #[test]
    fn empty_path_costs_zero() {
        assert_eq!(Wcett::default().path_cost(&[]), 0.0);
    }

    #[test]
    fn scratch_fold_is_bit_identical_to_a_btreemap_reference() {
        // The pre-refactor implementation, kept as the oracle: per-channel
        // sums in a BTreeMap, bottleneck from its `values()` traversal.
        fn reference(beta: f64, hops: &[ChannelHop]) -> f64 {
            let total: f64 = hops.iter().map(|h| h.ett_s).sum();
            let mut per_channel = std::collections::BTreeMap::new();
            for h in hops {
                *per_channel.entry(h.channel).or_insert(0.0f64) += h.ett_s;
            }
            let bottleneck = per_channel.values().copied().fold(0.0f64, f64::max);
            (1.0 - beta) * total + beta * bottleneck
        }
        // Deterministic pseudo-random hop lists covering repeated channels,
        // extreme channel ids and irrational ETTs.
        let mut state = 0x9e37_79b9_u32;
        for beta in [0.0, 0.3, 0.5, 0.7, 1.0] {
            for len in 0..24usize {
                let hops: Vec<ChannelHop> = (0..len)
                    .map(|i| {
                        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                        let ch = (state >> 24) as u8;
                        ChannelHop::new(1e-4 + (i as f64 + 1.0) / 3.0_f64.sqrt(), ch)
                    })
                    .collect();
                let w = Wcett::new(beta);
                assert_eq!(
                    w.path_cost(&hops).to_bits(),
                    reference(beta, &hops).to_bits(),
                    "beta={beta} len={len}"
                );
            }
        }
    }

    #[test]
    fn loaded_cost_with_zero_sigma_is_plain_wcett() {
        let w = Wcett::default();
        let hops = [hop(2.0, 1), hop(3.0, 2), hop(4.0, 1)];
        let loaded: Vec<(ChannelHop, f64)> = hops.iter().map(|&h| (h, 0.9)).collect();
        assert_eq!(
            w.loaded_path_cost(&loaded, 0.0).to_bits(),
            w.path_cost(&hops).to_bits()
        );
    }

    #[test]
    fn congestion_charges_the_bottleneck_channel_too() {
        let w = Wcett::new(1.0); // pure bottleneck term
        let calm = [(hop(3.0, 1), 0.0), (hop(3.0, 1), 0.0)];
        let busy = [(hop(3.0, 1), 1.0), (hop(3.0, 1), 1.0)];
        let sigma = 0.5;
        assert!(w.loaded_path_cost(&busy, sigma) > w.loaded_path_cost(&calm, sigma));
        // sigma=0.5 at full congestion inflates the channel sum by 1.5x.
        let ratio = w.loaded_path_cost(&busy, sigma) / w.loaded_path_cost(&calm, sigma);
        assert!((ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bogus_congestion_counts_as_calm_in_loaded_cost() {
        let w = Wcett::default();
        let nan = [(hop(2.0, 1), f64::NAN), (hop(3.0, 2), f64::INFINITY)];
        let calm = [hop(2.0, 1), hop(3.0, 2)];
        assert_eq!(
            w.loaded_path_cost(&nan, 0.5).to_bits(),
            w.path_cost(&calm).to_bits()
        );
    }

    #[test]
    fn should_switch_applies_the_hysteresis_margin() {
        assert!(!Wcett::should_switch(1.0, 0.95, 0.1)); // within the margin
        assert!(Wcett::should_switch(1.0, 0.8, 0.1)); // clear of it
        assert!(!Wcett::should_switch(1.0, 1.0, 0.0)); // strict at delta=0
        assert!(Wcett::should_switch(1.0, 0.99, 0.0));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_rejected() {
        let _ = Wcett::new(1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_ett_rejected() {
        let _ = ChannelHop::new(-1.0, 0);
    }
}
