//! Multicast ETX (§2.2): `ETX = 1 / df`, forward direction only.
//!
//! Unicast ETX is `1 / (df · dr)` because a transfer needs the data forward
//! *and* the ACK back. With link-layer broadcast there is no ACK, so the
//! adapted metric drops the reverse term. Path cost is the sum of link
//! values, as in the original.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::{AnyMetric, Metric, MetricKind};

/// Registry entry for ETX.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "ETX",
    kind: MetricKind::Etx,
    aliases: &[],
    paper: true,
    comparison: true,
    summary: "expected transmissions, forward-only (1/df, additive)",
    build: |rate| AnyMetric::Etx(Etx::with_rate(rate)),
};

/// The forward-only ETX metric.
///
/// ```
/// use mcast_metrics::{Etx, Metric, LinkObservation};
/// let m = Etx::default();
/// let obs = LinkObservation {
///     df: 0.5, delay_s: None, bandwidth_bps: None, reverse_df: None,
///     congestion: None,
/// };
/// assert_eq!(m.link_cost(&obs).value(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Etx {
    rate: f64,
}

impl Default for Etx {
    fn default() -> Self {
        Etx::with_rate(1.0)
    }
}

impl Etx {
    /// ETX with probe intervals divided by `rate`. Non-positive or
    /// non-finite rates saturate the probe interval instead of panicking
    /// (see [`ProbePlan::single_at_rate`]).
    pub fn with_rate(rate: f64) -> Self {
        Etx { rate }
    }
}

impl Metric for Etx {
    fn kind(&self) -> MetricKind {
        MetricKind::Etx
    }

    fn probe_plan(&self) -> ProbePlan {
        ProbePlan::single_at_rate(self.rate)
    }

    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        LinkCost::new(1.0 / obs.df.max(1e-6))
    }

    fn identity(&self) -> PathCost {
        PathCost::new(0.0)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new(path.value() + link.value())
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        a.value() < b.value()
    }

    fn worst(&self) -> PathCost {
        PathCost::new(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(df: f64, dr: f64) -> LinkObservation {
        LinkObservation {
            df,
            delay_s: None,
            bandwidth_bps: None,
            reverse_df: Some(dr),
            congestion: None,
        }
    }

    #[test]
    fn perfect_link_costs_one() {
        let m = Etx::default();
        assert!((m.link_cost(&obs(1.0, 1.0)).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reverse_direction_is_ignored() {
        // The core multicast adaptation: dr must not distort the value.
        let m = Etx::default();
        assert_eq!(m.link_cost(&obs(0.5, 1.0)), m.link_cost(&obs(0.5, 0.01)));
    }

    #[test]
    fn path_is_additive() {
        let m = Etx::default();
        let p = m.path_cost([m.link_cost(&obs(0.5, 1.0)), m.link_cost(&obs(0.25, 1.0))]);
        assert!((p.value() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn figure3_example_prefers_short_lossy_path() {
        // Paper Fig. 3: ETX picks A-E-D (3.61) over A-B-C-D (3.75) even
        // though the long path has much higher end-to-end success.
        let m = Etx::default();
        let long = m.path_cost([0.8, 0.8, 0.8].map(|d| m.link_cost(&obs(d, 1.0))));
        let short = m.path_cost([0.9, 0.4].map(|d| m.link_cost(&obs(d, 1.0))));
        assert!((long.value() - 3.75).abs() < 1e-9);
        assert!((short.value() - (1.0 / 0.9 + 2.5)).abs() < 1e-9);
        assert!(m.better(short, long), "ETX's known blind spot");
    }

    #[test]
    fn zero_df_does_not_divide_by_zero() {
        let m = Etx::default();
        assert!(m.link_cost(&obs(0.0, 1.0)).value().is_finite());
    }

    #[test]
    fn probe_plan_is_single_5s() {
        match Etx::default().probe_plan() {
            ProbePlan::Single { interval, .. } => {
                assert_eq!(interval, mesh_sim::time::SimDuration::from_secs(5))
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
