//! InvETX — ETX inverted into a link *quality* score.
//!
//! "Investigating Quality Routing Link Metrics in Wireless Multi-hop
//! Networks" inverts ETX so the value reads as a quality (higher wins)
//! rather than a cost: a link is worth its forward delivery ratio `df`, and
//! a path is worth the harmonic combination of its links,
//!
//! ```text
//! InvETX(path + link) = 1 / (1/InvETX(path) + 1/df)
//!                     = 1 / Σ_i (1/df_i)  =  1 / ETX(path)
//! ```
//!
//! so InvETX orders paths exactly *inversely* to the ETX sum — same
//! selections, same blind spots (Fig. 3's short lossy path included) — with
//! the paper's better-is-higher comparator, like SPP's. It reuses ETX's
//! probe plan (one small probe every 5 s): same observations, different
//! reading.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::{AnyMetric, Metric, MetricKind};

/// Registry entry for InvETX.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "InvETX",
    kind: MetricKind::InvEtx,
    aliases: &["INV_ETX"],
    paper: false,
    comparison: true,
    summary: "inverted ETX quality score (df, harmonic combination, higher wins)",
    build: |rate| AnyMetric::InvEtx(InvEtx::with_rate(rate)),
};

/// The inverted-ETX quality metric.
///
/// ```
/// use mcast_metrics::{InvEtx, Metric, LinkObservation};
/// let m = InvEtx::default();
/// let obs = LinkObservation {
///     df: 0.5, delay_s: None, bandwidth_bps: None, reverse_df: None,
///     congestion: None,
/// };
/// // A single link is worth its delivery ratio: 1 / (1/0.5) = 0.5.
/// assert_eq!(m.accumulate(m.identity(), m.link_cost(&obs)).value(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InvEtx {
    rate: f64,
}

impl Default for InvEtx {
    fn default() -> Self {
        InvEtx::with_rate(1.0)
    }
}

impl InvEtx {
    /// InvETX with probe intervals divided by `rate`. Non-positive or
    /// non-finite rates saturate the probe interval instead of panicking
    /// (see [`ProbePlan::single_at_rate`]).
    pub fn with_rate(rate: f64) -> Self {
        InvEtx { rate }
    }
}

impl Metric for InvEtx {
    fn kind(&self) -> MetricKind {
        MetricKind::InvEtx
    }

    fn probe_plan(&self) -> ProbePlan {
        ProbePlan::single_at_rate(self.rate)
    }

    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        // The link's value is its forward delivery ratio, floored exactly
        // like ETX floors its reciprocal so the two stay inverses.
        LinkCost::new(obs.df.max(1e-6))
    }

    fn identity(&self) -> PathCost {
        // The empty path has perfect quality: 1/identity contributes 0 to
        // the harmonic sum below.
        PathCost::new(f64::INFINITY)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new(1.0 / (1.0 / path.value() + 1.0 / link.value()))
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        // Quality score: higher wins (like SPP).
        a.value() > b.value()
    }

    fn worst(&self) -> PathCost {
        PathCost::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Etx;

    fn obs(df: f64) -> LinkObservation {
        LinkObservation {
            df,
            delay_s: None,
            bandwidth_bps: None,
            reverse_df: None,
            congestion: None,
        }
    }

    #[test]
    fn single_link_is_worth_its_delivery_ratio() {
        let m = InvEtx::default();
        let p = m.path_cost([m.link_cost(&obs(0.5))]);
        assert_eq!(p.value(), 0.5);
    }

    #[test]
    fn path_value_is_the_exact_inverse_of_the_etx_sum_on_dyadic_ratios() {
        // Powers of two keep every division exact, so the inverse identity
        // holds to the bit: 1/0.5 + 1/0.25 = 6, and 1/6 both ways.
        let inv = InvEtx::default();
        let etx = Etx::default();
        let dfs = [0.5, 0.25];
        let p_inv = inv.path_cost(dfs.map(|d| inv.link_cost(&obs(d)))).value();
        let p_etx = etx.path_cost(dfs.map(|d| etx.link_cost(&obs(d)))).value();
        assert_eq!(p_inv, 1.0 / p_etx);
        assert_eq!(p_etx, 6.0);
    }

    #[test]
    fn ordering_is_inverse_of_etx() {
        // Same selections as ETX under the flipped comparator: for paths
        // with well-separated costs, ETX-better(a, b) == InvETX-better(a, b).
        let inv = InvEtx::default();
        let etx = Etx::default();
        let paths: [&[f64]; 3] = [&[0.9, 0.9], &[0.5], &[0.3, 0.8, 0.9]];
        for a in paths {
            for b in paths {
                let ia = inv.path_cost(a.iter().map(|&d| inv.link_cost(&obs(d))));
                let ib = inv.path_cost(b.iter().map(|&d| inv.link_cost(&obs(d))));
                let ea = etx.path_cost(a.iter().map(|&d| etx.link_cost(&obs(d))));
                let eb = etx.path_cost(b.iter().map(|&d| etx.link_cost(&obs(d))));
                assert_eq!(
                    inv.better(ia, ib),
                    etx.better(ea, eb),
                    "paths {a:?} vs {b:?} ordered differently"
                );
            }
        }
    }

    #[test]
    fn figure3_inherits_etx_blind_spot() {
        // Fig. 3: ETX prefers the short lossy A-E-D path; InvETX, being its
        // inverse, makes the same (wrong) call — it is a re-reading of ETX,
        // not a fix for it.
        let m = InvEtx::default();
        let long = m.path_cost([0.8, 0.8, 0.8].map(|d| m.link_cost(&obs(d))));
        let short = m.path_cost([0.9, 0.4].map(|d| m.link_cost(&obs(d))));
        assert!(m.better(short, long));
    }

    #[test]
    fn extending_a_path_lowers_quality() {
        let m = InvEtx::default();
        let p = m.path_cost([m.link_cost(&obs(0.9))]);
        let q = m.accumulate(p, m.link_cost(&obs(0.9)));
        assert!(q.value() < p.value());
        assert!(!m.better(q, p));
    }

    #[test]
    fn zero_df_is_still_finite_and_beats_worst() {
        let m = InvEtx::default();
        let p = m.path_cost([m.link_cost(&obs(0.0))]);
        assert!(p.value().is_finite() && p.value() > 0.0);
        assert!(m.better(p, m.worst()));
    }

    #[test]
    fn probe_plan_is_etx_single_5s() {
        assert_eq!(InvEtx::default().probe_plan(), Etx::default().probe_plan());
    }
}
