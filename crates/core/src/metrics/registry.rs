//! The metric plugin registry.
//!
//! A metric is a *registered plugin*: a named bundle of cost algebra
//! ([`Metric::link_cost`](super::Metric::link_cost) /
//! [`accumulate`](super::Metric::accumulate) /
//! [`identity`](super::Metric::identity) /
//! [`better`](super::Metric::better)), probe plan and accumulation rule,
//! discoverable **by name** instead of through a closed `match` over
//! [`MetricKind`]. The scenario compiler resolves deck variant names here,
//! and the fig2/table1 runners enumerate [`MetricRegistry::comparison_kinds`]
//! so a newly registered metric appears in every comparison table without
//! touching a single runner.
//!
//! ## Adding a metric
//!
//! 1. Write the metric in one new file under `metrics/` (implement
//!    [`Metric`](super::Metric), export a `PLUGIN` const like the ones in
//!    `inv_etx.rs`).
//! 2. Register it: one `MetricKind`/`AnyMetric` variant, one `delegate!`
//!    arm and one entry in [`MetricRegistry::builtin`]'s list, all in
//!    `metrics/mod.rs`.
//!
//! Everything downstream — deck parsing, sweep axes, comparison tables, the
//! metric-matrix CI smoke — picks the metric up from the registry.

use std::sync::OnceLock;

use super::{AnyMetric, MetricKind};

/// A registered metric: what the registry knows about one [`Metric`]
/// implementation.
///
/// [`Metric`]: super::Metric
#[derive(Debug, Clone, Copy)]
pub struct MetricPlugin {
    /// Canonical deck/CLI name; always equal to [`MetricKind::name`].
    pub name: &'static str,
    /// The kind this plugin builds (the `Copy` identifier used in configs).
    pub kind: MetricKind,
    /// Additional accepted spellings. Both `name` and aliases are matched
    /// ASCII-case-insensitively by [`MetricRegistry::lookup`].
    pub aliases: &'static [&'static str],
    /// Whether the metric is one of the paper's evaluated five (ETT, ETX,
    /// METX, PP, SPP — Fig. 2 / Table 1).
    pub paper: bool,
    /// Whether the fig2/table1 comparison tables enumerate it. Ablations
    /// (`ETX-bidir`) and the implicit baseline (`HOP`) opt out but remain
    /// selectable by name.
    pub comparison: bool,
    /// One-line summary of the cost algebra, for generated docs and usage
    /// listings.
    pub summary: &'static str,
    /// Construct the metric with probe intervals divided by `rate`.
    pub build: fn(rate: f64) -> AnyMetric,
}

impl MetricPlugin {
    /// Whether `name` selects this plugin (canonical name or any alias,
    /// ASCII-case-insensitive).
    pub fn matches(&self, name: &str) -> bool {
        self.name.eq_ignore_ascii_case(name)
            || self.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
    }

    /// Build the metric with probe intervals divided by `rate`.
    pub fn instantiate(&self, rate: f64) -> AnyMetric {
        (self.build)(rate)
    }
}

/// A set of metric plugins, searchable by name or kind.
///
/// Iteration order is registration order everywhere (a `Vec`, never a hash
/// map — mesh-lint R1), so tables and error messages are deterministic.
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    plugins: Vec<MetricPlugin>,
}

impl MetricRegistry {
    /// A registry over the given plugins, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `plugins` is empty (an empty registry cannot satisfy
    /// [`MetricRegistry::plugin_of`]'s total contract).
    pub fn new(plugins: Vec<MetricPlugin>) -> Self {
        assert!(!plugins.is_empty(), "registry needs at least one plugin");
        MetricRegistry { plugins }
    }

    /// All in-tree metrics: the paper five first (in the paper's figure
    /// order), then the baseline and ablation, then the post-paper entrants.
    pub fn builtin() -> Self {
        MetricRegistry::new(vec![
            super::ett::PLUGIN,
            super::etx::PLUGIN,
            super::metx::PLUGIN,
            super::pp::PLUGIN,
            super::spp::PLUGIN,
            super::hop_count::PLUGIN,
            super::unicast_etx::PLUGIN,
            super::inv_etx::PLUGIN,
            super::wcett_lb::PLUGIN,
        ])
    }

    /// The process-wide registry of built-in metrics.
    pub fn global() -> &'static MetricRegistry {
        static GLOBAL: OnceLock<MetricRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricRegistry::builtin)
    }

    /// Every registered plugin, in registration order.
    pub fn plugins(&self) -> &[MetricPlugin] {
        &self.plugins
    }

    /// Find the plugin a deck/CLI `name` selects (canonical name or alias,
    /// ASCII-case-insensitive).
    pub fn lookup(&self, name: &str) -> Option<&MetricPlugin> {
        self.plugins.iter().find(|p| p.matches(name))
    }

    /// The plugin for `kind`. Total over every registered kind; a kind that
    /// was never registered (impossible for the built-in registry, which
    /// [`MetricRegistry::builtin`]'s coverage test pins) falls back to the
    /// first registration rather than panicking mid-simulation.
    pub fn plugin_of(&self, kind: MetricKind) -> &MetricPlugin {
        self.plugins
            .iter()
            .find(|p| p.kind == kind)
            .unwrap_or(&self.plugins[0])
    }

    /// Canonical names in registration order (deck error messages, docs).
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.plugins.iter().map(|p| p.name)
    }

    /// Kinds of the paper's evaluated five, in registration order.
    pub fn paper_kinds(&self) -> impl Iterator<Item = MetricKind> + '_ {
        self.plugins.iter().filter(|p| p.paper).map(|p| p.kind)
    }

    /// Kinds the comparison tables enumerate, in registration order.
    pub fn comparison_kinds(&self) -> impl Iterator<Item = MetricKind> + '_ {
        self.plugins.iter().filter(|p| p.comparison).map(|p| p.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::super::Metric;
    use super::*;

    #[test]
    fn every_kind_has_a_plugin_that_builds_it() {
        let reg = MetricRegistry::global();
        for kind in MetricKind::ALL {
            let p = reg.plugin_of(kind);
            assert_eq!(p.kind, kind, "plugin_of({kind}) resolved a stranger");
            assert_eq!(p.instantiate(1.0).kind(), kind);
            assert_eq!(p.name, kind.name(), "canonical name drifted");
        }
        assert_eq!(reg.plugins().len(), MetricKind::ALL.len());
    }

    #[test]
    fn lookup_accepts_names_and_aliases_case_insensitively() {
        let reg = MetricRegistry::global();
        assert_eq!(reg.lookup("SPP").map(|p| p.kind), Some(MetricKind::Spp));
        assert_eq!(reg.lookup("spp").map(|p| p.kind), Some(MetricKind::Spp));
        assert_eq!(
            reg.lookup("invetx").map(|p| p.kind),
            Some(MetricKind::InvEtx)
        );
        assert_eq!(
            reg.lookup("WCETT_LB").map(|p| p.kind),
            Some(MetricKind::WcettLb)
        );
        assert_eq!(
            reg.lookup("etx-bidir").map(|p| p.kind),
            Some(MetricKind::UnicastEtx)
        );
        assert!(reg.lookup("WAT").is_none());
    }

    #[test]
    fn paper_kinds_match_the_paper_set() {
        let kinds: Vec<MetricKind> = MetricRegistry::global().paper_kinds().collect();
        assert_eq!(kinds, MetricKind::PAPER_SET);
    }

    #[test]
    fn comparison_set_is_paper_five_plus_new_entrants() {
        let kinds: Vec<MetricKind> = MetricRegistry::global().comparison_kinds().collect();
        assert_eq!(
            kinds,
            [
                MetricKind::Ett,
                MetricKind::Etx,
                MetricKind::Metx,
                MetricKind::Pp,
                MetricKind::Spp,
                MetricKind::InvEtx,
                MetricKind::WcettLb,
            ]
        );
    }

    #[test]
    fn names_are_unique_even_across_aliases() {
        let reg = MetricRegistry::global();
        for (i, p) in reg.plugins().iter().enumerate() {
            for q in reg.plugins().iter().skip(i + 1) {
                assert!(!q.matches(p.name), "{} collides with {}", p.name, q.name);
                for a in p.aliases {
                    assert!(!q.matches(a), "alias {a} of {} hits {}", p.name, q.name);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one plugin")]
    fn empty_registry_rejected() {
        let _ = MetricRegistry::new(Vec::new());
    }
}
