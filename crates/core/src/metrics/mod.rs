//! The routing metrics.
//!
//! Each metric answers four questions:
//!
//! 1. **How is the link probed?** ([`Metric::probe_plan`])
//! 2. **What does one link cost?** ([`Metric::link_cost`], from a
//!    [`LinkObservation`])
//! 3. **How do link costs compose along a path?** ([`Metric::accumulate`],
//!    starting from [`Metric::identity`]) — a *sum* for ETX/ETT/PP, a
//!    *product* for SPP, and the recursion `METX' = (METX + 1) / df` for METX.
//! 4. **Which of two path costs is better?** ([`Metric::better`]) — lower for
//!    every metric except SPP and InvETX, where the value is a success
//!    probability / quality score and higher wins.
//!
//! A metric is a *registered plugin*: the [`MetricRegistry`] maps deck/CLI
//! names to builders, and everything that enumerates metrics (comparison
//! tables, sweep variant axes, the metric-matrix CI smoke) walks the
//! registry rather than a hard-coded list. See [`registry`] for the
//! add-a-metric recipe.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

mod ett;
mod etx;
mod hop_count;
mod inv_etx;
mod metx;
mod pp;
pub mod registry;
mod spp;
mod unicast_etx;
mod wcett;
mod wcett_lb;

pub use ett::Ett;
pub use etx::Etx;
pub use hop_count::HopCount;
pub use inv_etx::InvEtx;
pub use metx::{metx_closed_form, Metx};
pub use pp::Pp;
pub use registry::{MetricPlugin, MetricRegistry};
pub use spp::Spp;
pub use unicast_etx::UnicastEtx;
pub use wcett::{ChannelHop, Wcett};
pub use wcett_lb::{WcettLb, DEFAULT_DELTA, DEFAULT_SIGMA};

/// Identifies a routing metric (display names match the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MetricKind {
    /// Hop count (what original ODMRP effectively minimizes).
    HopCount,
    /// Expected transmission count, forward direction only.
    Etx,
    /// Expected transmission time (loss + bandwidth via packet pairs).
    Ett,
    /// Packet-pair delay with EWMA and 20 % loss penalty.
    Pp,
    /// Multicast ETX: expected transmissions by *all* nodes on the path.
    Metx,
    /// Success probability product (maximize).
    Spp,
    /// Deliberately-wrong bidirectional ETX (ablation; not in the paper's
    /// final metric set).
    UnicastEtx,
    /// ETX inverted into a quality score (maximize).
    InvEtx,
    /// Load-balanced WCETT: ETT plus a queue/retry congestion term with
    /// σ/δ switching thresholds.
    WcettLb,
}

impl MetricKind {
    /// All metrics evaluated in the paper's figures, in the order the paper
    /// lists them (ETT, ETX, METX, PP, SPP).
    pub const PAPER_SET: [MetricKind; 5] = [
        MetricKind::Ett,
        MetricKind::Etx,
        MetricKind::Metx,
        MetricKind::Pp,
        MetricKind::Spp,
    ];

    /// Every kind, in registry registration order. Kept in sync with the
    /// registry by `every_kind_has_a_plugin_that_builds_it`.
    pub const ALL: [MetricKind; 9] = [
        MetricKind::Ett,
        MetricKind::Etx,
        MetricKind::Metx,
        MetricKind::Pp,
        MetricKind::Spp,
        MetricKind::HopCount,
        MetricKind::UnicastEtx,
        MetricKind::InvEtx,
        MetricKind::WcettLb,
    ];

    /// Build the metric with the default (paper) probing rate.
    pub fn build(self) -> AnyMetric {
        self.build_with_rate(1.0)
    }

    /// Build the metric with probe intervals divided by `rate`, through the
    /// registry. Never panics: invalid rates saturate the probe interval
    /// (see [`ProbePlan::single_at_rate`]).
    pub fn build_with_rate(self, rate: f64) -> AnyMetric {
        MetricRegistry::global().plugin_of(self).instantiate(rate)
    }

    /// The paper's name for the metric (the registry's canonical name).
    pub fn name(self) -> &'static str {
        MetricRegistry::global().plugin_of(self).name
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A link-quality routing metric for link-layer-broadcast multicast.
///
/// Implementations must satisfy, for all observations `o` and path costs
/// `p`:
///
/// * **worst-dominance** — `better(accumulate(identity(), link_cost(o)), worst())`
///   unless the link is itself worst-possible;
/// * **monotonicity** — extending a path never makes it better:
///   `!better(accumulate(p, c), p)` holds for SPP-style metrics and the
///   additive ones alike;
/// * **totality** — `better` is a strict weak ordering (no NaNs), or a
///   strict semiorder for hysteresis comparators like WCETT-LB's (still
///   irreflexive, asymmetric, and monotone).
///
/// These laws are checked by property tests in this crate, over every
/// registered metric.
pub trait Metric {
    /// Which metric this is.
    fn kind(&self) -> MetricKind;

    /// How links must be probed for this metric.
    fn probe_plan(&self) -> ProbePlan;

    /// Cost of a single link given its current observation.
    fn link_cost(&self, obs: &LinkObservation) -> LinkCost;

    /// Path cost of the empty path (at the source itself).
    fn identity(&self) -> PathCost;

    /// Extend a path by one link.
    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost;

    /// Whether `a` is strictly better than `b`.
    fn better(&self, a: PathCost, b: PathCost) -> bool;

    /// The worst possible path cost (used to initialize comparisons).
    fn worst(&self) -> PathCost;

    /// Convenience: fold a sequence of link costs into a path cost.
    fn path_cost<I: IntoIterator<Item = LinkCost>>(&self, links: I) -> PathCost
    where
        Self: Sized,
    {
        links
            .into_iter()
            .fold(self.identity(), |p, l| self.accumulate(p, l))
    }
}

/// Enum dispatch over all metrics (object-safety not required, and enum
/// dispatch keeps the hot path monomorphic).
#[derive(Debug, Clone, PartialEq)]
pub enum AnyMetric {
    /// See [`HopCount`].
    HopCount(HopCount),
    /// See [`Etx`].
    Etx(Etx),
    /// See [`Ett`].
    Ett(Ett),
    /// See [`Pp`].
    Pp(Pp),
    /// See [`Metx`].
    Metx(Metx),
    /// See [`Spp`].
    Spp(Spp),
    /// See [`UnicastEtx`].
    UnicastEtx(UnicastEtx),
    /// See [`InvEtx`].
    InvEtx(InvEtx),
    /// See [`WcettLb`].
    WcettLb(WcettLb),
}

macro_rules! delegate {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            AnyMetric::HopCount($m) => $body,
            AnyMetric::Etx($m) => $body,
            AnyMetric::Ett($m) => $body,
            AnyMetric::Pp($m) => $body,
            AnyMetric::Metx($m) => $body,
            AnyMetric::Spp($m) => $body,
            AnyMetric::UnicastEtx($m) => $body,
            AnyMetric::InvEtx($m) => $body,
            AnyMetric::WcettLb($m) => $body,
        }
    };
}

impl Metric for AnyMetric {
    fn kind(&self) -> MetricKind {
        delegate!(self, m => m.kind())
    }
    fn probe_plan(&self) -> ProbePlan {
        delegate!(self, m => m.probe_plan())
    }
    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        delegate!(self, m => m.link_cost(obs))
    }
    fn identity(&self) -> PathCost {
        delegate!(self, m => m.identity())
    }
    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        delegate!(self, m => m.accumulate(path, link))
    }
    fn better(&self, a: PathCost, b: PathCost) -> bool {
        delegate!(self, m => m.better(a, b))
    }
    fn worst(&self) -> PathCost {
        delegate!(self, m => m.worst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(df: f64) -> LinkObservation {
        LinkObservation {
            df,
            // On a real link, loss penalties inflate the PP delay EWMA and
            // shrink the bandwidth estimate; model that coupling so the
            // cross-metric assertions make sense for PP and ETT too. A
            // lossier link also plausibly sits behind a busier queue.
            delay_s: Some(0.005 / df),
            bandwidth_bps: Some(2.0e6 * df),
            reverse_df: Some(df),
            congestion: Some(1.0 - df),
        }
    }

    #[test]
    fn kinds_roundtrip_through_build() {
        for kind in MetricKind::ALL {
            assert_eq!(kind.build().kind(), kind);
        }
    }

    #[test]
    fn all_is_exhaustive() {
        // A new MetricKind variant fails this match until it is added to
        // ALL (and, via the registry coverage test, to the registry).
        for kind in MetricKind::ALL {
            match kind {
                MetricKind::HopCount
                | MetricKind::Etx
                | MetricKind::Ett
                | MetricKind::Pp
                | MetricKind::Metx
                | MetricKind::Spp
                | MetricKind::UnicastEtx
                | MetricKind::InvEtx
                | MetricKind::WcettLb => {}
            }
        }
        let mut sorted = MetricKind::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), MetricKind::ALL.len(), "ALL has duplicates");
    }

    #[test]
    fn paper_set_order_matches_figure_legend() {
        let names: Vec<_> = MetricKind::PAPER_SET.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["ETT", "ETX", "METX", "PP", "SPP"]);
    }

    #[test]
    fn every_metric_prefers_good_links() {
        for kind in MetricKind::PAPER_SET {
            let m = kind.build();
            let good = m.path_cost([m.link_cost(&obs(0.95))]);
            let bad = m.path_cost([m.link_cost(&obs(0.3))]);
            assert!(
                m.better(good, bad),
                "{kind}: good link should beat bad link"
            );
            assert!(!m.better(bad, good), "{kind}: ordering must be strict");
        }
    }

    #[test]
    fn every_metric_beats_worst() {
        for kind in MetricKind::ALL {
            let m = kind.build();
            let p = m.path_cost([m.link_cost(&obs(0.5)), m.link_cost(&obs(0.8))]);
            assert!(m.better(p, m.worst()), "{kind}: real path beats worst()");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MetricKind::Spp.to_string(), "SPP");
        assert_eq!(MetricKind::HopCount.to_string(), "HOP");
        assert_eq!(MetricKind::InvEtx.to_string(), "InvETX");
        assert_eq!(MetricKind::WcettLb.to_string(), "WCETT-LB");
    }
}
