//! METX — Multicast ETX (§2.2, adapted from the energy metric of Dong et
//! al. by setting the per-hop energy `W` to 1).
//!
//! `METX(path) = Σ_{i=1..n} 1 / Π_{j=i..n} df_j`: the expected **total**
//! number of transmissions by *all* nodes along the path to deliver one
//! packet, given that a loss anywhere forces the source to start over
//! (unreliable link layer, no retransmissions).
//!
//! The closed form admits an incremental recursion used during query
//! accumulation: appending a link with delivery ratio `df` gives
//! `METX' = (METX + 1) / df`.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::{AnyMetric, Metric, MetricKind};

/// Registry entry for METX.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "METX",
    kind: MetricKind::Metx,
    aliases: &[],
    paper: true,
    comparison: true,
    summary: "multicast ETX: total expected transmissions, METX' = (METX+1)/df",
    build: |rate| AnyMetric::Metx(Metx::with_rate(rate)),
};

/// The METX metric.
///
/// ```
/// use mcast_metrics::{Metx, Metric, LinkObservation};
/// let m = Metx::default();
/// let df = |d| LinkObservation {
///     df: d, delay_s: None, bandwidth_bps: None, reverse_df: None,
///     congestion: None,
/// };
/// // Fig. 1, path A-B-D: links 0.25 then 1.0 → METX = 5.
/// let p = m.path_cost([m.link_cost(&df(0.25)), m.link_cost(&df(1.0))]);
/// assert!((p.value() - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Metx {
    rate: f64,
}

impl Default for Metx {
    fn default() -> Self {
        Metx::with_rate(1.0)
    }
}

impl Metx {
    /// METX with probe intervals divided by `rate`. Non-positive or
    /// non-finite rates saturate the probe interval instead of panicking
    /// (see [`ProbePlan::single_at_rate`]).
    pub fn with_rate(rate: f64) -> Self {
        Metx { rate }
    }
}

impl Metric for Metx {
    fn kind(&self) -> MetricKind {
        MetricKind::Metx
    }

    fn probe_plan(&self) -> ProbePlan {
        ProbePlan::single_at_rate(self.rate)
    }

    /// For METX the "link cost" carried in queries is the link's delivery
    /// ratio itself; composition happens in [`Metric::accumulate`].
    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        LinkCost::new(obs.df.clamp(1e-6, 1.0))
    }

    fn identity(&self) -> PathCost {
        PathCost::new(0.0)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new(((path.value() + 1.0) / link.value()).min(1e30))
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        a.value() < b.value()
    }

    fn worst(&self) -> PathCost {
        PathCost::new(f64::INFINITY)
    }
}

/// Closed-form METX of a path given its link delivery ratios (Equation 2 of
/// the paper); used to cross-check the recursion.
pub fn metx_closed_form(dfs: &[f64]) -> f64 {
    let n = dfs.len();
    let mut total = 0.0;
    for i in 0..n {
        let mut prod = 1.0;
        for &df in &dfs[i..] {
            prod *= df;
        }
        total += 1.0 / prod;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(df: f64) -> LinkObservation {
        LinkObservation {
            df,
            delay_s: None,
            bandwidth_bps: None,
            reverse_df: None,
            congestion: None,
        }
    }

    fn path(m: &Metx, dfs: &[f64]) -> PathCost {
        m.path_cost(dfs.iter().map(|&d| m.link_cost(&obs(d))))
    }

    #[test]
    fn recursion_matches_closed_form() {
        let m = Metx::default();
        for dfs in [
            vec![1.0],
            vec![0.5, 0.5],
            vec![0.9, 0.4, 0.7],
            vec![0.25, 1.0],
            vec![0.8, 0.8, 0.8, 0.8, 0.8],
        ] {
            let rec = path(&m, &dfs).value();
            let closed = metx_closed_form(&dfs);
            assert!(
                (rec - closed).abs() / closed < 1e-12,
                "dfs={dfs:?}: {rec} vs {closed}"
            );
        }
    }

    #[test]
    fn figure1_example_values() {
        // Fig. 1: A-C-D has links 1.0 then 1/3 → METX = 6;
        //         A-B-D has links 0.25 then 1.0 → METX = 5.
        let m = Metx::default();
        let acd = path(&m, &[1.0, 1.0 / 3.0]);
        let abd = path(&m, &[0.25, 1.0]);
        assert!((acd.value() - 6.0).abs() < 1e-9, "A-C-D: {acd}");
        assert!((abd.value() - 5.0).abs() < 1e-9, "A-B-D: {abd}");
        // METX prefers A-B-D even though SPP (rightly) prefers A-C-D.
        assert!(m.better(abd, acd));
    }

    #[test]
    fn single_perfect_link_costs_one_transmission() {
        let m = Metx::default();
        assert!((path(&m, &[1.0]).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn early_losses_cost_more_than_late_ones() {
        // A lossy link near the *end* of the path wastes all upstream
        // transmissions, so it costs more than the same link at the start.
        let m = Metx::default();
        let lossy_first = path(&m, &[0.5, 1.0, 1.0]);
        let lossy_last = path(&m, &[1.0, 1.0, 0.5]);
        assert!(m.better(lossy_first, lossy_last));
    }

    #[test]
    fn accumulate_saturates_instead_of_overflowing() {
        let m = Metx::default();
        let mut p = m.identity();
        for _ in 0..10_000 {
            p = m.accumulate(p, LinkCost::new(1e-6));
        }
        assert!(p.value().is_finite());
    }
}
