//! PP — Packet Pair delay (§2.2).
//!
//! The link cost is an EWMA (0.9 old / 0.1 new) of the delay between a
//! small and a large probe sent back to back, with a **20 % multiplicative
//! penalty on the EWMA whenever either packet of a pair is lost**. On a
//! high-loss link the penalty lands repeatedly and the cost grows
//! exponentially with time; on a moderately lossy link it stabilizes — the
//! asymmetry behind PP's standout testbed result (Fig. 2, "Throughput-
//! testbed"). Path cost is the sum of link values.
//!
//! The EWMA/penalty machinery lives in
//! [`LinkEstimate`](crate::estimator::LinkEstimate); this metric consumes the
//! resulting effective delay.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::{AnyMetric, Metric, MetricKind};

/// Delay assumed (in seconds) for links whose delay was never measured.
pub const DEFAULT_DELAY_S: f64 = 0.005;

/// Registry entry for PP.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "PP",
    kind: MetricKind::Pp,
    aliases: &[],
    paper: true,
    comparison: true,
    summary: "packet-pair delay EWMA with 20% loss penalty (additive)",
    build: |rate| AnyMetric::Pp(Pp::with_rate(rate)),
};

/// The packet-pair delay metric.
///
/// ```
/// use mcast_metrics::{Pp, Metric, LinkObservation};
/// let m = Pp::default();
/// let obs = LinkObservation {
///     df: 1.0, delay_s: Some(0.004), bandwidth_bps: None, reverse_df: None,
///     congestion: None,
/// };
/// // Costs are carried in milliseconds.
/// assert!((m.link_cost(&obs).value() - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pp {
    rate: f64,
}

impl Default for Pp {
    fn default() -> Self {
        Pp::with_rate(1.0)
    }
}

impl Pp {
    /// PP with probe intervals divided by `rate`. Non-positive or
    /// non-finite rates saturate the probe interval instead of panicking
    /// (see [`ProbePlan::pair_at_rate`]).
    pub fn with_rate(rate: f64) -> Self {
        Pp { rate }
    }
}

impl Metric for Pp {
    fn kind(&self) -> MetricKind {
        MetricKind::Pp
    }

    fn probe_plan(&self) -> ProbePlan {
        ProbePlan::pair_at_rate(self.rate)
    }

    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        let delay_s = obs.delay_s.unwrap_or(DEFAULT_DELAY_S);
        LinkCost::new((delay_s * 1e3).min(1e15)) // milliseconds
    }

    fn identity(&self) -> PathCost {
        PathCost::new(0.0)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new((path.value() + link.value()).min(1e30))
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        a.value() < b.value()
    }

    fn worst(&self) -> PathCost {
        PathCost::new(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(delay_s: Option<f64>) -> LinkObservation {
        LinkObservation {
            df: 1.0,
            delay_s,
            bandwidth_bps: None,
            reverse_df: None,
            congestion: None,
        }
    }

    #[test]
    fn lower_delay_wins() {
        let m = Pp::default();
        let fast = m.path_cost([m.link_cost(&obs(Some(0.002)))]);
        let slow = m.path_cost([m.link_cost(&obs(Some(0.020)))]);
        assert!(m.better(fast, slow));
    }

    #[test]
    fn missing_delay_uses_default() {
        let m = Pp::default();
        assert!((m.link_cost(&obs(None)).value() - DEFAULT_DELAY_S * 1e3).abs() < 1e-12);
    }

    #[test]
    fn one_blown_up_link_dooms_the_path() {
        // The exponential-penalty property: a path with one exploded link
        // loses to an arbitrary path of merely-slow links.
        let m = Pp::default();
        let exploded = m.path_cost([m.link_cost(&obs(Some(2.0))), m.link_cost(&obs(Some(0.002)))]);
        let slow_but_sane = m.path_cost(vec![m.link_cost(&obs(Some(0.02))); 5]);
        assert!(m.better(slow_but_sane, exploded));
    }

    #[test]
    fn probe_plan_is_pair() {
        assert!(matches!(Pp::default().probe_plan(), ProbePlan::Pair { .. }));
    }

    #[test]
    fn cost_saturates_finite() {
        let m = Pp::default();
        let huge = m.link_cost(&obs(Some(1e300)));
        assert!(huge.value().is_finite());
        let mut p = m.identity();
        for _ in 0..1000 {
            p = m.accumulate(p, huge);
        }
        assert!(p.value().is_finite());
    }
}
