//! ETT — Expected Transmission Time (§2.2, single-channel adaptation of
//! WCETT).
//!
//! `ETT = ETX · S / B`: expected airtime to get a data packet of size `S`
//! across the link, where the loss rate comes from the small packets of the
//! probe pair and the bandwidth `B` from the large packet's inter-arrival
//! time. Path cost is the sum of link ETTs. ETT pays the packet-pair probing
//! overhead (Table 1: ~3 % vs ETX's 0.66 %), which is why the paper finds it
//! *below* plain ETX for multicast.

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::{AnyMetric, Metric, MetricKind};

/// Nominal data packet size used to scale ETT, in bytes (the paper's CBR
/// payload).
pub const DEFAULT_DATA_BYTES: u32 = 512;

/// Registry entry for ETT.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "ETT",
    kind: MetricKind::Ett,
    aliases: &[],
    paper: true,
    comparison: true,
    summary: "expected transmission time (ETX * S/B from packet pairs, additive)",
    build: |rate| AnyMetric::Ett(Ett::with_rate(rate)),
};

/// The ETT metric.
///
/// ```
/// use mcast_metrics::{Ett, Metric, LinkObservation};
/// let m = Ett::default();
/// let obs = LinkObservation {
///     df: 1.0, delay_s: None, bandwidth_bps: Some(2.0e6), reverse_df: None,
///     congestion: None,
/// };
/// // 512 bytes at 2 Mbps over a perfect link: ~2.05 ms.
/// assert!((m.link_cost(&obs).value() - 512.0 * 8.0 / 2.0e6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ett {
    rate: f64,
    data_bytes: u32,
    default_bandwidth_bps: f64,
}

impl Default for Ett {
    fn default() -> Self {
        Ett::with_rate(1.0)
    }
}

impl Ett {
    /// ETT with probe intervals divided by `rate`. Non-positive or
    /// non-finite rates saturate the probe interval instead of panicking
    /// (see [`ProbePlan::pair_at_rate`]).
    pub fn with_rate(rate: f64) -> Self {
        Ett {
            rate,
            data_bytes: DEFAULT_DATA_BYTES,
            default_bandwidth_bps: 2.0e6,
        }
    }

    /// Set the nominal data packet size `S`.
    pub fn with_data_bytes(mut self, bytes: u32) -> Self {
        self.data_bytes = bytes;
        self
    }
}

impl Metric for Ett {
    fn kind(&self) -> MetricKind {
        MetricKind::Ett
    }

    fn probe_plan(&self) -> ProbePlan {
        ProbePlan::pair_at_rate(self.rate)
    }

    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        let etx = 1.0 / obs.df.max(1e-6);
        let bw = obs
            .bandwidth_bps
            .unwrap_or(self.default_bandwidth_bps)
            .max(1e3);
        LinkCost::new(etx * (self.data_bytes as f64 * 8.0) / bw)
    }

    fn identity(&self) -> PathCost {
        PathCost::new(0.0)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new(path.value() + link.value())
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        a.value() < b.value()
    }

    fn worst(&self) -> PathCost {
        PathCost::new(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(df: f64, bw: Option<f64>) -> LinkObservation {
        LinkObservation {
            df,
            delay_s: None,
            bandwidth_bps: bw,
            reverse_df: None,
            congestion: None,
        }
    }

    #[test]
    fn loss_scales_cost_linearly() {
        let m = Ett::default();
        let full = m.link_cost(&obs(1.0, Some(2.0e6))).value();
        let half = m.link_cost(&obs(0.5, Some(2.0e6))).value();
        assert!((half / full - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slower_links_cost_more() {
        let m = Ett::default();
        let fast = m.link_cost(&obs(1.0, Some(2.0e6)));
        let slow = m.link_cost(&obs(1.0, Some(0.5e6)));
        assert!(slow.value() > fast.value());
    }

    #[test]
    fn unknown_bandwidth_uses_channel_rate() {
        let m = Ett::default();
        assert_eq!(
            m.link_cost(&obs(0.7, None)),
            m.link_cost(&obs(0.7, Some(2.0e6)))
        );
    }

    #[test]
    fn data_size_scales_cost() {
        let small = Ett::default().with_data_bytes(256);
        let big = Ett::default().with_data_bytes(1024);
        let o = obs(1.0, Some(2.0e6));
        assert!((big.link_cost(&o).value() / small.link_cost(&o).value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn probe_plan_is_pair_10s() {
        match Ett::default().probe_plan() {
            ProbePlan::Pair { interval, .. } => {
                assert_eq!(interval, mesh_sim::time::SimDuration::from_secs(10))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn path_is_additive() {
        let m = Ett::default();
        let a = m.link_cost(&obs(1.0, Some(2.0e6)));
        let b = m.link_cost(&obs(0.5, Some(1.0e6)));
        let p = m.path_cost([a, b]);
        assert!((p.value() - (a.value() + b.value())).abs() < 1e-12);
    }
}
