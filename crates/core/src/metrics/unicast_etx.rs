//! Bidirectional ("unicast-style") ETX — an **ablation**, not one of the
//! paper's metrics.
//!
//! `ETX = 1 / (df · dr)` is the correct definition for unicast, where the
//! data needs the forward direction and the ACK the reverse. §2.1 of the
//! paper argues this must *not* be used for broadcast-based multicast: the
//! reverse term distorts the cost of links whose reverse direction happens to
//! be bad even though data only flows forward. This implementation exists so
//! the experiments can quantify that distortion.
//!
//! Reverse ratios are learned from reports piggybacked on single probes
//! (exactly how unicast ETX implementations do it).

use crate::cost::{LinkCost, PathCost};
use crate::estimator::LinkObservation;
use crate::probe::ProbePlan;

use super::registry::MetricPlugin;
use super::{AnyMetric, Metric, MetricKind};

/// Registry entry for the bidirectional-ETX ablation. Selectable by name
/// (decks use it for the §2.1 distortion experiment) but kept out of the
/// paper-figure comparison tables.
pub(super) const PLUGIN: MetricPlugin = MetricPlugin {
    name: "ETX-bidir",
    kind: MetricKind::UnicastEtx,
    aliases: &["ETX_BIDIR", "UNICAST_ETX", "UNICASTETX"],
    paper: false,
    comparison: false,
    summary: "ablation: unicast-style 1/(df*dr) ETX (reverse term distorts)",
    build: |rate| AnyMetric::UnicastEtx(UnicastEtx::with_rate(rate)),
};

/// The deliberately-bidirectional ETX ablation metric.
#[derive(Debug, Clone, PartialEq)]
pub struct UnicastEtx {
    rate: f64,
}

impl Default for UnicastEtx {
    fn default() -> Self {
        UnicastEtx::with_rate(1.0)
    }
}

impl UnicastEtx {
    /// Bidirectional ETX with probe intervals divided by `rate`.
    /// Non-positive or non-finite rates saturate the probe interval instead
    /// of panicking (see [`ProbePlan::single_at_rate`]).
    pub fn with_rate(rate: f64) -> Self {
        UnicastEtx { rate }
    }
}

impl Metric for UnicastEtx {
    fn kind(&self) -> MetricKind {
        MetricKind::UnicastEtx
    }

    fn probe_plan(&self) -> ProbePlan {
        ProbePlan::single_at_rate(self.rate)
    }

    fn link_cost(&self, obs: &LinkObservation) -> LinkCost {
        let dr = obs.reverse_df.unwrap_or(1.0).max(1e-6);
        LinkCost::new(1.0 / (obs.df.max(1e-6) * dr))
    }

    fn identity(&self) -> PathCost {
        PathCost::new(0.0)
    }

    fn accumulate(&self, path: PathCost, link: LinkCost) -> PathCost {
        PathCost::new(path.value() + link.value())
    }

    fn better(&self, a: PathCost, b: PathCost) -> bool {
        a.value() < b.value()
    }

    fn worst(&self) -> PathCost {
        PathCost::new(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(df: f64, dr: Option<f64>) -> LinkObservation {
        LinkObservation {
            df,
            delay_s: None,
            bandwidth_bps: None,
            reverse_df: dr,
            congestion: None,
        }
    }

    #[test]
    fn reverse_quality_distorts_cost() {
        // The distortion §2.1 warns about: same forward quality, wildly
        // different cost because of the (irrelevant for broadcast) reverse.
        let m = UnicastEtx::default();
        let sym = m.link_cost(&obs(0.9, Some(0.9)));
        let asym = m.link_cost(&obs(0.9, Some(0.1)));
        assert!(asym.value() > sym.value() * 5.0);
    }

    #[test]
    fn unknown_reverse_degenerates_to_forward_etx() {
        let m = UnicastEtx::default();
        assert!((m.link_cost(&obs(0.5, None)).value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_bidirectional_link_costs_one() {
        let m = UnicastEtx::default();
        assert!((m.link_cost(&obs(1.0, Some(1.0))).value() - 1.0).abs() < 1e-12);
    }
}
