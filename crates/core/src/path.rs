//! Analytic path evaluation on abstract topologies.
//!
//! These helpers evaluate a metric over a path described only by per-link
//! delivery ratios — no simulator involved. They power the worked examples
//! of Figures 1 and 3 of the paper (see `experiments`) and the cross-checks
//! between the incremental accumulation used in routing and the closed
//! forms.

use crate::cost::PathCost;
use crate::estimator::LinkObservation;
use crate::{Metric, MetricKind};

/// Evaluate `metric` over a path whose links have the given forward delivery
/// ratios (delay/bandwidth unknown).
pub fn path_cost_from_dfs<M: Metric>(metric: &M, dfs: &[f64]) -> PathCost {
    metric.path_cost(dfs.iter().map(|&df| {
        metric.link_cost(&LinkObservation {
            df,
            delay_s: None,
            bandwidth_bps: None,
            reverse_df: None,
            congestion: None,
        })
    }))
}

/// A named candidate path through an abstract example network.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePath {
    /// Human-readable route, e.g. `"A-C-D"`.
    pub name: String,
    /// Forward delivery ratio of each link in order.
    pub dfs: Vec<f64>,
}

impl CandidatePath {
    /// Create a candidate path.
    pub fn new(name: impl Into<String>, dfs: Vec<f64>) -> Self {
        CandidatePath {
            name: name.into(),
            dfs,
        }
    }
}

/// Which of several candidate paths a metric selects, with all evaluated
/// costs (for printing paper-style comparison tables).
#[derive(Debug, Clone, PartialEq)]
pub struct PathChoice {
    /// Index of the winning path in the input slice.
    pub winner: usize,
    /// `(name, cost)` per candidate, in input order.
    pub costs: Vec<(String, f64)>,
    /// The metric that made the choice.
    pub metric: MetricKind,
}

/// Evaluate all `candidates` under `metric` and pick the best.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn choose_path<M: Metric>(metric: &M, candidates: &[CandidatePath]) -> PathChoice {
    assert!(!candidates.is_empty(), "need at least one candidate path");
    let mut best = 0;
    let mut best_cost = path_cost_from_dfs(metric, &candidates[0].dfs);
    let mut costs = vec![(candidates[0].name.clone(), best_cost.value())];
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let cost = path_cost_from_dfs(metric, &c.dfs);
        costs.push((c.name.clone(), cost.value()));
        if metric.better(cost, best_cost) {
            best = i;
            best_cost = cost;
        }
    }
    PathChoice {
        winner: best,
        costs,
        metric: metric.kind(),
    }
}

/// The example network of **Figure 1**: SPP vs METX.
///
/// Links: A→C = 1.0, C→D = 1/3; A→B = 0.25, B→D = 1.0.
pub fn figure1_candidates() -> Vec<CandidatePath> {
    vec![
        CandidatePath::new("A-C-D", vec![1.0, 1.0 / 3.0]),
        CandidatePath::new("A-B-D", vec![0.25, 1.0]),
    ]
}

/// The example network of **Figure 3**: SPP vs ETX.
///
/// Links: A→B = B→C = C→D = 0.8; A→E = 0.9, E→D = 0.4.
pub fn figure3_candidates() -> Vec<CandidatePath> {
    vec![
        CandidatePath::new("A-B-C-D", vec![0.8, 0.8, 0.8]),
        CandidatePath::new("A-E-D", vec![0.9, 0.4]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Etx, Metx, Spp};

    #[test]
    fn figure1_metx_picks_abd_spp_picks_acd() {
        let cands = figure1_candidates();
        let metx = choose_path(&Metx::default(), &cands);
        assert_eq!(cands[metx.winner].name, "A-B-D");
        assert!((metx.costs[0].1 - 6.0).abs() < 1e-9);
        assert!((metx.costs[1].1 - 5.0).abs() < 1e-9);

        let spp = choose_path(&Spp::default(), &cands);
        assert_eq!(cands[spp.winner].name, "A-C-D");
        // Paper reports 1/SPP: 3 for A-C-D, 4 for A-B-D.
        assert!((1.0 / spp.costs[0].1 - 3.0).abs() < 1e-9);
        assert!((1.0 / spp.costs[1].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn figure3_etx_picks_aed_spp_picks_abcd() {
        let cands = figure3_candidates();
        let etx = choose_path(&Etx::default(), &cands);
        assert_eq!(cands[etx.winner].name, "A-E-D");
        assert!((etx.costs[0].1 - 3.75).abs() < 1e-9);
        assert!((etx.costs[1].1 - 3.61).abs() < 0.01);

        let spp = choose_path(&Spp::default(), &cands);
        assert_eq!(cands[spp.winner].name, "A-B-C-D");
        assert!((spp.costs[0].1 - 0.512).abs() < 1e-9);
        assert!((spp.costs[1].1 - 0.36).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_candidates_panic() {
        let _ = choose_path(&Etx::default(), &[]);
    }
}
