//! Cost newtypes.
//!
//! A [`LinkCost`] is the metric value of one link; a [`PathCost`] is the
//! accumulated value for a whole path. Both wrap `f64`, but the *meaning* of
//! the number depends on the metric: for ETX/ETT/PP/METX lower is better and
//! paths accumulate additively (or via METX's recursion); for SPP the value
//! is a success probability, paths accumulate multiplicatively, and **higher
//! is better**. Comparisons therefore go through
//! [`Metric::better`](crate::Metric::better), never through raw `<`.

use std::fmt;

use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter};

/// The metric value of a single link.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LinkCost(f64);

impl LinkCost {
    /// Wrap a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "link cost must not be NaN");
        LinkCost(v)
    }

    /// The raw value.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Snap for LinkCost {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.0);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let v = r.f64()?;
        if v.is_nan() {
            return Err(SnapError::StateMismatch("NaN link cost"));
        }
        Ok(LinkCost(v))
    }
}

impl fmt::Display for LinkCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// The accumulated metric value of a path.
///
/// `PathCost` is what a `JOIN QUERY` carries and what receivers compare when
/// picking the best path.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct PathCost(f64);

impl PathCost {
    /// Wrap a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "path cost must not be NaN");
        PathCost(v)
    }

    /// The raw value.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Snap for PathCost {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.0);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let v = r.f64()?;
        if v.is_nan() {
            return Err(SnapError::StateMismatch("NaN path cost"));
        }
        Ok(PathCost(v))
    }
}

impl fmt::Display for PathCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let l = LinkCost::new(1.25);
        assert_eq!(l.value(), 1.25);
        assert_eq!(l.to_string(), "1.2500");
        let p = PathCost::new(0.5);
        assert_eq!(p.value(), 0.5);
        assert_eq!(p.to_string(), "0.5000");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_link_cost_rejected() {
        let _ = LinkCost::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_path_cost_rejected() {
        let _ = PathCost::new(f64::NAN);
    }

    #[test]
    fn infinity_allowed_as_worst_case() {
        assert!(PathCost::new(f64::INFINITY).value().is_infinite());
    }
}
