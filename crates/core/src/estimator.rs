//! Per-link estimation state.
//!
//! A [`LinkEstimate`] is the receiver-side record for one neighbor: which
//! probes arrived (forward delivery ratio), the packet-pair delay EWMA with
//! PP's 20 % loss penalty, and the bandwidth estimate for ETT. A snapshot of
//! the quantities the metrics consume is exposed as [`LinkObservation`].

use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use mesh_sim::time::{SimDuration, SimTime};

use crate::staleness::{Freshness, StalenessConfig};
use crate::window::SeqWindow;

/// Tuning knobs for link estimation (defaults follow §2.2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorConfig {
    /// Sequence window size for delivery-ratio estimation.
    pub window_k: u32,
    /// Weight of the accumulated average in the delay EWMA (paper: 0.9).
    pub ewma_old_weight: f64,
    /// Multiplicative penalty per lost pair packet (paper: 1.2 = "20 %").
    pub pp_penalty: f64,
    /// Delay assumed before the first complete pair, in seconds.
    pub pp_default_delay_s: f64,
    /// Cap on lazily-applied penalties for a currently-silent link.
    pub max_open_gap_penalties: u32,
    /// Forward ratio assumed for links never probed.
    pub default_df: f64,
    /// Bandwidth assumed before the first pair completes (channel rate).
    pub default_bandwidth_bps: f64,
    /// Thresholds of the fresh → suspect → quarantined state machine.
    pub staleness: StalenessConfig,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            window_k: 10,
            ewma_old_weight: 0.9,
            pp_penalty: 1.2,
            pp_default_delay_s: 0.005,
            max_open_gap_penalties: 100,
            default_df: 0.1,
            default_bandwidth_bps: 2.0e6,
            staleness: StalenessConfig::default(),
        }
    }
}

/// Snapshot of one link's measured quality, consumed by the metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkObservation {
    /// Forward delivery ratio `df` in `(0, 1]`.
    pub df: f64,
    /// Packet-pair delay in seconds (PP), if ever measured.
    pub delay_s: Option<f64>,
    /// Link bandwidth estimate in bits/s (ETT), if ever measured.
    pub bandwidth_bps: Option<f64>,
    /// Our delivery ratio as measured *by the neighbor* (reverse direction);
    /// only used by the bidirectional-ETX ablation.
    pub reverse_df: Option<f64>,
    /// Congestion of the prospective *forwarder* in `[0, 1]` (MAC-queue
    /// occupancy / unicast retry pressure), filled in by the protocol layer
    /// at query-handling time; only used by load-aware metrics (WCETT-LB).
    /// `None` means no reading, which every metric treats as calm — link
    /// estimation itself never produces a value here.
    pub congestion: Option<f64>,
}

impl LinkObservation {
    /// The observation assumed for a link with no probe history.
    pub fn unknown(cfg: &EstimatorConfig) -> Self {
        LinkObservation {
            df: cfg.default_df,
            delay_s: None,
            bandwidth_bps: None,
            reverse_df: None,
            congestion: None,
        }
    }
}

/// Receiver-side estimation state for the link *from* one neighbor.
#[derive(Debug, Clone)]
pub struct LinkEstimate {
    single: SeqWindow,
    pair: SeqWindow,
    single_interval: Option<SimDuration>,
    pair_interval: Option<SimDuration>,
    last_single: Option<SimTime>,
    last_pair_event: Option<SimTime>,
    /// Small packet of a pair received, large not yet seen: `(seq, arrival)`.
    pending_pair: Option<(u64, SimTime)>,
    /// Highest pair sequence number for which loss accounting is complete.
    pair_accounted: Option<u64>,
    ewma_delay_s: Option<f64>,
    ewma_bandwidth_bps: Option<f64>,
    reverse_df: Option<f64>,
}

impl Snap for LinkEstimate {
    fn snap(&self, w: &mut SnapWriter) {
        self.single.snap(w);
        self.pair.snap(w);
        self.single_interval.snap(w);
        self.pair_interval.snap(w);
        self.last_single.snap(w);
        self.last_pair_event.snap(w);
        self.pending_pair.snap(w);
        self.pair_accounted.snap(w);
        self.ewma_delay_s.snap(w);
        self.ewma_bandwidth_bps.snap(w);
        self.reverse_df.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(LinkEstimate {
            single: Snap::unsnap(r)?,
            pair: Snap::unsnap(r)?,
            single_interval: Snap::unsnap(r)?,
            pair_interval: Snap::unsnap(r)?,
            last_single: Snap::unsnap(r)?,
            last_pair_event: Snap::unsnap(r)?,
            pending_pair: Snap::unsnap(r)?,
            pair_accounted: Snap::unsnap(r)?,
            ewma_delay_s: Snap::unsnap(r)?,
            ewma_bandwidth_bps: Snap::unsnap(r)?,
            reverse_df: Snap::unsnap(r)?,
        })
    }
}

impl LinkEstimate {
    /// Fresh estimate with the given window size.
    pub fn new(cfg: &EstimatorConfig) -> Self {
        LinkEstimate {
            single: SeqWindow::new(cfg.window_k),
            pair: SeqWindow::new(cfg.window_k),
            single_interval: None,
            pair_interval: None,
            last_single: None,
            last_pair_event: None,
            pending_pair: None,
            pair_accounted: None,
            ewma_delay_s: None,
            ewma_bandwidth_bps: None,
            reverse_df: None,
        }
    }

    /// A single probe with sequence `seq` arrived at `now`.
    pub fn on_single(&mut self, seq: u64, interval: SimDuration, now: SimTime) {
        self.single.record(seq);
        self.single_interval = Some(interval);
        self.last_single = Some(now);
    }

    /// The neighbor reported measuring our transmissions at ratio `df`.
    pub fn on_reverse_report(&mut self, df: f64) {
        self.reverse_df = Some(df.clamp(0.0, 1.0));
    }

    /// The small packet of pair `seq` arrived at `now`.
    pub fn on_pair_small(
        &mut self,
        seq: u64,
        interval: SimDuration,
        now: SimTime,
        cfg: &EstimatorConfig,
    ) {
        // A still-pending previous small means its large packet was lost.
        if self.pending_pair.take().is_some() {
            self.apply_penalty(1, cfg);
        }
        self.account_gap(seq, cfg);
        self.pair.record(seq);
        self.pair_interval = Some(interval);
        self.last_pair_event = Some(now);
        self.pending_pair = Some((seq, now));
    }

    /// The large packet of pair `seq` (of `bytes` bytes) arrived at `now`.
    pub fn on_pair_large(&mut self, seq: u64, bytes: u32, now: SimTime, cfg: &EstimatorConfig) {
        self.last_pair_event = Some(now);
        match self.pending_pair.take() {
            Some((pending_seq, small_at)) if pending_seq == seq => {
                let delay = now.saturating_since(small_at).as_secs_f64();
                if delay > 0.0 {
                    self.update_ewma_delay(delay, cfg);
                    let bw = bytes as f64 * 8.0 / delay;
                    self.ewma_bandwidth_bps = Some(match self.ewma_bandwidth_bps {
                        None => bw,
                        Some(old) => cfg.ewma_old_weight * old + (1.0 - cfg.ewma_old_weight) * bw,
                    });
                }
            }
            Some(_) | None => {
                // Small packet of this pair was lost: penalty, and the pair
                // still proves the sender reached `seq`.
                self.apply_penalty(1, cfg);
                self.account_gap(seq, cfg);
            }
        }
    }

    /// Apply pair-loss penalties for pairs `pair_accounted+1 .. seq` that
    /// were never heard at all. The paper penalizes 20 % per lost *packet*
    /// ("in case either the large or the small packet is lost"); a wholly
    /// missed pair loses both packets, hence two penalties per pair.
    fn account_gap(&mut self, seq: u64, cfg: &EstimatorConfig) {
        let missed = match self.pair_accounted {
            None => 0,
            Some(acc) if seq > acc + 1 => (seq - acc - 1).min(u64::from(u32::MAX) / 2) as u32,
            Some(_) => 0,
        };
        if missed > 0 {
            self.apply_penalty(2 * missed, cfg);
        }
        self.pair_accounted = Some(self.pair_accounted.map_or(seq, |a| a.max(seq)));
    }

    fn apply_penalty(&mut self, n: u32, cfg: &EstimatorConfig) {
        let factor = cfg
            .pp_penalty
            .powi(n.min(cfg.max_open_gap_penalties) as i32);
        let base = self.ewma_delay_s.unwrap_or(cfg.pp_default_delay_s);
        self.ewma_delay_s = Some((base * factor).min(1e12));
    }

    fn update_ewma_delay(&mut self, sample_s: f64, cfg: &EstimatorConfig) {
        self.ewma_delay_s = Some(match self.ewma_delay_s {
            None => sample_s,
            Some(old) => cfg.ewma_old_weight * old + (1.0 - cfg.ewma_old_weight) * sample_s,
        });
    }

    /// Probes we know were sent but not heard, inferred from elapsed time.
    fn open_gap(last: Option<SimTime>, interval: Option<SimDuration>, now: SimTime) -> u32 {
        match (last, interval) {
            (Some(t), Some(iv)) if iv > SimDuration::ZERO => {
                let elapsed = now.saturating_since(t).as_nanos();
                (elapsed / iv.as_nanos().max(1))
                    .saturating_sub(1)
                    .min(u64::from(u32::MAX)) as u32
            }
            _ => 0,
        }
    }

    /// Forward delivery ratio at `now`, floored at a small positive value so
    /// cost formulas never divide by zero.
    pub fn forward_ratio(&self, now: SimTime, cfg: &EstimatorConfig) -> f64 {
        let single = self.single.ratio_with_missed(Self::open_gap(
            self.last_single,
            self.single_interval,
            now,
        ));
        let pair = self.pair.ratio_with_missed(Self::open_gap(
            self.last_pair_event,
            self.pair_interval,
            now,
        ));
        let df = match (single, pair) {
            (Some(s), _) => s,
            (None, Some(p)) => p,
            (None, None) => cfg.default_df,
        };
        df.max(1e-3)
    }

    /// Effective PP delay at `now` in seconds: the stored EWMA with penalties
    /// for the currently-open silence gap applied lazily (so a dead link's
    /// cost keeps growing even though no events arrive). Two penalties per
    /// silent pair interval — both packets of those pairs were lost.
    pub fn pp_delay_s(&self, now: SimTime, cfg: &EstimatorConfig) -> f64 {
        let base = self.ewma_delay_s.unwrap_or(cfg.pp_default_delay_s);
        let gap = Self::open_gap(self.last_pair_event, self.pair_interval, now)
            .saturating_mul(2)
            .min(cfg.max_open_gap_penalties);
        (base * cfg.pp_penalty.powi(gap as i32)).min(1e12)
    }

    /// Snapshot for metric evaluation.
    pub fn observe(&self, now: SimTime, cfg: &EstimatorConfig) -> LinkObservation {
        LinkObservation {
            df: self.forward_ratio(now, cfg),
            delay_s: Some(self.pp_delay_s(now, cfg)),
            bandwidth_bps: self.ewma_bandwidth_bps,
            reverse_df: self.reverse_df,
            congestion: None,
        }
    }

    /// Last time anything was heard from this neighbor.
    pub fn last_heard(&self) -> Option<SimTime> {
        match (self.last_single, self.last_pair_event) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Probes inferred missing at `now`: the larger open gap across the
    /// single-probe and pair-probe streams (whichever stream the deployed
    /// metric uses, its silence counts).
    pub fn missed_probes(&self, now: SimTime) -> u32 {
        let single = Self::open_gap(self.last_single, self.single_interval, now);
        let pair = Self::open_gap(self.last_pair_event, self.pair_interval, now);
        single.max(pair)
    }

    /// Freshness class of this estimate at `now` per `cfg.staleness`.
    pub fn freshness(&self, now: SimTime, cfg: &EstimatorConfig) -> Freshness {
        let silence = self.last_heard().map(|t| now.saturating_since(t));
        cfg.staleness.classify(self.missed_probes(now), silence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EstimatorConfig {
        EstimatorConfig::default()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    const IV: SimDuration = SimDuration::from_secs(5);

    #[test]
    fn perfect_single_probes_give_df_one() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        for i in 0..20u64 {
            e.on_single(i, IV, t(i * 5));
        }
        let df = e.forward_ratio(t(96), &c);
        assert!((df - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_loss_gives_half_df() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        for i in (0..40u64).step_by(2) {
            e.on_single(i, IV, t(i * 5));
        }
        let df = e.forward_ratio(t(191), &c);
        assert!((df - 0.5).abs() < 0.01, "df={df}");
    }

    #[test]
    fn silent_link_ratio_decays_over_time() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        for i in 0..10u64 {
            e.on_single(i, IV, t(i * 5));
        }
        let fresh = e.forward_ratio(t(46), &c);
        let stale = e.forward_ratio(t(146), &c); // ~20 intervals of silence
        assert!(stale < fresh);
        assert!(stale >= 1e-3);
    }

    #[test]
    fn unprobed_link_uses_default() {
        let c = cfg();
        let e = LinkEstimate::new(&c);
        assert_eq!(e.forward_ratio(t(100), &c), c.default_df);
        assert!(e.last_heard().is_none());
    }

    #[test]
    fn complete_pair_measures_delay_and_bandwidth() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        let iv = SimDuration::from_secs(10);
        let small_at = t(10);
        let large_at = small_at + SimDuration::from_millis(5);
        e.on_pair_small(0, iv, small_at, &c);
        e.on_pair_large(0, 1137, large_at, &c);
        let obs = e.observe(large_at, &c);
        assert!((obs.delay_s.unwrap() - 0.005).abs() < 1e-9);
        // 1137 bytes in 5 ms ≈ 1.82 Mbps.
        let bw = obs.bandwidth_bps.unwrap();
        assert!((bw - 1137.0 * 8.0 / 0.005).abs() / bw < 1e-9);
    }

    #[test]
    fn ewma_weights_history_90_10() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        let iv = SimDuration::from_secs(10);
        e.on_pair_small(0, iv, t(0), &c);
        e.on_pair_large(0, 1137, t(0) + SimDuration::from_millis(10), &c);
        e.on_pair_small(1, iv, t(10), &c);
        e.on_pair_large(1, 1137, t(10) + SimDuration::from_millis(20), &c);
        // EWMA = 0.9 * 10ms + 0.1 * 20ms = 11ms.
        let d = e.pp_delay_s(t(10) + SimDuration::from_millis(20), &c);
        assert!((d - 0.011).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn lost_large_packet_incurs_20pct_penalty() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        let iv = SimDuration::from_secs(10);
        e.on_pair_small(0, iv, t(0), &c);
        e.on_pair_large(0, 1137, t(0) + SimDuration::from_millis(10), &c);
        // Pair 1: small arrives, large lost; detected at pair 2's small.
        e.on_pair_small(1, iv, t(10), &c);
        e.on_pair_small(2, iv, t(20), &c);
        e.on_pair_large(2, 1137, t(20) + SimDuration::from_millis(10), &c);
        // After penalty: 10ms * 1.2 = 12ms, then EWMA with the 10ms sample:
        // 0.9*12 + 0.1*10 = 11.8ms.
        let d = e.pp_delay_s(t(20) + SimDuration::from_millis(10), &c);
        assert!((d - 0.0118).abs() < 1e-6, "d={d}");
    }

    #[test]
    fn wholly_missed_pairs_penalize_per_pair() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        let iv = SimDuration::from_secs(10);
        e.on_pair_small(0, iv, t(0), &c);
        e.on_pair_large(0, 1137, t(0) + SimDuration::from_millis(10), &c);
        // Pairs 1,2,3 vanish entirely; pair 4 arrives.
        e.on_pair_small(4, iv, t(40), &c);
        // Three missed pairs = six lost packets: 10ms * 1.2^6 ≈ 29.86ms.
        let d = e.pp_delay_s(t(40), &c);
        assert!((d - 0.01 * 1.2f64.powi(6)).abs() < 1e-6, "d={d}");
    }

    #[test]
    fn lost_small_but_received_large_penalizes() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        let iv = SimDuration::from_secs(10);
        e.on_pair_small(0, iv, t(0), &c);
        e.on_pair_large(0, 1137, t(0) + SimDuration::from_millis(10), &c);
        e.on_pair_large(1, 1137, t(10), &c); // small of pair 1 lost
        let d = e.pp_delay_s(t(10), &c);
        assert!((d - 0.012).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn dead_link_cost_grows_exponentially_with_time() {
        // The property the paper's testbed result hinges on.
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        let iv = SimDuration::from_secs(10);
        e.on_pair_small(0, iv, t(0), &c);
        e.on_pair_large(0, 1137, t(0) + SimDuration::from_millis(10), &c);
        let d1 = e.pp_delay_s(t(30), &c);
        let d2 = e.pp_delay_s(t(130), &c);
        let d3 = e.pp_delay_s(t(330), &c);
        assert!(d2 > d1 * 4.0, "d1={d1} d2={d2}");
        assert!(d3 > d2 * 10.0, "d2={d2} d3={d3}");
    }

    #[test]
    fn penalty_capped_for_very_long_silence() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        let iv = SimDuration::from_secs(10);
        e.on_pair_small(0, iv, t(0), &c);
        let far = e.pp_delay_s(SimTime::from_secs(1_000_000), &c);
        assert!(far.is_finite());
    }

    #[test]
    fn reverse_report_is_stored_and_clamped() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        e.on_reverse_report(1.7);
        assert_eq!(e.observe(t(0), &c).reverse_df, Some(1.0));
        e.on_reverse_report(0.4);
        assert_eq!(e.observe(t(0), &c).reverse_df, Some(0.4));
    }

    #[test]
    fn pair_window_feeds_df_when_no_singles() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        let iv = SimDuration::from_secs(10);
        for i in 0..10u64 {
            e.on_pair_small(i, iv, t(i * 10), &c);
        }
        let df = e.forward_ratio(t(91), &c);
        assert!((df - 1.0).abs() < 1e-9, "df={df}");
    }

    #[test]
    fn freshness_progresses_with_silence() {
        let c = cfg();
        let iv1 = SimDuration::from_secs(1);
        let mut e = LinkEstimate::new(&c);
        for i in 0..10u64 {
            e.on_single(i, iv1, t(i));
        }
        // Last probe at t=9s, interval 1s.
        assert_eq!(e.freshness(t(10), &c), Freshness::Fresh);
        // 3 intervals elapsed = 2 missed -> suspect; silence 3s < 9s.
        assert_eq!(e.freshness(t(12), &c), Freshness::Suspect);
        // 7 intervals elapsed = 6 missed -> quarantined by missed count.
        assert_eq!(e.freshness(t(16), &c), Freshness::Quarantined);
        assert_eq!(e.freshness(t(500), &c), Freshness::Quarantined);
    }

    #[test]
    fn silence_horizon_quarantines_slow_probe_schedules() {
        // With 5s probes, missed-count thresholds take 15s+ to trip; the
        // absolute fg_timeout-scale horizon quarantines at 9s regardless.
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        for i in 0..10u64 {
            e.on_single(i, IV, t(i * 5));
        }
        assert_eq!(e.freshness(t(53), &c), Freshness::Fresh);
        assert_eq!(e.freshness(t(54), &c), Freshness::Quarantined);
    }

    #[test]
    fn missed_probes_tracks_the_noisier_stream() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        e.on_single(0, IV, t(0));
        e.on_pair_small(0, SimDuration::from_secs(10), t(0), &c);
        // At t=21s: singles 4 intervals elapsed (missed 3), pairs 2 elapsed
        // (missed 1).
        assert_eq!(e.missed_probes(t(21)), 3);
    }

    #[test]
    fn df_floor_prevents_division_blowups() {
        let c = cfg();
        let mut e = LinkEstimate::new(&c);
        e.on_single(0, IV, t(0));
        let df = e.forward_ratio(SimTime::from_secs(100_000), &c);
        assert!(df >= 1e-3);
    }
}
