//! # mcast-metrics — high-throughput routing metrics for multicast
//!
//! This crate implements the contribution of *"High-Throughput Multicast
//! Routing Metrics in Wireless Mesh Networks"* (Roy, Koutsonikolas, Das, Hu —
//! ICDCS 2006): link-quality routing metrics adapted for protocols that send
//! data with **link-layer broadcast** (as ODMRP and most multicast protocols
//! do).
//!
//! Broadcast differs from unicast in two ways that reshape metric design
//! (§2.1 of the paper):
//!
//! 1. there are no ACKs, so only the **forward** direction of a link
//!    matters, and
//! 2. there are no retransmissions, so a packet gets **one chance per
//!    link** — multiplying link success probabilities describes a path
//!    better than summing per-link costs.
//!
//! The five adapted metrics (all [`Metric`] implementations):
//!
//! | Metric | Link cost | Path accumulation | Better | Probing |
//! |--------|-----------|-------------------|--------|---------|
//! | [`Etx`] | `1/df` | sum | lower | 1 probe / 5 s |
//! | [`Ett`] | `(1/df)·S/B` | sum | lower | pair / 10 s |
//! | [`Pp`]  | delay EWMA (+20 % loss penalty) | sum | lower | pair / 10 s |
//! | [`Metx`] | `df` | `(p+1)/df` | lower | 1 probe / 5 s |
//! | [`Spp`] | `df` | product | **higher** | 1 probe / 5 s |
//!
//! plus [`HopCount`] (baseline), [`UnicastEtx`] (a deliberately-wrong
//! bidirectional ETX used as an ablation), and two post-paper entrants:
//! [`InvEtx`] (ETX inverted into a quality score, higher wins) and
//! [`WcettLb`] (load-aware ETT with a queue/retry congestion term and σ/δ
//! switching thresholds).
//!
//! Metrics are *registered plugins*: the [`MetricRegistry`] resolves
//! deck/CLI names (case-insensitively, aliases included) to builders, and
//! every comparison table and sweep axis enumerates the registry, so adding
//! a metric is one new file plus one registration — see
//! [`metrics::registry`].
//!
//! ## Example: why SPP beats ETX on the paper's Figure 3 network
//!
//! ```
//! use mcast_metrics::{choose_path, figure3_candidates, Etx, Spp};
//!
//! let candidates = figure3_candidates();
//! let etx = choose_path(&Etx::default(), &candidates);
//! let spp = choose_path(&Spp::default(), &candidates);
//! // ETX prefers the short path with one very lossy link...
//! assert_eq!(candidates[etx.winner].name, "A-E-D");
//! // ...SPP avoids it: one bad link collapses the product.
//! assert_eq!(candidates[spp.winner].name, "A-B-C-D");
//! ```
//!
//! ## Wiring into a protocol
//!
//! A node using these metrics owns a [`Prober`] (what to send) and a
//! [`NeighborTable`] (what was heard). When a route-discovery packet arrives
//! over a link, the node charges that link's cost
//! ([`NeighborTable::link_cost`]) into the packet's accumulated
//! [`PathCost`] via [`Metric::accumulate`], and receivers compare candidates
//! with [`Metric::better`]. The `odmrp` crate does exactly this.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
pub mod estimator;
pub mod metrics;
pub mod neighbor_table;
pub mod path;
pub mod probe;
pub mod staleness;
pub mod window;

pub use cost::{LinkCost, PathCost};
pub use estimator::{EstimatorConfig, LinkEstimate, LinkObservation};
pub use metrics::{
    AnyMetric, ChannelHop, Ett, Etx, HopCount, InvEtx, Metric, MetricKind, MetricPlugin,
    MetricRegistry, Metx, Pp, Spp, UnicastEtx, Wcett, WcettLb,
};
pub use neighbor_table::NeighborTable;
pub use path::{choose_path, figure1_candidates, figure3_candidates, CandidatePath, PathChoice};
pub use probe::{ProbeMsg, ProbePlan, Prober};
pub use staleness::{Freshness, StalenessConfig};
