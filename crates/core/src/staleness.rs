//! Staleness state machine for link estimates.
//!
//! Probe-driven estimators fail open: when probes stop arriving the window
//! ratios decay lazily, but the estimate keeps being served as if it were
//! measurement. This module classifies every [`crate::LinkEstimate`] as
//! fresh → suspect → quarantined, driven by the same missed-probe inference
//! the lazy decay uses plus an absolute silence horizon on the scale of the
//! protocol's forwarding-group timeout. Degraded-mode consumers exclude
//! quarantined entries from metric path costs and substitute the
//! no-history default observation, which makes every link cost a constant —
//! i.e. the path choice falls back to minimum hop count.

use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use mesh_sim::time::SimDuration;

/// Freshness class of one link estimate.
///
/// Ordered: `Fresh < Suspect < Quarantined`, so "at least this stale"
/// comparisons read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Freshness {
    /// Probes are arriving on schedule; the estimate is measurement.
    Fresh,
    /// A few probes are overdue; the estimate is served but flagged.
    Suspect,
    /// The silence is long enough that the estimate is fiction; degraded
    /// mode excludes it from metric path costs.
    Quarantined,
}

impl Freshness {
    /// Stable lower-case label (used in traces and reports).
    pub fn label(self) -> &'static str {
        match self {
            Freshness::Fresh => "fresh",
            Freshness::Suspect => "suspect",
            Freshness::Quarantined => "quarantined",
        }
    }
}

impl Snap for Freshness {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            Freshness::Fresh => 0,
            Freshness::Suspect => 1,
            Freshness::Quarantined => 2,
        });
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Freshness::Fresh,
            1 => Freshness::Suspect,
            2 => Freshness::Quarantined,
            t => return Err(SnapError::BadTag(t as u32)),
        })
    }
}

/// Thresholds of the fresh → suspect → quarantined state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessConfig {
    /// Missed probes (inferred from elapsed probe intervals) at which an
    /// estimate becomes suspect.
    pub suspect_after_missed: u32,
    /// Missed probes at which an estimate is quarantined.
    pub quarantine_after_missed: u32,
    /// Absolute silence horizon that quarantines regardless of probe-interval
    /// bookkeeping; sized to the protocol soft-state timeout (`fg_timeout`).
    pub quarantine_silence: SimDuration,
}

impl Default for StalenessConfig {
    fn default() -> Self {
        StalenessConfig {
            suspect_after_missed: 2,
            quarantine_after_missed: 6,
            quarantine_silence: SimDuration::from_secs(9),
        }
    }
}

impl StalenessConfig {
    /// Classify an estimate from its missed-probe count and the time since
    /// anything was last heard (`None` when nothing was ever heard — such an
    /// estimate does not exist in a table, so it classifies as fresh).
    pub fn classify(&self, missed: u32, silence: Option<SimDuration>) -> Freshness {
        let silent_out = silence.is_some_and(|s| s >= self.quarantine_silence);
        if missed >= self.quarantine_after_missed || silent_out {
            Freshness::Quarantined
        } else if missed >= self.suspect_after_missed {
            Freshness::Suspect
        } else {
            Freshness::Fresh
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_monotone_in_missed_probes() {
        let cfg = StalenessConfig::default();
        let mut prev = Freshness::Fresh;
        for missed in 0..20 {
            let f = cfg.classify(missed, Some(SimDuration::ZERO));
            assert!(f >= prev, "freshness regressed at missed={missed}");
            prev = f;
        }
        assert_eq!(prev, Freshness::Quarantined);
    }

    #[test]
    fn silence_horizon_quarantines_without_missed_probes() {
        let cfg = StalenessConfig::default();
        assert_eq!(
            cfg.classify(0, Some(SimDuration::from_secs(8))),
            Freshness::Fresh
        );
        assert_eq!(
            cfg.classify(0, Some(SimDuration::from_secs(9))),
            Freshness::Quarantined
        );
    }

    #[test]
    fn never_heard_is_fresh() {
        let cfg = StalenessConfig::default();
        assert_eq!(cfg.classify(0, None), Freshness::Fresh);
    }

    #[test]
    fn thresholds_partition_the_missed_axis() {
        let cfg = StalenessConfig::default();
        assert_eq!(cfg.classify(1, None), Freshness::Fresh);
        assert_eq!(cfg.classify(2, None), Freshness::Suspect);
        assert_eq!(cfg.classify(5, None), Freshness::Suspect);
        assert_eq!(cfg.classify(6, None), Freshness::Quarantined);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Freshness::Fresh.label(), "fresh");
        assert_eq!(Freshness::Suspect.label(), "suspect");
        assert_eq!(Freshness::Quarantined.label(), "quarantined");
    }
}
