//! Sequence-number window for forward delivery-ratio estimation.
//!
//! Receivers count which of the sender's last `k` probe sequence numbers they
//! actually heard. Because probes are *broadcast*, this measures the **forward
//! direction only** — the adaptation the paper requires for multicast (no
//! ACKs, so the reverse direction is irrelevant).

use mesh_sim::snapshot::{Snap, SnapError, SnapReader, SnapWriter};

/// Tracks receipt of the most recent `k` sequence numbers (k ≤ 64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqWindow {
    /// Highest sequence number seen.
    latest: Option<u64>,
    /// Bit `i` set ⇒ sequence `latest - i` was received.
    bits: u64,
    k: u32,
}

impl Snap for SeqWindow {
    fn snap(&self, w: &mut SnapWriter) {
        self.latest.snap(w);
        w.put_u64(self.bits);
        w.put_u32(self.k);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let latest = Snap::unsnap(r)?;
        let bits = r.u64()?;
        let k = r.u32()?;
        if !(1..=64).contains(&k) {
            return Err(SnapError::StateMismatch("SeqWindow size out of 1..=64"));
        }
        Ok(SeqWindow { latest, bits, k })
    }
}

impl SeqWindow {
    /// Create a window over the last `k` sequence numbers.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 64.
    pub fn new(k: u32) -> Self {
        assert!((1..=64).contains(&k), "window size must be in 1..=64");
        SeqWindow {
            latest: None,
            bits: 0,
            k,
        }
    }

    /// Window size.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Record receipt of sequence number `seq`.
    ///
    /// Out-of-order arrivals within the window are handled; a large backward
    /// jump (sender restart) resets the window.
    pub fn record(&mut self, seq: u64) {
        match self.latest {
            None => {
                self.latest = Some(seq);
                self.bits = 1;
            }
            Some(latest) if seq > latest => {
                let shift = seq - latest;
                self.bits = if shift >= 64 { 0 } else { self.bits << shift };
                self.bits |= 1;
                self.latest = Some(seq);
            }
            Some(latest) => {
                let back = latest - seq;
                if back < 64 {
                    self.bits |= 1 << back;
                } else {
                    // Sender restarted from a much lower sequence number.
                    self.latest = Some(seq);
                    self.bits = 1;
                }
            }
        }
    }

    /// Number of the last `k` sequence numbers that were received.
    pub fn received_in_window(&self) -> u32 {
        let mask = if self.k == 64 {
            u64::MAX
        } else {
            (1u64 << self.k) - 1
        };
        (self.bits & mask).count_ones()
    }

    /// Delivery ratio over the window, with `extra_missed` recent probes
    /// known (from elapsed time) to have been sent but not received.
    ///
    /// Returns `None` if nothing was ever received.
    pub fn ratio_with_missed(&self, extra_missed: u32) -> Option<f64> {
        self.latest?;
        let received = self.received_in_window().min(self.k) as f64;
        // Cap staleness so a long-dead link bottoms out rather than
        // underflowing: expected grows to at most 4x the window.
        let expected = (self.k + extra_missed.min(3 * self.k)) as f64;
        Some((received / expected).clamp(0.0, 1.0))
    }

    /// Plain delivery ratio over the window.
    pub fn ratio(&self) -> Option<f64> {
        self.ratio_with_missed(0)
    }

    /// Highest sequence number seen.
    pub fn latest(&self) -> Option<u64> {
        self.latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_ratio() {
        let w = SeqWindow::new(10);
        assert_eq!(w.ratio(), None);
        assert_eq!(w.latest(), None);
    }

    #[test]
    fn perfect_reception_is_one() {
        let mut w = SeqWindow::new(10);
        for s in 0..20 {
            w.record(s);
        }
        assert_eq!(w.ratio(), Some(1.0));
        assert_eq!(w.received_in_window(), 10);
    }

    #[test]
    fn half_loss_is_half() {
        let mut w = SeqWindow::new(10);
        for s in (0..20).step_by(2) {
            w.record(s);
        }
        assert_eq!(w.ratio(), Some(0.5));
    }

    #[test]
    fn warmup_counts_only_window() {
        // Receiving only 1 probe: ratio is 1/k, pessimistic on purpose until
        // the window fills — a fresh link should not look perfect.
        let mut w = SeqWindow::new(10);
        w.record(5);
        assert_eq!(w.ratio(), Some(0.1));
    }

    #[test]
    fn out_of_order_within_window() {
        let mut w = SeqWindow::new(4);
        w.record(10);
        w.record(8);
        w.record(9);
        w.record(7);
        assert_eq!(w.ratio(), Some(1.0));
    }

    #[test]
    fn huge_forward_jump_clears() {
        let mut w = SeqWindow::new(10);
        for s in 0..10 {
            w.record(s);
        }
        w.record(1000);
        assert_eq!(w.received_in_window(), 1);
        assert_eq!(w.ratio(), Some(0.1));
    }

    #[test]
    fn backward_restart_resets() {
        let mut w = SeqWindow::new(10);
        w.record(500);
        w.record(2); // sender restarted
        assert_eq!(w.latest(), Some(2));
        assert_eq!(w.received_in_window(), 1);
    }

    #[test]
    fn staleness_decays_ratio() {
        let mut w = SeqWindow::new(10);
        for s in 0..10 {
            w.record(s);
        }
        assert_eq!(w.ratio_with_missed(0), Some(1.0));
        assert_eq!(w.ratio_with_missed(10), Some(0.5));
        // Cap at 4x expected.
        assert_eq!(w.ratio_with_missed(1000), Some(0.25));
    }

    #[test]
    fn k64_window() {
        let mut w = SeqWindow::new(64);
        for s in 0..64 {
            w.record(s);
        }
        assert_eq!(w.ratio(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn oversized_window_rejected() {
        let _ = SeqWindow::new(65);
    }
}
